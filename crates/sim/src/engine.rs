//! Lane-parallel fault simulation (64- and 256-way).
//!
//! The engine simulates one fault per bit lane of a [`LaneWord`]: with the
//! default `u64` word a batch holds 64 faults, with [`crate::word::W256`]
//! 256. Every net carries a lane word whose lane `l` is the value under
//! fault `l` of the current batch. Faulty next-state words feed the next
//! cycle's present-state lines, so faulty-state propagation across the
//! cycles of a test — the effect that makes multi-transition functional
//! tests interesting — is captured per lane. A fault is detected when its
//! lane differs from the fault-free response at a primary output in any
//! cycle, or in the scanned-out final state (exactly the paper's
//! observation model).
//!
//! Evaluation walks the netlist's flattened [`GateArena`] (contiguous
//! fanins, `u32` indices, level-ordered schedule), shared via `Arc` by all
//! engines of a campaign.
//!
//! # Injection
//!
//! - stuck-at **stem** faults force a net's word in their lane after the net
//!   is driven (and at PI/PPI load);
//! - stuck-at **branch** faults force the value read by one specific gate
//!   input pin;
//! - **bridging** faults replace the value read from either bridged net by
//!   the wired-AND/OR of the two driven values. Because qualifying pairs
//!   are non-feedback (no structural path either way), neither driven value
//!   depends on the bridge, so evaluating the netlist **twice** per cycle
//!   yields exact values: the first pass settles both driven values, the
//!   second re-derives every consumer from the bridged readings.
//!
//! # Event-driven PPSFP
//!
//! For stuck-only batches, [`InjectionPlan::event_driven`] additionally
//! computes the union of the batch's [`FaultCone`]s and
//! [`FaultEngine::run_test_event_driven`] evaluates **only** the gates in
//! that union, reading every other net's value from a precomputed
//! fault-free [`GoodTrace`]. Within the cone a dirty-net worklist skips
//! gates none of whose fanins deviate from the trace, so unperturbed (or
//! already-detected) lanes cost nothing. Soundness: a net outside the cone
//! union provably carries the fault-free value in every lane (the cone is
//! closed under structural fanout *and* the scan boundary), and a cone
//! gate with clean fanins, no stem force and no branch force reproduces the
//! fault-free output exactly — so skipping it cannot change any lane.

use scanft_race::sync::Arc;

use scanft_netlist::{FaultCone, GateArena, NetId, Netlist};

use crate::faults::{BridgeKind, Fault, FaultSite};
use crate::logic::{eval_gate_fanins, eval_gate_scratch, GoodTrace};
use crate::word::LaneWord;
use crate::{ScanResponse, ScanTest};

// Delay-fault modelling note: a gross transition-delay fault on net `n`
// makes the value *read* from `n` in cycle `k` lag by one cycle whenever a
// transition in the slow direction was launched at `k`:
//
//   late_k = slow_mask & (driven_k XOR-direction driven_{k-1})
//   observed_k = driven_k, with late lanes reading the previous value
//
// The driven value of `n` itself is unaffected (its cone cannot contain
// `n`), so a second evaluation pass — the same trick used for bridging
// faults — propagates the late readings exactly. No transition can be
// launched at the first cycle of a test (scan shifting is slow), so
// length-1 tests never detect delay faults, which is precisely the paper's
// at-speed argument for chaining transitions.

/// Lane-masked forcing of a value word.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Force<W: LaneWord> {
    to_zero: W,
    to_one: W,
}

impl<W: LaneWord> Force<W> {
    fn apply(self, word: W) -> W {
        (word | self.to_one) & !self.to_zero
    }

    fn is_noop(self) -> bool {
        self.to_zero.is_zero() && self.to_one.is_zero()
    }

    /// The force restricted to the lanes of `live`. The event-driven path
    /// masks every force so dropped lanes quiesce to fault-free values —
    /// observationally equivalent (detection is masked by `live` anyway)
    /// and strictly cheaper, since quiesced lanes stop generating events.
    fn masked(self, live: W) -> Force<W> {
        Force {
            to_zero: self.to_zero & live,
            to_one: self.to_one & live,
        }
    }
}

/// A bridge tap attached to one net: lanes in `mask` read the wired value
/// of (this net, `partner`) instead of the driven value.
#[derive(Debug, Clone, Copy)]
struct BridgeTap<W: LaneWord> {
    partner: NetId,
    mask: W,
    kind: BridgeKind,
}

/// A delay-fault attachment to one net: lanes in `rise_mask` are
/// slow-to-rise, lanes in `fall_mask` slow-to-fall.
#[derive(Debug, Clone, Copy)]
struct DelaySite<W: LaneWord> {
    net: NetId,
    rise_mask: W,
    fall_mask: W,
}

/// Prepared lane-parallel injection for a batch of at most `W::LANES`
/// faults (64 for the narrow kernel, 256 for the wide one).
#[derive(Debug, Clone)]
pub struct InjectionPlan<W: LaneWord = u64> {
    num_faults: usize,
    stem: Vec<Force<W>>,
    /// Branch forces sorted by (gate, pin) and indexed by `branch_start`,
    /// so the per-gate lookup is a dense slice instead of a linear scan of
    /// the whole batch.
    branch: Vec<(u32, u32, Force<W>)>,
    /// CSR offsets into `branch` per gate (`num_gates + 1` entries); empty
    /// when the batch has no branch faults.
    branch_start: Vec<u32>,
    /// Bridge taps sorted by net and indexed by `tap_start`.
    taps: Vec<BridgeTap<W>>,
    /// CSR offsets into `taps` per net (`num_nets + 1` entries); empty when
    /// the batch has no bridging faults, making the common case branch-free.
    tap_start: Vec<u32>,
    /// Delay-faulted nets of the batch.
    delays: Vec<DelaySite<W>>,
    has_bridges: bool,
    /// Union of the batch's fault cones (stuck-only batches built via
    /// [`InjectionPlan::event_driven`]); `None` forces full re-evaluation.
    cone: Option<FaultCone>,
    /// PI indices carrying a stem force — the only PIs the event-driven
    /// path must reload per cycle.
    forced_pis: Vec<u32>,
    /// Per-gate position inside `cone.gates` (`u32::MAX` for gates outside
    /// the cone); only populated alongside `cone`. The worklist orders
    /// events by this position, which is topological.
    cone_pos: Vec<u32>,
    /// Cone positions of gates carrying a stem or branch force — the
    /// worklist seeds, re-filtered per run against the live-lane mask.
    force_gates: Vec<u32>,
}

impl InjectionPlan<u64> {
    /// Builds the narrow (64-lane) injection plan for `faults`.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 faults are supplied.
    #[must_use]
    pub fn new(netlist: &Netlist, faults: &[Fault]) -> Self {
        InjectionPlan::build(netlist, faults)
    }
}

impl<W: LaneWord> InjectionPlan<W> {
    /// Builds the injection plan for `faults` (one lane each).
    ///
    /// # Panics
    ///
    /// Panics if more than `W::LANES` faults are supplied.
    #[must_use]
    pub fn build(netlist: &Netlist, faults: &[Fault]) -> Self {
        assert!(
            faults.len() <= W::LANES,
            "a batch holds at most {} faults",
            W::LANES
        );
        let num_nets = netlist.num_nets();
        let mut stem = vec![Force::<W>::default(); num_nets];
        let mut raw_branch: Vec<(u32, u32, Force<W>)> = Vec::new();
        let mut raw_taps: Vec<(NetId, BridgeTap<W>)> = Vec::new();
        let mut delays: Vec<DelaySite<W>> = Vec::new();
        let mut has_bridges = false;

        for (lane, fault) in faults.iter().enumerate() {
            let mask = W::lane_bit(lane);
            match *fault {
                Fault::Stuck(f) => {
                    let force = |slot: &mut Force<W>| {
                        if f.stuck_at_one {
                            slot.to_one |= mask;
                        } else {
                            slot.to_zero |= mask;
                        }
                    };
                    match f.site {
                        FaultSite::Net(net) => force(&mut stem[net as usize]),
                        FaultSite::Branch { gate, pin } => {
                            let mut f2 = Force::default();
                            force(&mut f2);
                            raw_branch.push((gate, pin, f2));
                        }
                    }
                }
                Fault::Bridge(f) => {
                    has_bridges = true;
                    let tap = |partner| BridgeTap {
                        partner,
                        mask,
                        kind: f.kind,
                    };
                    raw_taps.push((f.a, tap(f.b)));
                    raw_taps.push((f.b, tap(f.a)));
                }
                Fault::Delay(f) => {
                    let site = match delays.iter_mut().find(|d| d.net == f.net) {
                        Some(site) => site,
                        None => {
                            delays.push(DelaySite {
                                net: f.net,
                                rise_mask: W::zero(),
                                fall_mask: W::zero(),
                            });
                            delays.last_mut().expect("just pushed")
                        }
                    };
                    if f.slow_to_rise {
                        site.rise_mask |= mask;
                    } else {
                        site.fall_mask |= mask;
                    }
                }
            }
        }

        // Merge branch duplicates and index them per gate.
        raw_branch.sort_by_key(|&(g, p, _)| (g, p));
        let mut branch: Vec<(u32, u32, Force<W>)> = Vec::with_capacity(raw_branch.len());
        for (g, p, f) in raw_branch {
            match branch.last_mut() {
                Some(last) if last.0 == g && last.1 == p => {
                    last.2.to_zero |= f.to_zero;
                    last.2.to_one |= f.to_one;
                }
                _ => branch.push((g, p, f)),
            }
        }
        let branch_start = if branch.is_empty() {
            Vec::new()
        } else {
            csr_offsets(netlist.num_gates(), branch.iter().map(|&(g, _, _)| g))
        };

        // Merge bridge-tap duplicates and index them per net.
        raw_taps.sort_by_key(|&(net, tap)| (net, tap.partner, matches!(tap.kind, BridgeKind::Or)));
        let mut taps: Vec<BridgeTap<W>> = Vec::with_capacity(raw_taps.len());
        let mut tap_nets: Vec<NetId> = Vec::with_capacity(raw_taps.len());
        for (net, tap) in raw_taps {
            match (tap_nets.last(), taps.last_mut()) {
                (Some(&last_net), Some(last))
                    if last_net == net && last.partner == tap.partner && last.kind == tap.kind =>
                {
                    last.mask |= tap.mask;
                }
                _ => {
                    tap_nets.push(net);
                    taps.push(tap);
                }
            }
        }
        let tap_start = if taps.is_empty() {
            Vec::new()
        } else {
            csr_offsets(num_nets, tap_nets.iter().copied())
        };

        let forced_pis = (0..netlist.num_pis() as u32)
            .filter(|&k| !stem[netlist.pi(k as usize) as usize].is_noop())
            .collect();

        InjectionPlan {
            num_faults: faults.len(),
            stem,
            branch,
            branch_start,
            taps,
            tap_start,
            delays,
            has_bridges,
            cone: None,
            forced_pis,
            cone_pos: Vec::new(),
            force_gates: Vec::new(),
        }
    }

    /// Builds the plan **and**, for stuck-only batches, the union of the
    /// batch's fault cones so [`FaultEngine::run_test_event_driven`] can
    /// restrict evaluation to it. Batches containing bridging or delay
    /// faults get no cone (their effects are not confined to structural
    /// fanout) and transparently fall back to full evaluation.
    ///
    /// # Panics
    ///
    /// Panics if more than `W::LANES` faults are supplied.
    #[must_use]
    pub fn event_driven(netlist: &Netlist, arena: &GateArena, faults: &[Fault]) -> Self {
        let mut plan = Self::build(netlist, faults);
        if faults.iter().all(|f| matches!(f, Fault::Stuck(_))) {
            let mut seed_nets: Vec<NetId> = Vec::new();
            let mut seed_gates: Vec<u32> = Vec::new();
            for fault in faults {
                if let Fault::Stuck(f) = fault {
                    match f.site {
                        FaultSite::Net(net) => seed_nets.push(net),
                        FaultSite::Branch { gate, .. } => seed_gates.push(gate),
                    }
                }
            }
            let cone = FaultCone::compute(netlist, arena, &seed_nets, &seed_gates);
            let mut cone_pos = vec![u32::MAX; arena.num_gates()];
            for (pos, &g) in cone.gates.iter().enumerate() {
                cone_pos[g as usize] = pos as u32;
            }
            plan.cone_pos = cone_pos;
            plan.force_gates = cone
                .gates
                .iter()
                .enumerate()
                .filter(|&(_, &g)| {
                    let out = arena.gate_output(g as usize);
                    !plan.stem[out as usize].is_noop() || !plan.branch_range(g as usize).is_empty()
                })
                .map(|(pos, _)| pos as u32)
                .collect();
            plan.cone = Some(cone);
        }
        plan
    }

    /// Whether the batch contains delay faults (needs launch cycles).
    #[must_use]
    pub fn has_delays(&self) -> bool {
        !self.delays.is_empty()
    }

    /// Number of lanes in use.
    #[must_use]
    pub fn num_faults(&self) -> usize {
        self.num_faults
    }

    /// Lane mask covering the batch (`num_faults` low lanes).
    #[must_use]
    pub fn lane_mask(&self) -> W {
        W::low_lanes(self.num_faults)
    }

    /// The batch's cone union, when built via
    /// [`InjectionPlan::event_driven`] on a stuck-only batch.
    #[must_use]
    pub fn cone(&self) -> Option<&FaultCone> {
        self.cone.as_ref()
    }

    /// Branch forces of gate `g` (sorted by pin; empty for most gates).
    #[inline]
    fn branch_range(&self, g: usize) -> &[(u32, u32, Force<W>)] {
        if self.branch_start.is_empty() {
            return &[];
        }
        &self.branch[self.branch_start[g] as usize..self.branch_start[g + 1] as usize]
    }

    fn read(&self, net: NetId, values: &[W], late: &[Force<W>]) -> W {
        let mut word = values[net as usize];
        if !self.tap_start.is_empty() {
            let taps = &self.taps
                [self.tap_start[net as usize] as usize..self.tap_start[net as usize + 1] as usize];
            for tap in taps {
                let wired = match tap.kind {
                    BridgeKind::And => values[net as usize] & values[tap.partner as usize],
                    BridgeKind::Or => values[net as usize] | values[tap.partner as usize],
                };
                word = (word & !tap.mask) | (wired & tap.mask);
            }
        }
        if let Some(&force) = late.get(net as usize) {
            word = force.apply(word);
        }
        word
    }
}

/// Builds CSR offsets (`buckets + 1` entries) for `keys`, which must be
/// sorted ascending and `< buckets`.
fn csr_offsets(buckets: usize, keys: impl Iterator<Item = u32>) -> Vec<u32> {
    let mut start = vec![0u32; buckets + 1];
    for key in keys {
        start[key as usize + 1] += 1;
    }
    for i in 1..start.len() {
        start[i] += start[i - 1];
    }
    start
}

/// Reusable fault-parallel simulation state for one netlist.
#[derive(Debug)]
pub struct FaultEngine<'a, W: LaneWord = u64> {
    netlist: &'a Netlist,
    arena: Arc<GateArena>,
    values: Vec<W>,
    inputs_scratch: Vec<W>,
    /// Per-net late-reading overlay for delay faults, rebuilt every cycle.
    late: Vec<Force<W>>,
    /// Nets whose `late` slot may be non-default from a previous run —
    /// cleared on the next run so engines can be reused across batches
    /// with different plans.
    late_dirty: Vec<NetId>,
    /// Previous-cycle driven values of the delay-faulted nets, parallel to
    /// the plan's delay list.
    delay_prev: Vec<W>,
    /// Per-PPI captured-state scratch, reused across runs.
    state_words: Vec<W>,
    /// Event-driven worklist state: per-net "deviates from the good trace"
    /// flags and the list of nets marked this cycle.
    dirty: Vec<bool>,
    touched: Vec<NetId>,
    /// Per-cone-position "queued for evaluation" flags deduplicating heap
    /// pushes; all false between cycles.
    pending: Vec<bool>,
    /// Min-heap of queued cone positions — pops in topological order, so
    /// every gate is evaluated at most once per cycle after all its fanin
    /// events have landed.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<u32>>,
    /// Per-run worklist seeds: cone positions of gates whose forces
    /// survive the live-lane mask.
    live_seeds: Vec<u32>,
    /// Gate evaluations performed since construction (or the last
    /// [`FaultEngine::take_gate_evals`]) — the kernel's work metric.
    gate_evals: u64,
}

impl<'a> FaultEngine<'a, u64> {
    /// Creates a narrow (64-lane) engine for `netlist` with a private
    /// arena.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        FaultEngine::with_arena(netlist, Arc::new(GateArena::build(netlist)))
    }
}

impl<'a, W: LaneWord> FaultEngine<'a, W> {
    /// Creates an engine sharing a prebuilt `arena`. This is the wide
    /// kernel's entry point (`FaultEngine::<W256>::with_arena`) and the
    /// cheap way to spin up per-thread engines in a campaign.
    #[must_use]
    pub fn with_arena(netlist: &'a Netlist, arena: Arc<GateArena>) -> Self {
        debug_assert_eq!(arena.num_nets(), netlist.num_nets());
        FaultEngine {
            netlist,
            arena,
            values: vec![W::zero(); netlist.num_nets()],
            inputs_scratch: Vec::new(),
            late: Vec::new(),
            late_dirty: Vec::new(),
            delay_prev: Vec::new(),
            state_words: Vec::new(),
            dirty: Vec::new(),
            touched: Vec::new(),
            pending: Vec::new(),
            heap: std::collections::BinaryHeap::new(),
            live_seeds: Vec::new(),
            gate_evals: 0,
        }
    }

    /// Gate evaluations performed so far (work metric for benchmarks).
    #[must_use]
    pub fn gate_evals(&self) -> u64 {
        self.gate_evals
    }

    /// Returns and resets the gate-evaluation counter.
    pub fn take_gate_evals(&mut self) -> u64 {
        std::mem::take(&mut self.gate_evals)
    }

    /// Clears any late-reading overlay left by a previous plan and
    /// registers this plan's delay sites as the new dirty set.
    fn reset_late_overlay(&mut self, plan: &InjectionPlan<W>) {
        for net in self.late_dirty.drain(..) {
            if let Some(slot) = self.late.get_mut(net as usize) {
                *slot = Force::default();
            }
        }
        if plan.has_delays() {
            if self.late.len() != self.netlist.num_nets() {
                self.late = vec![Force::default(); self.netlist.num_nets()];
            }
            self.late_dirty
                .extend(plan.delays.iter().map(|site| site.net));
        }
    }

    /// Simulates `test` under the batch `plan`, given the precomputed
    /// fault-free response, and returns the mask of lanes whose fault was
    /// detected (PO mismatch at any cycle or final-state mismatch).
    ///
    /// `skip_lanes` marks lanes that need no simulation (already detected by
    /// an earlier test); they are excluded from the result. The test is cut
    /// short once every live lane has been detected.
    #[must_use]
    pub fn run_test(
        &mut self,
        test: &ScanTest,
        fault_free: &ScanResponse,
        plan: &InjectionPlan<W>,
        skip_lanes: W,
    ) -> W {
        self.run_test_observing(test, fault_free, plan, skip_lanes, true)
    }

    /// Like [`FaultEngine::run_test`], but with the final scan-out
    /// comparison made optional: pass `observe_scan_out = false` to model a
    /// **non-scan** application where only the primary outputs are observed
    /// (the setting of the paper's references \[2\]\[3\], used by the
    /// scan-vs-non-scan ablation).
    #[must_use]
    pub fn run_test_observing(
        &mut self,
        test: &ScanTest,
        fault_free: &ScanResponse,
        plan: &InjectionPlan<W>,
        skip_lanes: W,
        observe_scan_out: bool,
    ) -> W {
        debug_assert_eq!(fault_free.outputs.len(), test.inputs.len());
        self.run_test_full(
            test,
            &fault_free.outputs,
            fault_free.final_code,
            plan,
            skip_lanes,
            observe_scan_out,
        )
    }

    /// Queues the in-cone fanout gates of a net that just deviated from
    /// the fault-free trace. `pending` deduplicates; the heap orders pops
    /// topologically (cone positions ascend along every fanout edge).
    #[inline]
    fn enqueue_fanouts(&mut self, arena: &GateArena, plan: &InjectionPlan<W>, net: NetId) {
        for &g in arena.fanouts(net) {
            let pos = plan.cone_pos[g as usize];
            if pos != u32::MAX && !self.pending[pos as usize] {
                self.pending[pos as usize] = true;
                self.heap.push(std::cmp::Reverse(pos));
            }
        }
    }

    /// Evaluates one cone gate against the good trace: clean fanins read
    /// through from the trace, branch and stem forces applied under the
    /// live mask; a deviating output is marked dirty and — on the
    /// worklist arm — its in-cone fanouts queued.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn eval_cone_gate(
        &mut self,
        arena: &GateArena,
        plan: &InjectionPlan<W>,
        trace: &GoodTrace,
        cycle: usize,
        g: usize,
        live: W,
        enqueue: bool,
    ) {
        let out = arena.gate_output(g);
        let fanins = arena.fanins(g);
        let branch = plan.branch_range(g);
        let stem = plan.stem[out as usize];
        self.gate_evals += 1;
        let word = if branch.is_empty() {
            self.inputs_scratch.clear();
            for &f in fanins {
                self.inputs_scratch.push(if self.dirty[f as usize] {
                    self.values[f as usize]
                } else {
                    W::splat_bit(trace.bit(cycle, f))
                });
            }
            eval_gate_scratch(arena.kind(g), &self.inputs_scratch)
        } else {
            self.inputs_scratch.clear();
            for (pin, &f) in fanins.iter().enumerate() {
                let mut v = if self.dirty[f as usize] {
                    self.values[f as usize]
                } else {
                    W::splat_bit(trace.bit(cycle, f))
                };
                for &(_, bp, force) in branch {
                    if bp as usize == pin {
                        v = force.masked(live).apply(v);
                    }
                }
                self.inputs_scratch.push(v);
            }
            eval_gate_scratch(arena.kind(g), &self.inputs_scratch)
        };
        let word = stem.masked(live).apply(word);
        self.values[out as usize] = word;
        if word != W::splat_bit(trace.bit(cycle, out)) {
            self.dirty[out as usize] = true;
            self.touched.push(out);
            if enqueue {
                self.enqueue_fanouts(arena, plan, out);
            }
        }
    }

    /// Event-driven PPSFP variant of [`FaultEngine::run_test_observing`]:
    /// given the fault-free `trace` of `test`, evaluates only the gates of
    /// the plan's cone union whose fanins deviate from the trace. Falls
    /// back to full evaluation when the plan carries no cone (non-stuck
    /// batches or plans built with [`InjectionPlan::build`]).
    ///
    /// Detection results are bit-identical to the full path in every live
    /// lane.
    #[must_use]
    pub fn run_test_event_driven(
        &mut self,
        test: &ScanTest,
        trace: &GoodTrace,
        plan: &InjectionPlan<W>,
        skip_lanes: W,
        observe_scan_out: bool,
    ) -> W {
        debug_assert_eq!(trace.num_cycles(), test.inputs.len());
        let Some(cone) = plan.cone.as_ref() else {
            return self.run_test_full(
                test,
                trace.outputs(),
                trace.final_code(),
                plan,
                skip_lanes,
                observe_scan_out,
            );
        };
        let live = plan.lane_mask() & !skip_lanes;
        if live.is_zero() {
            return W::zero();
        }
        let arena = Arc::clone(&self.arena);
        let netlist = self.netlist;
        let num_ppis = netlist.num_ppis();
        let mut detected = W::zero();

        if self.dirty.len() != arena.num_nets() {
            self.dirty = vec![false; arena.num_nets()];
        }
        if self.pending.len() != cone.gates.len() {
            self.pending = vec![false; cone.gates.len()];
        }
        debug_assert!(self.touched.is_empty());
        debug_assert!(self.heap.is_empty());

        // Worklist seeds for this run: forced gates whose forces survive
        // the live mask. Dropped lanes' forces are masked to noops, so a
        // mostly-detected batch seeds (and evaluates) almost nothing.
        self.live_seeds.clear();
        for &pos in &plan.force_gates {
            let g = cone.gates[pos as usize] as usize;
            let out = arena.gate_output(g);
            let stem_live = !plan.stem[out as usize].masked(live).is_noop();
            let branch_live = plan
                .branch_range(g)
                .iter()
                .any(|&(_, _, f)| !f.masked(live).is_noop());
            if stem_live || branch_live {
                self.live_seeds.push(pos);
            }
        }
        // Hybrid dispatch: on tiny cones (or barely-dropped batches) the
        // per-event heap traffic costs more than just scanning the cone
        // with a per-gate activity test, so fall back to the dense arm
        // when the seed count is a sizeable fraction of the cone.
        let use_scan = self.live_seeds.len() * 8 >= cone.gates.len();

        let mut state_words = std::mem::take(&mut self.state_words);
        state_words.clear();
        state_words.extend((0..num_ppis).map(|k| W::splat_bit(test.init_code >> k & 1 == 1)));

        for (cycle, &input) in test.inputs.iter().enumerate() {
            // Forced PIs: the only primary inputs that can deviate.
            for &k in &plan.forced_pis {
                let net = netlist.pi(k as usize);
                let good = W::splat_bit(input >> k & 1 == 1);
                let word = plan.stem[net as usize].masked(live).apply(good);
                self.values[net as usize] = word;
                if word != good {
                    self.dirty[net as usize] = true;
                    self.touched.push(net);
                    if !use_scan {
                        self.enqueue_fanouts(&arena, plan, net);
                    }
                }
            }
            // PPIs: reload the captured faulty state every cycle.
            for (k, &word) in state_words.iter().enumerate() {
                let net = netlist.ppi(k);
                let good = W::splat_bit(trace.bit(cycle, net));
                let word = plan.stem[net as usize].masked(live).apply(word);
                self.values[net as usize] = word;
                if word != good {
                    self.dirty[net as usize] = true;
                    self.touched.push(net);
                    if !use_scan {
                        self.enqueue_fanouts(&arena, plan, net);
                    }
                }
            }
            if use_scan {
                // Dense arm: one pass over the (small) cone with a cheap
                // activity test, merging the sorted live-seed positions.
                let mut next_seed = 0usize;
                for (pos, &g) in cone.gates.iter().enumerate() {
                    let g = g as usize;
                    let forced = next_seed < self.live_seeds.len()
                        && self.live_seeds[next_seed] as usize == pos;
                    if forced {
                        next_seed += 1;
                    }
                    let active = forced || arena.fanins(g).iter().any(|&f| self.dirty[f as usize]);
                    if active {
                        self.eval_cone_gate(&arena, plan, trace, cycle, g, live, false);
                    }
                }
            } else {
                for &pos in &self.live_seeds {
                    if !self.pending[pos as usize] {
                        self.pending[pos as usize] = true;
                        self.heap.push(std::cmp::Reverse(pos));
                    }
                }
                // Drain the worklist in topological order: every popped
                // gate either carries a live force or has a fanin that
                // deviates.
                while let Some(std::cmp::Reverse(pos)) = self.heap.pop() {
                    self.pending[pos as usize] = false;
                    let g = cone.gates[pos as usize] as usize;
                    self.eval_cone_gate(&arena, plan, trace, cycle, g, live, true);
                }
            }

            // Observe POs: only dirty nets can deviate from the reference.
            let ff_out = trace.outputs()[cycle];
            for (z, &net) in netlist.pos().iter().enumerate() {
                if self.dirty[net as usize] {
                    let reference = W::splat_bit(ff_out >> z & 1 == 1);
                    detected |= (self.values[net as usize] ^ reference) & live;
                }
            }
            // Capture next state per lane (good values read through).
            for (k, slot) in state_words.iter_mut().enumerate() {
                let net = netlist.ppos()[k];
                *slot = if self.dirty[net as usize] {
                    self.values[net as usize]
                } else {
                    W::splat_bit(trace.bit(cycle, net))
                };
            }
            // Drain the worklist so the next cycle starts clean.
            for net in self.touched.drain(..) {
                self.dirty[net as usize] = false;
            }
            if detected == live {
                self.state_words = state_words;
                return detected;
            }
        }

        if observe_scan_out {
            for (k, &word) in state_words.iter().enumerate() {
                let reference = W::splat_bit(trace.final_code() >> k & 1 == 1);
                detected |= (word ^ reference) & live;
            }
        }
        self.state_words = state_words;
        detected
    }

    fn run_test_full(
        &mut self,
        test: &ScanTest,
        ff_outputs: &[u64],
        ff_final_code: u64,
        plan: &InjectionPlan<W>,
        skip_lanes: W,
        observe_scan_out: bool,
    ) -> W {
        let live = plan.lane_mask() & !skip_lanes;
        if live.is_zero() {
            return W::zero();
        }
        let netlist = self.netlist;
        let num_pis = netlist.num_pis();
        let num_ppis = netlist.num_ppis();
        let mut detected = W::zero();

        // Delay-fault state: late overlay (per net) and previous driven
        // values per delayed net.
        self.reset_late_overlay(plan);
        self.delay_prev.clear();
        self.delay_prev.resize(plan.delays.len(), W::zero());

        // Scan-in: broadcast the initial code, then stem forces on PPIs.
        let mut state_words = std::mem::take(&mut self.state_words);
        state_words.clear();
        state_words.extend((0..num_ppis).map(|k| W::splat_bit(test.init_code >> k & 1 == 1)));

        for (cycle, &input) in test.inputs.iter().enumerate() {
            // Load PIs (broadcast + stem forces).
            for k in 0..num_pis {
                let net = netlist.pi(k);
                let word = W::splat_bit(input >> k & 1 == 1);
                self.values[net as usize] = plan.stem[net as usize].apply(word);
            }
            // Load PPIs (per-lane faulty state + stem forces).
            for (k, &word) in state_words.iter().enumerate() {
                let net = netlist.ppi(k);
                self.values[net as usize] = plan.stem[net as usize].apply(word);
            }

            // Pass 1 settles the driven values (late overlay cleared).
            if plan.has_delays() {
                for site in &plan.delays {
                    self.late[site.net as usize] = Force::default();
                }
            }
            self.eval_pass(plan);
            // Compute late readings from this cycle's launches, then
            // re-derive all consumers in a second exact pass (the first
            // test cycle launches nothing: scan shifting is slow).
            let mut needs_second_pass = plan.has_bridges;
            if plan.has_delays() {
                for (site, prev) in plan.delays.iter().zip(self.delay_prev.iter_mut()) {
                    let driven = self.values[site.net as usize];
                    if cycle > 0 {
                        let late_rise = site.rise_mask & driven & !*prev;
                        let late_fall = site.fall_mask & !driven & *prev;
                        self.late[site.net as usize] = Force {
                            to_zero: late_rise,
                            to_one: late_fall,
                        };
                        needs_second_pass |= !late_rise.is_zero() || !late_fall.is_zero();
                    }
                    *prev = driven;
                }
            }
            if needs_second_pass {
                self.eval_pass(plan);
            }

            // Observe POs against the fault-free response.
            let ff_out = ff_outputs[cycle];
            for (z, &net) in netlist.pos().iter().enumerate() {
                let observed = plan.read(net, &self.values, &self.late);
                let reference = W::splat_bit(ff_out >> z & 1 == 1);
                detected |= (observed ^ reference) & live;
            }

            // Capture next state per lane (bridged/late readings included).
            for (k, slot) in state_words.iter_mut().enumerate() {
                *slot = plan.read(netlist.ppos()[k], &self.values, &self.late);
            }

            if detected == live {
                self.state_words = state_words;
                return detected;
            }
        }

        // Scan-out: compare the captured final state.
        if observe_scan_out {
            for (k, &word) in state_words.iter().enumerate() {
                let reference = W::splat_bit(ff_final_code >> k & 1 == 1);
                detected |= (word ^ reference) & live;
            }
        }
        self.state_words = state_words;
        detected
    }

    /// Evaluates one combinational cycle with **pattern-parallel lanes**:
    /// each bit lane carries a different (input, state) point while the
    /// plan's faults are injected in every lane (build the plan from
    /// `W::LANES` copies of one fault). Writes the per-PO and per-PPO value
    /// words into the caller-provided buffers (cleared first), so the
    /// per-block hot loop of the exhaustive analysis allocates nothing.
    ///
    /// This is the kernel of the exhaustive detectability analysis: no
    /// launch cycle exists, so delay faults never show up here (their
    /// detectability is inherently sequential).
    ///
    /// # Panics
    ///
    /// Panics if the word slices do not match the netlist's PI/PPI counts.
    pub fn eval_single_cycle_patterns_into(
        &mut self,
        pi_words: &[W],
        ppi_words: &[W],
        plan: &InjectionPlan<W>,
        po_out: &mut Vec<W>,
        ppo_out: &mut Vec<W>,
    ) {
        let netlist = self.netlist;
        assert_eq!(pi_words.len(), netlist.num_pis());
        assert_eq!(ppi_words.len(), netlist.num_ppis());
        self.reset_late_overlay(plan);
        for (k, &word) in pi_words.iter().enumerate() {
            let net = netlist.pi(k);
            self.values[net as usize] = plan.stem[net as usize].apply(word);
        }
        for (k, &word) in ppi_words.iter().enumerate() {
            let net = netlist.ppi(k);
            self.values[net as usize] = plan.stem[net as usize].apply(word);
        }
        self.eval_pass(plan);
        if plan.has_bridges {
            self.eval_pass(plan);
        }
        po_out.clear();
        po_out.extend(
            netlist
                .pos()
                .iter()
                .map(|&net| plan.read(net, &self.values, &self.late)),
        );
        ppo_out.clear();
        ppo_out.extend(
            netlist
                .ppos()
                .iter()
                .map(|&net| plan.read(net, &self.values, &self.late)),
        );
    }

    /// Allocating convenience wrapper around
    /// [`FaultEngine::eval_single_cycle_patterns_into`].
    ///
    /// # Panics
    ///
    /// Panics if the word slices do not match the netlist's PI/PPI counts.
    #[must_use]
    pub fn eval_single_cycle_patterns(
        &mut self,
        pi_words: &[W],
        ppi_words: &[W],
        plan: &InjectionPlan<W>,
    ) -> (Vec<W>, Vec<W>) {
        let mut pos = Vec::new();
        let mut ppos = Vec::new();
        self.eval_single_cycle_patterns_into(pi_words, ppi_words, plan, &mut pos, &mut ppos);
        (pos, ppos)
    }

    fn eval_pass(&mut self, plan: &InjectionPlan<W>) {
        let arena = Arc::clone(&self.arena);
        let branchy = !plan.branch.is_empty();
        let tapped = plan.has_bridges || plan.has_delays();
        for &g in arena.schedule() {
            let g = g as usize;
            let out = arena.gate_output(g) as usize;
            let stem = plan.stem[out];
            let word = if tapped || branchy {
                // Slow path: gather inputs through bridge taps, late
                // readings, and branch forces.
                let branch = plan.branch_range(g);
                self.inputs_scratch.clear();
                for (pin, &input) in arena.fanins(g).iter().enumerate() {
                    let mut v = if tapped {
                        plan.read(input, &self.values, &self.late)
                    } else {
                        self.values[input as usize]
                    };
                    for &(_, bp, force) in branch {
                        if bp as usize == pin {
                            v = force.apply(v);
                        }
                    }
                    self.inputs_scratch.push(v);
                }
                eval_gate_scratch(arena.kind(g), &self.inputs_scratch)
            } else {
                eval_gate_fanins(arena.kind(g), arena.fanins(g), &self.values)
            };
            self.values[out] = if stem.is_noop() {
                word
            } else {
                stem.apply(word)
            };
        }
        self.gate_evals += arena.num_gates() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{BridgingFault, StuckFault};
    use crate::logic::{self, Evaluator};
    use crate::word::W256;
    use scanft_netlist::{GateKind, NetlistBuilder};
    use scanft_synth::{synthesize, SynthConfig};

    fn lion_netlist() -> scanft_synth::SynthesizedCircuit {
        synthesize(&scanft_fsm::benchmarks::lion(), &SynthConfig::default())
    }

    #[test]
    fn empty_plan_detects_nothing() {
        let c = lion_netlist();
        let test = ScanTest::new(0, vec![0b01, 0b11]);
        let ff = logic::simulate(c.netlist(), &test);
        let plan = InjectionPlan::new(c.netlist(), &[]);
        let mut engine = FaultEngine::new(c.netlist());
        assert_eq!(engine.run_test(&test, &ff, &plan, 0), 0);
        // An empty batch must not cost any gate evaluations either — the
        // regression guard for the empty-batch bug fixed at the campaign
        // layer.
        assert_eq!(engine.gate_evals(), 0);
    }

    #[test]
    fn stem_stuck_fault_on_po_net_is_detected() {
        let c = lion_netlist();
        let n = c.netlist();
        // Stuck-at-0 on the PO net: any test whose fault-free output has a 1
        // detects it.
        let po_net = n.pos()[0];
        let fault = Fault::Stuck(StuckFault {
            site: FaultSite::Net(po_net),
            stuck_at_one: false,
        });
        let test = ScanTest::new(0, vec![0b01]); // output 1 fault-free
        let ff = logic::simulate(n, &test);
        assert_eq!(ff.outputs, vec![1]);
        let plan = InjectionPlan::new(n, &[fault]);
        let mut engine = FaultEngine::new(n);
        assert_eq!(engine.run_test(&test, &ff, &plan, 0), 1);
        assert!(engine.gate_evals() > 0);
    }

    #[test]
    fn fault_free_lanes_stay_silent() {
        // A batch of one fault leaves lanes 1..64 unused; they must not
        // produce detections.
        let c = lion_netlist();
        let n = c.netlist();
        let fault = Fault::Stuck(StuckFault {
            site: FaultSite::Net(n.pos()[0]),
            stuck_at_one: true,
        });
        let test = ScanTest::new(0, vec![0b00]); // output 0 fault-free
        let ff = logic::simulate(n, &test);
        let plan = InjectionPlan::new(n, &[fault]);
        let mut engine = FaultEngine::new(n);
        let det = engine.run_test(&test, &ff, &plan, 0);
        assert_eq!(det, 1);
    }

    #[test]
    fn skip_lanes_are_excluded() {
        let c = lion_netlist();
        let n = c.netlist();
        let fault = Fault::Stuck(StuckFault {
            site: FaultSite::Net(n.pos()[0]),
            stuck_at_one: false,
        });
        let test = ScanTest::new(0, vec![0b01]);
        let ff = logic::simulate(n, &test);
        let plan = InjectionPlan::new(n, &[fault]);
        let mut engine = FaultEngine::new(n);
        assert_eq!(engine.run_test(&test, &ff, &plan, 1), 0);
    }

    #[test]
    fn final_state_mismatch_detects() {
        // A fault on a next-state line only (not observable at the PO in
        // one cycle) is caught by the scan-out comparison.
        let c = lion_netlist();
        let n = c.netlist();
        let ns0 = n.ppos()[0];
        let fault = Fault::Stuck(StuckFault {
            site: FaultSite::Net(ns0),
            stuck_at_one: true,
        });
        // From state 0 input 00: ns = 0 (bit0 = 0 fault-free), output 0.
        let test = ScanTest::new(0, vec![0b00]);
        let ff = logic::simulate(n, &test);
        assert_eq!(ff.final_code, 0);
        let plan = InjectionPlan::new(n, &[fault]);
        let mut engine = FaultEngine::new(n);
        assert_eq!(engine.run_test(&test, &ff, &plan, 0), 1);
    }

    #[test]
    fn faulty_state_propagates_across_cycles() {
        // Build a tiny machine by hand where a fault flips the state in
        // cycle 1 and the difference surfaces at the PO only in cycle 2.
        // ns = x XOR ps, z = ps.
        let mut b = NetlistBuilder::new(1, 1);
        let x = b.pi(0);
        let ps = b.ppi(0);
        let ns = b.add_gate(GateKind::Xor, &[x, ps]).unwrap();
        let z = b.add_gate(GateKind::Buf, &[ps]).unwrap();
        let n = b.finish(vec![z], vec![ns]).unwrap();
        // Fault: ns stuck-at-1.
        let fault = Fault::Stuck(StuckFault {
            site: FaultSite::Net(ns),
            stuck_at_one: true,
        });
        // Test: start 0, apply (0, 0): fault-free states 0,0 outputs 0,0.
        // Faulty: cycle1 captures 1, cycle2 output = 1 -> detected at PO.
        let test = ScanTest::new(0, vec![0, 0]);
        let ff = logic::simulate(&n, &test);
        assert_eq!(ff.outputs, vec![0, 0]);
        let plan = InjectionPlan::new(&n, &[fault]);
        let mut engine = FaultEngine::new(&n);
        assert_eq!(engine.run_test(&test, &ff, &plan, 0), 1);
        // With a length-1 test the same fault is caught at scan-out instead.
        let short = ScanTest::new(0, vec![0]);
        let ff_short = logic::simulate(&n, &short);
        assert_eq!(engine.run_test(&short, &ff_short, &plan, 0), 1);
    }

    #[test]
    fn branch_fault_differs_from_stem() {
        // x1 fans out to two ANDs; a branch fault on one pin must leave the
        // other path healthy.
        let mut b = NetlistBuilder::new(2, 0);
        let a1 = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let a2 = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let n = b.finish(vec![a1, a2], vec![]).unwrap();
        // Branch: gate 1 (a2), pin 0 (reads x1) stuck-at-0.
        let branch = Fault::Stuck(StuckFault {
            site: FaultSite::Branch { gate: 1, pin: 0 },
            stuck_at_one: false,
        });
        let stem = Fault::Stuck(StuckFault {
            site: FaultSite::Net(0),
            stuck_at_one: false,
        });
        let test = ScanTest::new(0, vec![0b11]);
        let ff = logic::simulate(&n, &test);
        assert_eq!(ff.outputs, vec![0b11]); // both POs 1
        let plan = InjectionPlan::new(&n, &[branch, stem]);
        let mut engine = FaultEngine::new(&n);
        let det = engine.run_test(&test, &ff, &plan, 0);
        assert_eq!(det, 0b11); // both detected...
                               // ...but the branch fault must NOT disturb PO a1. Verify by
                               // injecting only the branch fault and checking which PO flips.
        let plan1 = InjectionPlan::new(&n, &[branch]);
        // Simulate manually: load 11, eval.
        let mut eng = FaultEngine::new(&n);
        let det1 = eng.run_test(&test, &ff, &plan1, 0);
        assert_eq!(det1, 1);
        // PO values after the run: a1 unaffected (lane 0 must still be 1).
        assert_eq!(plan1.read(n.pos()[0], &eng.values, &[]) & 1, 1);
        assert_eq!(plan1.read(n.pos()[1], &eng.values, &[]) & 1, 0);
    }

    #[test]
    fn duplicate_branch_faults_share_one_indexed_entry() {
        // Two branch faults on the same (gate, pin) — opposite polarities in
        // different lanes — must merge into one CSR entry and act per lane.
        let mut b = NetlistBuilder::new(2, 0);
        let a1 = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let n = b.finish(vec![a1], vec![]).unwrap();
        let sa0 = Fault::Stuck(StuckFault {
            site: FaultSite::Branch { gate: 0, pin: 0 },
            stuck_at_one: false,
        });
        let sa1 = Fault::Stuck(StuckFault {
            site: FaultSite::Branch { gate: 0, pin: 0 },
            stuck_at_one: true,
        });
        let plan = InjectionPlan::new(&n, &[sa0, sa1]);
        assert_eq!(plan.branch.len(), 1);
        assert_eq!(plan.branch_range(0).len(), 1);
        let mut engine = FaultEngine::new(&n);
        // 11 -> PO 1 fault-free: lane 0 (sa0) flips it, lane 1 (sa1) agrees.
        let test = ScanTest::new(0, vec![0b11]);
        let ff = logic::simulate(&n, &test);
        assert_eq!(engine.run_test(&test, &ff, &plan, 0), 0b01);
        // 01 -> PO 0 fault-free: lane 1 flips it.
        let test = ScanTest::new(0, vec![0b10]);
        let ff = logic::simulate(&n, &test);
        assert_eq!(engine.run_test(&test, &ff, &plan, 0), 0b10);
    }

    #[test]
    fn bridge_fault_wired_and() {
        // Independent cones: a = AND(x1,x2) -> PO1 via NOT; b = OR(x3,x4)
        // -> PO2 via NOT. Bridge a~b wired-AND.
        let mut bld = NetlistBuilder::new(4, 0);
        let a = bld.add_gate(GateKind::And, &[0, 1]).unwrap();
        let na = bld.add_gate(GateKind::Not, &[a]).unwrap();
        let o = bld.add_gate(GateKind::Or, &[2, 3]).unwrap();
        let no = bld.add_gate(GateKind::Not, &[o]).unwrap();
        let n = bld.finish(vec![na, no], vec![]).unwrap();
        let bridge = Fault::Bridge(BridgingFault {
            a,
            b: o,
            kind: BridgeKind::And,
        });
        // Pattern x = 1 1 0 0: a=1, o=0; wired-AND makes a read as 0:
        // PO1 flips 0 -> 1. Detected.
        let test = ScanTest::new(0, vec![0b0011]);
        let ff = logic::simulate(&n, &test);
        assert_eq!(ff.outputs, vec![0b10]); // na=0, no=1
        let plan = InjectionPlan::new(&n, &[bridge]);
        let mut engine = FaultEngine::new(&n);
        assert_eq!(engine.run_test(&test, &ff, &plan, 0), 1);
        // Pattern 1 1 1 1: a=1, o=1, wired value 1 = both driven: no effect.
        let quiet = ScanTest::new(0, vec![0b1111]);
        let ff_quiet = logic::simulate(&n, &quiet);
        assert_eq!(engine.run_test(&quiet, &ff_quiet, &plan, 0), 0);
    }

    #[test]
    fn bridge_fault_wired_or_and_order_independence() {
        // The bridged pair is deliberately ordered so one consumer comes
        // between the two drivers in topological order: the two-pass
        // evaluation must still be exact.
        let mut bld = NetlistBuilder::new(4, 0);
        let a = bld.add_gate(GateKind::And, &[0, 1]).unwrap(); // g1
        let na = bld.add_gate(GateKind::Not, &[a]).unwrap(); // consumer of a, before b
        let o = bld.add_gate(GateKind::Or, &[2, 3]).unwrap(); // g3 = b
        let no = bld.add_gate(GateKind::Not, &[o]).unwrap();
        let n = bld.finish(vec![na, no], vec![]).unwrap();
        let bridge = Fault::Bridge(BridgingFault {
            a,
            b: o,
            kind: BridgeKind::Or,
        });
        // x = 0 0 1 0: a=0, o=1; wired-OR -> a reads as 1: PO1 flips 1 -> 0.
        let test = ScanTest::new(0, vec![0b0100]);
        let ff = logic::simulate(&n, &test);
        assert_eq!(ff.outputs, vec![0b01]);
        let plan = InjectionPlan::new(&n, &[bridge]);
        let mut engine = FaultEngine::new(&n);
        assert_eq!(engine.run_test(&test, &ff, &plan, 0), 1);
    }

    #[test]
    fn sixty_four_faults_in_one_batch() {
        let c = lion_netlist();
        let n = c.netlist();
        let stuck = crate::faults::enumerate_stuck(n);
        let batch: Vec<Fault> = stuck.iter().take(64).copied().map(Fault::Stuck).collect();
        let plan = InjectionPlan::new(n, &batch);
        assert_eq!(plan.lane_mask(), u64::MAX);
        // The exhaustive per-transition test set must detect a good chunk.
        let lion = scanft_fsm::benchmarks::lion();
        let mut engine = FaultEngine::new(n);
        let mut detected = 0u64;
        for t in lion.transitions() {
            let test = ScanTest::new(u64::from(t.from), vec![t.input]);
            let ff = logic::simulate(n, &test);
            detected |= engine.run_test(&test, &ff, &plan, detected);
        }
        assert!(detected.count_ones() > 32, "{detected:b}");
    }

    #[test]
    fn wide_kernel_lanes_agree_with_narrow_ones() {
        // 256 lanes: the same fault placed in lane l of a W256 batch must
        // behave exactly like lane l % 64 of the narrow batch.
        let c = lion_netlist();
        let n = c.netlist();
        let stuck = crate::faults::enumerate_stuck(n);
        let wide_batch: Vec<Fault> = stuck
            .iter()
            .cycle()
            .take(256)
            .copied()
            .map(Fault::Stuck)
            .collect();
        let arena = Arc::new(GateArena::build(n));
        let wide_plan = InjectionPlan::<W256>::build(n, &wide_batch);
        assert_eq!(wide_plan.lane_mask(), W256::ones());
        let mut wide = FaultEngine::<W256>::with_arena(n, Arc::clone(&arena));
        let mut narrow = FaultEngine::new(n);
        let lion = scanft_fsm::benchmarks::lion();
        for t in lion.transitions() {
            let test = ScanTest::new(u64::from(t.from), vec![t.input]);
            let ff = logic::simulate(n, &test);
            let w = wide.run_test(&test, &ff, &wide_plan, W256::zero());
            for (chunk, faults64) in wide_batch.chunks(64).enumerate() {
                let plan = InjectionPlan::new(n, faults64);
                let d = narrow.run_test(&test, &ff, &plan, 0);
                assert_eq!(w.limb(chunk), d, "test {t:?} chunk {chunk}");
            }
        }
    }

    #[test]
    fn event_driven_matches_full_resimulation() {
        let c = lion_netlist();
        let n = c.netlist();
        let arena = Arc::new(GateArena::build(n));
        let stuck = crate::faults::enumerate_stuck(n);
        let lion = scanft_fsm::benchmarks::lion();
        let tests: Vec<ScanTest> = lion
            .transitions()
            .map(|t| ScanTest::new(u64::from(t.from), vec![t.input]))
            .collect();
        let mut full = FaultEngine::new(n);
        let mut event = FaultEngine::with_arena(n, Arc::clone(&arena));
        let mut evaluator = Evaluator::with_arena(n, Arc::clone(&arena));
        for batch in stuck.chunks(64) {
            let faults: Vec<Fault> = batch.iter().copied().map(Fault::Stuck).collect();
            let plan = InjectionPlan::event_driven(n, &arena, &faults);
            assert!(plan.cone().is_some());
            for test in &tests {
                let trace = evaluator.record_trace(test);
                let ff = trace.response();
                for skip in [0u64, 0b1010] {
                    let reference = full.run_test(test, &ff, &plan, skip);
                    let got = event.run_test_event_driven(test, &trace, &plan, skip, true);
                    assert_eq!(got, reference);
                    let reference = full.run_test_observing(test, &ff, &plan, skip, false);
                    let got = event.run_test_event_driven(test, &trace, &plan, skip, false);
                    assert_eq!(got, reference);
                }
            }
        }
        // The whole point: the event-driven engine does less work.
        assert!(event.gate_evals() < full.gate_evals());
    }

    #[test]
    fn event_driven_plan_with_bridges_falls_back_to_full() {
        let mut bld = NetlistBuilder::new(4, 0);
        let a = bld.add_gate(GateKind::And, &[0, 1]).unwrap();
        let na = bld.add_gate(GateKind::Not, &[a]).unwrap();
        let o = bld.add_gate(GateKind::Or, &[2, 3]).unwrap();
        let no = bld.add_gate(GateKind::Not, &[o]).unwrap();
        let n = bld.finish(vec![na, no], vec![]).unwrap();
        let arena = GateArena::build(&n);
        let bridge = Fault::Bridge(BridgingFault {
            a,
            b: o,
            kind: BridgeKind::And,
        });
        let plan = InjectionPlan::event_driven(&n, &arena, &[bridge]);
        assert!(plan.cone().is_none(), "bridge batches get no cone");
        let test = ScanTest::new(0, vec![0b0011]);
        let mut evaluator = Evaluator::new(&n);
        let trace = evaluator.record_trace(&test);
        let mut engine = FaultEngine::new(&n);
        assert_eq!(
            engine.run_test_event_driven(&test, &trace, &plan, 0, true),
            1
        );
    }

    #[test]
    fn delay_fault_needs_a_launch_cycle() {
        use crate::faults::DelayFault;
        // z = BUF(x1): a slow-to-rise x1 is visible only when a 0->1 launch
        // happens between consecutive at-speed cycles.
        let mut b = NetlistBuilder::new(1, 0);
        let z = b.add_gate(GateKind::Buf, &[0]).unwrap();
        let n = b.finish(vec![z], vec![]).unwrap();
        let fault = Fault::Delay(DelayFault {
            net: 0,
            slow_to_rise: true,
        });
        let plan = InjectionPlan::new(&n, &[fault]);
        assert!(plan.has_delays());
        let mut engine = FaultEngine::new(&n);

        // Length-1 tests can never detect it (no launch).
        for input in [0u32, 1] {
            let t = ScanTest::new(0, vec![input]);
            let ff = logic::simulate(&n, &t);
            assert_eq!(engine.run_test(&t, &ff, &plan, 0), 0, "input {input}");
        }
        // 0 -> 1 launches the slow rise: detected at the PO of cycle 2.
        let t = ScanTest::new(0, vec![0, 1]);
        let ff = logic::simulate(&n, &t);
        assert_eq!(ff.outputs, vec![0, 1]);
        assert_eq!(engine.run_test(&t, &ff, &plan, 0), 1);
        // 1 -> 1 launches nothing.
        let t = ScanTest::new(0, vec![1, 1]);
        let ff = logic::simulate(&n, &t);
        assert_eq!(engine.run_test(&t, &ff, &plan, 0), 0);
        // 1 -> 0 is the fast direction for slow-to-rise.
        let t = ScanTest::new(0, vec![1, 0]);
        let ff = logic::simulate(&n, &t);
        assert_eq!(engine.run_test(&t, &ff, &plan, 0), 0);
        // ...but it is the slow direction for a slow-to-fall fault.
        let fall = Fault::Delay(DelayFault {
            net: 0,
            slow_to_rise: false,
        });
        let plan_fall = InjectionPlan::new(&n, &[fall]);
        assert_eq!(engine.run_test(&t, &ff, &plan_fall, 0), 1);
    }

    #[test]
    fn delay_fault_on_state_feedback_path() {
        use crate::faults::DelayFault;
        // ns = XOR(x, ps), z = BUF(ps): a slow next-state line corrupts the
        // captured state, visible one cycle later at the PO.
        let mut b = NetlistBuilder::new(1, 1);
        let x = b.pi(0);
        let ps = b.ppi(0);
        let ns = b.add_gate(GateKind::Xor, &[x, ps]).unwrap();
        let z = b.add_gate(GateKind::Buf, &[ps]).unwrap();
        let n = b.finish(vec![z], vec![ns]).unwrap();
        let fault = Fault::Delay(DelayFault {
            net: ns,
            slow_to_rise: true,
        });
        let plan = InjectionPlan::new(&n, &[fault]);
        let mut engine = FaultEngine::new(&n);
        // Start 0; inputs (0, 1, 0): ns sequence 0,1,1; the 0->1 rise of ns
        // is launched at cycle 2, so the captured state stays 0 and the
        // cycle-3 PO (and the scan-out) expose it.
        let t = ScanTest::new(0, vec![0, 1, 0]);
        let ff = logic::simulate(&n, &t);
        assert_eq!(ff.final_code, 1);
        assert_eq!(engine.run_test(&t, &ff, &plan, 0), 1);
        // The same fault with only one cycle: no launch, no detection.
        let t1 = ScanTest::new(0, vec![1]);
        let ff1 = logic::simulate(&n, &t1);
        assert_eq!(engine.run_test(&t1, &ff1, &plan, 0), 0);
    }

    #[test]
    fn delay_and_stuck_in_one_batch() {
        use crate::faults::DelayFault;
        let c = lion_netlist();
        let n = c.netlist();
        let stuck = Fault::Stuck(StuckFault {
            site: FaultSite::Net(n.pos()[0]),
            stuck_at_one: false,
        });
        let delay = Fault::Delay(DelayFault {
            net: n.pos()[0],
            slow_to_rise: true,
        });
        let plan = InjectionPlan::new(n, &[stuck, delay]);
        let mut engine = FaultEngine::new(n);
        // From state 0: 00 (z=0) then 01 (z=1): the stuck-at-0 is caught at
        // cycle 2, and the z-net 0->1 rise is launched at cycle 2 too.
        let t = ScanTest::new(0, vec![0b00, 0b01]);
        let ff = logic::simulate(n, &t);
        assert_eq!(ff.outputs, vec![0, 1]);
        let det = engine.run_test(&t, &ff, &plan, 0);
        assert_eq!(det, 0b11);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn plan_rejects_oversized_batches() {
        let c = lion_netlist();
        let n = c.netlist();
        let faults = vec![
            Fault::Stuck(StuckFault {
                site: FaultSite::Net(0),
                stuck_at_one: false,
            });
            65
        ];
        let _ = InjectionPlan::new(n, &faults);
    }

    #[test]
    #[should_panic(expected = "at most 256")]
    fn wide_plan_rejects_oversized_batches() {
        let c = lion_netlist();
        let n = c.netlist();
        let faults = vec![
            Fault::Stuck(StuckFault {
                site: FaultSite::Net(0),
                stuck_at_one: false,
            });
            257
        ];
        let _ = InjectionPlan::<W256>::build(n, &faults);
    }
}
