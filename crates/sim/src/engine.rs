//! 64-way fault-parallel scan-test simulation.
//!
//! The engine simulates up to 64 faults simultaneously: every net carries a
//! 64-bit word whose lane `l` is the value under fault `l` of the current
//! batch. Faulty next-state words feed the next cycle's present-state lines,
//! so faulty-state propagation across the cycles of a test — the effect that
//! makes multi-transition functional tests interesting — is captured
//! per lane. A fault is detected when its lane differs from the fault-free
//! response at a primary output in any cycle, or in the scanned-out final
//! state (exactly the paper's observation model).
//!
//! # Injection
//!
//! - stuck-at **stem** faults force a net's word in their lane after the net
//!   is driven (and at PI/PPI load);
//! - stuck-at **branch** faults force the value read by one specific gate
//!   input pin;
//! - **bridging** faults replace the value read from either bridged net by
//!   the wired-AND/OR of the two driven values. Because qualifying pairs
//!   are non-feedback (no structural path either way), neither driven value
//!   depends on the bridge, so evaluating the netlist **twice** per cycle
//!   yields exact values: the first pass settles both driven values, the
//!   second re-derives every consumer from the bridged readings.

use scanft_netlist::{NetId, Netlist};

use crate::faults::{BridgeKind, Fault, FaultSite};
use crate::logic::eval_gate;
use crate::{ScanResponse, ScanTest};

// Delay-fault modelling note: a gross transition-delay fault on net `n`
// makes the value *read* from `n` in cycle `k` lag by one cycle whenever a
// transition in the slow direction was launched at `k`:
//
//   late_k = slow_mask & (driven_k XOR-direction driven_{k-1})
//   observed_k = driven_k, with late lanes reading the previous value
//
// The driven value of `n` itself is unaffected (its cone cannot contain
// `n`), so a second evaluation pass — the same trick used for bridging
// faults — propagates the late readings exactly. No transition can be
// launched at the first cycle of a test (scan shifting is slow), so
// length-1 tests never detect delay faults, which is precisely the paper's
// at-speed argument for chaining transitions.

/// Lane-masked forcing of a value word.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Force {
    to_zero: u64,
    to_one: u64,
}

impl Force {
    fn apply(self, word: u64) -> u64 {
        (word | self.to_one) & !self.to_zero
    }

    fn is_noop(self) -> bool {
        self.to_zero == 0 && self.to_one == 0
    }
}

/// A bridge tap attached to one net: lanes in `mask` read the wired value
/// of (this net, `partner`) instead of the driven value.
#[derive(Debug, Clone, Copy)]
struct BridgeTap {
    partner: NetId,
    mask: u64,
    kind: BridgeKind,
}

/// A delay-fault attachment to one net: lanes in `rise_mask` are
/// slow-to-rise, lanes in `fall_mask` slow-to-fall.
#[derive(Debug, Clone, Copy)]
struct DelaySite {
    net: NetId,
    rise_mask: u64,
    fall_mask: u64,
}

/// Prepared lane-parallel injection for a batch of at most 64 faults.
#[derive(Debug, Clone)]
pub struct InjectionPlan {
    num_faults: usize,
    stem: Vec<Force>,
    /// Branch forces keyed by (gate, pin); linear scan is fine — batches
    /// rarely contain more than a handful.
    branch: Vec<(u32, u32, Force)>,
    /// Per-net bridge taps (empty vectors for untapped nets).
    taps: Vec<Vec<BridgeTap>>,
    /// Delay-faulted nets of the batch.
    delays: Vec<DelaySite>,
    has_bridges: bool,
}

impl InjectionPlan {
    /// Builds the injection plan for `faults` (one lane each).
    ///
    /// # Panics
    ///
    /// Panics if more than 64 faults are supplied.
    #[must_use]
    pub fn new(netlist: &Netlist, faults: &[Fault]) -> Self {
        assert!(faults.len() <= 64, "a batch holds at most 64 faults");
        let mut plan = InjectionPlan {
            num_faults: faults.len(),
            stem: vec![Force::default(); netlist.num_nets()],
            branch: Vec::new(),
            taps: vec![Vec::new(); netlist.num_nets()],
            delays: Vec::new(),
            has_bridges: false,
        };
        for (lane, fault) in faults.iter().enumerate() {
            let mask = 1u64 << lane;
            match *fault {
                Fault::Stuck(f) => {
                    let force = |slot: &mut Force| {
                        if f.stuck_at_one {
                            slot.to_one |= mask;
                        } else {
                            slot.to_zero |= mask;
                        }
                    };
                    match f.site {
                        FaultSite::Net(net) => force(&mut plan.stem[net as usize]),
                        FaultSite::Branch { gate, pin } => {
                            if let Some(entry) = plan
                                .branch
                                .iter_mut()
                                .find(|(g, p, _)| *g == gate && *p == pin)
                            {
                                force(&mut entry.2);
                            } else {
                                let mut f2 = Force::default();
                                force(&mut f2);
                                plan.branch.push((gate, pin, f2));
                            }
                        }
                    }
                }
                Fault::Bridge(f) => {
                    plan.has_bridges = true;
                    let mut attach = |net: NetId, partner: NetId| {
                        let taps = &mut plan.taps[net as usize];
                        match taps
                            .iter_mut()
                            .find(|t| t.partner == partner && t.kind == f.kind)
                        {
                            Some(tap) => tap.mask |= mask,
                            None => taps.push(BridgeTap {
                                partner,
                                mask,
                                kind: f.kind,
                            }),
                        }
                    };
                    attach(f.a, f.b);
                    attach(f.b, f.a);
                }
                Fault::Delay(f) => {
                    let site = match plan.delays.iter_mut().find(|d| d.net == f.net) {
                        Some(site) => site,
                        None => {
                            plan.delays.push(DelaySite {
                                net: f.net,
                                rise_mask: 0,
                                fall_mask: 0,
                            });
                            plan.delays.last_mut().expect("just pushed")
                        }
                    };
                    if f.slow_to_rise {
                        site.rise_mask |= mask;
                    } else {
                        site.fall_mask |= mask;
                    }
                }
            }
        }
        plan
    }

    /// Whether the batch contains delay faults (needs launch cycles).
    #[must_use]
    pub fn has_delays(&self) -> bool {
        !self.delays.is_empty()
    }

    /// Number of lanes in use.
    #[must_use]
    pub fn num_faults(&self) -> usize {
        self.num_faults
    }

    /// Lane mask covering the batch (`num_faults` low bits).
    #[must_use]
    pub fn lane_mask(&self) -> u64 {
        if self.num_faults == 64 {
            u64::MAX
        } else {
            (1u64 << self.num_faults) - 1
        }
    }

    fn read(&self, net: NetId, values: &[u64], late: &[Force]) -> u64 {
        let mut word = values[net as usize];
        for tap in &self.taps[net as usize] {
            let wired = match tap.kind {
                BridgeKind::And => values[net as usize] & values[tap.partner as usize],
                BridgeKind::Or => values[net as usize] | values[tap.partner as usize],
            };
            word = (word & !tap.mask) | (wired & tap.mask);
        }
        if let Some(force) = late.get(net as usize) {
            word = force.apply(word);
        }
        word
    }
}

/// Reusable fault-parallel simulation state for one netlist.
#[derive(Debug)]
pub struct FaultEngine<'a> {
    netlist: &'a Netlist,
    values: Vec<u64>,
    inputs_scratch: Vec<u64>,
    /// Per-net late-reading overlay for delay faults, rebuilt every cycle.
    late: Vec<Force>,
    /// Nets whose `late` slot may be non-default from a previous run —
    /// cleared on the next run so engines can be reused across batches
    /// with different plans.
    late_dirty: Vec<NetId>,
    /// Previous-cycle driven values of the delay-faulted nets, parallel to
    /// the plan's delay list.
    delay_prev: Vec<u64>,
}

impl<'a> FaultEngine<'a> {
    /// Creates an engine for `netlist`.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        FaultEngine {
            netlist,
            values: vec![0; netlist.num_nets()],
            inputs_scratch: Vec::new(),
            late: Vec::new(),
            late_dirty: Vec::new(),
            delay_prev: Vec::new(),
        }
    }

    /// Clears any late-reading overlay left by a previous plan and
    /// registers this plan's delay sites as the new dirty set.
    fn reset_late_overlay(&mut self, plan: &InjectionPlan) {
        for net in self.late_dirty.drain(..) {
            if let Some(slot) = self.late.get_mut(net as usize) {
                *slot = Force::default();
            }
        }
        if plan.has_delays() {
            if self.late.len() != self.netlist.num_nets() {
                self.late = vec![Force::default(); self.netlist.num_nets()];
            }
            self.late_dirty
                .extend(plan.delays.iter().map(|site| site.net));
        }
    }

    /// Simulates `test` under the batch `plan`, given the precomputed
    /// fault-free response, and returns the mask of lanes whose fault was
    /// detected (PO mismatch at any cycle or final-state mismatch).
    ///
    /// `skip_lanes` marks lanes that need no simulation (already detected by
    /// an earlier test); they are excluded from the result. The test is cut
    /// short once every live lane has been detected.
    #[must_use]
    pub fn run_test(
        &mut self,
        test: &ScanTest,
        fault_free: &ScanResponse,
        plan: &InjectionPlan,
        skip_lanes: u64,
    ) -> u64 {
        self.run_test_observing(test, fault_free, plan, skip_lanes, true)
    }

    /// Like [`FaultEngine::run_test`], but with the final scan-out
    /// comparison made optional: pass `observe_scan_out = false` to model a
    /// **non-scan** application where only the primary outputs are observed
    /// (the setting of the paper's references \[2\]\[3\], used by the
    /// scan-vs-non-scan ablation).
    #[must_use]
    pub fn run_test_observing(
        &mut self,
        test: &ScanTest,
        fault_free: &ScanResponse,
        plan: &InjectionPlan,
        skip_lanes: u64,
        observe_scan_out: bool,
    ) -> u64 {
        debug_assert_eq!(fault_free.outputs.len(), test.inputs.len());
        let live = plan.lane_mask() & !skip_lanes;
        if live == 0 {
            return 0;
        }
        let netlist = self.netlist;
        let num_pis = netlist.num_pis();
        let num_ppis = netlist.num_ppis();
        let mut detected = 0u64;

        // Delay-fault state: late overlay (per net) and previous driven
        // values per delayed net.
        self.reset_late_overlay(plan);
        self.delay_prev.clear();
        self.delay_prev.resize(plan.delays.len(), 0);

        // Scan-in: broadcast the initial code, then stem forces on PPIs.
        let mut state_words: Vec<u64> = (0..num_ppis)
            .map(|k| {
                if test.init_code >> k & 1 == 1 {
                    u64::MAX
                } else {
                    0
                }
            })
            .collect();

        for (cycle, &input) in test.inputs.iter().enumerate() {
            // Load PIs (broadcast + stem forces).
            for k in 0..num_pis {
                let net = netlist.pi(k);
                let word = if input >> k & 1 == 1 { u64::MAX } else { 0 };
                self.values[net as usize] = plan.stem[net as usize].apply(word);
            }
            // Load PPIs (per-lane faulty state + stem forces).
            for (k, &word) in state_words.iter().enumerate() {
                let net = netlist.ppi(k);
                self.values[net as usize] = plan.stem[net as usize].apply(word);
            }

            // Pass 1 settles the driven values (late overlay cleared).
            if plan.has_delays() {
                for site in &plan.delays {
                    self.late[site.net as usize] = Force::default();
                }
            }
            self.eval_pass(plan);
            // Compute late readings from this cycle's launches, then
            // re-derive all consumers in a second exact pass (the first
            // test cycle launches nothing: scan shifting is slow).
            let mut needs_second_pass = plan.has_bridges;
            if plan.has_delays() {
                for (site, prev) in plan.delays.iter().zip(self.delay_prev.iter_mut()) {
                    let driven = self.values[site.net as usize];
                    if cycle > 0 {
                        let late_rise = site.rise_mask & driven & !*prev;
                        let late_fall = site.fall_mask & !driven & *prev;
                        self.late[site.net as usize] = Force {
                            to_zero: late_rise,
                            to_one: late_fall,
                        };
                        needs_second_pass |= late_rise != 0 || late_fall != 0;
                    }
                    *prev = driven;
                }
            }
            if needs_second_pass {
                self.eval_pass(plan);
            }

            // Observe POs against the fault-free response.
            let late = &self.late;
            let ff_out = fault_free.outputs[cycle];
            for (z, &net) in netlist.pos().iter().enumerate() {
                let observed = plan.read(net, &self.values, late);
                let reference = if ff_out >> z & 1 == 1 { u64::MAX } else { 0 };
                detected |= (observed ^ reference) & live;
            }

            // Capture next state per lane (bridged/late readings included).
            for (k, slot) in state_words.iter_mut().enumerate() {
                *slot = plan.read(netlist.ppos()[k], &self.values, late);
            }

            if detected == live {
                return detected;
            }
        }

        // Scan-out: compare the captured final state.
        if observe_scan_out {
            for (k, &word) in state_words.iter().enumerate() {
                let reference = if fault_free.final_code >> k & 1 == 1 {
                    u64::MAX
                } else {
                    0
                };
                detected |= (word ^ reference) & live;
            }
        }
        detected
    }

    /// Evaluates one combinational cycle with **pattern-parallel lanes**:
    /// each bit lane carries a different (input, state) point while the
    /// plan's faults are injected in every lane (build the plan from 64
    /// copies of one fault). Returns the per-PO and per-PPO value words.
    ///
    /// This is the kernel of the exhaustive detectability analysis: no
    /// launch cycle exists, so delay faults never show up here (their
    /// detectability is inherently sequential).
    ///
    /// # Panics
    ///
    /// Panics if the word slices do not match the netlist's PI/PPI counts.
    #[must_use]
    pub fn eval_single_cycle_patterns(
        &mut self,
        pi_words: &[u64],
        ppi_words: &[u64],
        plan: &InjectionPlan,
    ) -> (Vec<u64>, Vec<u64>) {
        let netlist = self.netlist;
        assert_eq!(pi_words.len(), netlist.num_pis());
        assert_eq!(ppi_words.len(), netlist.num_ppis());
        self.reset_late_overlay(plan);
        for (k, &word) in pi_words.iter().enumerate() {
            let net = netlist.pi(k);
            self.values[net as usize] = plan.stem[net as usize].apply(word);
        }
        for (k, &word) in ppi_words.iter().enumerate() {
            let net = netlist.ppi(k);
            self.values[net as usize] = plan.stem[net as usize].apply(word);
        }
        self.eval_pass(plan);
        if plan.has_bridges {
            self.eval_pass(plan);
        }
        let late = &self.late;
        let pos = netlist
            .pos()
            .iter()
            .map(|&net| plan.read(net, &self.values, late))
            .collect();
        let ppos = netlist
            .ppos()
            .iter()
            .map(|&net| plan.read(net, &self.values, late))
            .collect();
        (pos, ppos)
    }

    fn eval_pass(&mut self, plan: &InjectionPlan) {
        let netlist = self.netlist;
        let offset = netlist.num_pis() + netlist.num_ppis();
        let branchy = !plan.branch.is_empty();
        let tapped = plan.has_bridges || plan.has_delays();
        for (g, gate) in netlist.gates().iter().enumerate() {
            let out = offset + g;
            let stem = plan.stem[out];
            let word = if tapped || branchy {
                // Slow path: gather inputs through bridge taps, late
                // readings, and branch forces.
                self.inputs_scratch.clear();
                for (pin, &input) in gate.inputs.iter().enumerate() {
                    let mut v = plan.read(input, &self.values, &self.late);
                    if branchy {
                        for &(bg, bp, force) in &plan.branch {
                            if bg as usize == g && bp as usize == pin {
                                v = force.apply(v);
                            }
                        }
                    }
                    self.inputs_scratch.push(v);
                }
                gate.kind.eval_words(&self.inputs_scratch)
            } else {
                eval_gate(gate, &self.values)
            };
            self.values[out] = if stem.is_noop() {
                word
            } else {
                stem.apply(word)
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{BridgingFault, StuckFault};
    use crate::logic;
    use scanft_netlist::{GateKind, NetlistBuilder};
    use scanft_synth::{synthesize, SynthConfig};

    fn lion_netlist() -> scanft_synth::SynthesizedCircuit {
        synthesize(&scanft_fsm::benchmarks::lion(), &SynthConfig::default())
    }

    #[test]
    fn empty_plan_detects_nothing() {
        let c = lion_netlist();
        let test = ScanTest::new(0, vec![0b01, 0b11]);
        let ff = logic::simulate(c.netlist(), &test);
        let plan = InjectionPlan::new(c.netlist(), &[]);
        let mut engine = FaultEngine::new(c.netlist());
        assert_eq!(engine.run_test(&test, &ff, &plan, 0), 0);
    }

    #[test]
    fn stem_stuck_fault_on_po_net_is_detected() {
        let c = lion_netlist();
        let n = c.netlist();
        // Stuck-at-0 on the PO net: any test whose fault-free output has a 1
        // detects it.
        let po_net = n.pos()[0];
        let fault = Fault::Stuck(StuckFault {
            site: FaultSite::Net(po_net),
            stuck_at_one: false,
        });
        let test = ScanTest::new(0, vec![0b01]); // output 1 fault-free
        let ff = logic::simulate(n, &test);
        assert_eq!(ff.outputs, vec![1]);
        let plan = InjectionPlan::new(n, &[fault]);
        let mut engine = FaultEngine::new(n);
        assert_eq!(engine.run_test(&test, &ff, &plan, 0), 1);
    }

    #[test]
    fn fault_free_lanes_stay_silent() {
        // A batch of one fault leaves lanes 1..64 unused; they must not
        // produce detections.
        let c = lion_netlist();
        let n = c.netlist();
        let fault = Fault::Stuck(StuckFault {
            site: FaultSite::Net(n.pos()[0]),
            stuck_at_one: true,
        });
        let test = ScanTest::new(0, vec![0b00]); // output 0 fault-free
        let ff = logic::simulate(n, &test);
        let plan = InjectionPlan::new(n, &[fault]);
        let mut engine = FaultEngine::new(n);
        let det = engine.run_test(&test, &ff, &plan, 0);
        assert_eq!(det, 1);
    }

    #[test]
    fn skip_lanes_are_excluded() {
        let c = lion_netlist();
        let n = c.netlist();
        let fault = Fault::Stuck(StuckFault {
            site: FaultSite::Net(n.pos()[0]),
            stuck_at_one: false,
        });
        let test = ScanTest::new(0, vec![0b01]);
        let ff = logic::simulate(n, &test);
        let plan = InjectionPlan::new(n, &[fault]);
        let mut engine = FaultEngine::new(n);
        assert_eq!(engine.run_test(&test, &ff, &plan, 1), 0);
    }

    #[test]
    fn final_state_mismatch_detects() {
        // A fault on a next-state line only (not observable at the PO in
        // one cycle) is caught by the scan-out comparison.
        let c = lion_netlist();
        let n = c.netlist();
        let ns0 = n.ppos()[0];
        let fault = Fault::Stuck(StuckFault {
            site: FaultSite::Net(ns0),
            stuck_at_one: true,
        });
        // From state 0 input 00: ns = 0 (bit0 = 0 fault-free), output 0.
        let test = ScanTest::new(0, vec![0b00]);
        let ff = logic::simulate(n, &test);
        assert_eq!(ff.final_code, 0);
        let plan = InjectionPlan::new(n, &[fault]);
        let mut engine = FaultEngine::new(n);
        assert_eq!(engine.run_test(&test, &ff, &plan, 0), 1);
    }

    #[test]
    fn faulty_state_propagates_across_cycles() {
        // Build a tiny machine by hand where a fault flips the state in
        // cycle 1 and the difference surfaces at the PO only in cycle 2.
        // ns = x XOR ps, z = ps.
        let mut b = NetlistBuilder::new(1, 1);
        let x = b.pi(0);
        let ps = b.ppi(0);
        let ns = b.add_gate(GateKind::Xor, &[x, ps]).unwrap();
        let z = b.add_gate(GateKind::Buf, &[ps]).unwrap();
        let n = b.finish(vec![z], vec![ns]).unwrap();
        // Fault: ns stuck-at-1.
        let fault = Fault::Stuck(StuckFault {
            site: FaultSite::Net(ns),
            stuck_at_one: true,
        });
        // Test: start 0, apply (0, 0): fault-free states 0,0 outputs 0,0.
        // Faulty: cycle1 captures 1, cycle2 output = 1 -> detected at PO.
        let test = ScanTest::new(0, vec![0, 0]);
        let ff = logic::simulate(&n, &test);
        assert_eq!(ff.outputs, vec![0, 0]);
        let plan = InjectionPlan::new(&n, &[fault]);
        let mut engine = FaultEngine::new(&n);
        assert_eq!(engine.run_test(&test, &ff, &plan, 0), 1);
        // With a length-1 test the same fault is caught at scan-out instead.
        let short = ScanTest::new(0, vec![0]);
        let ff_short = logic::simulate(&n, &short);
        assert_eq!(engine.run_test(&short, &ff_short, &plan, 0), 1);
    }

    #[test]
    fn branch_fault_differs_from_stem() {
        // x1 fans out to two ANDs; a branch fault on one pin must leave the
        // other path healthy.
        let mut b = NetlistBuilder::new(2, 0);
        let a1 = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let a2 = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let n = b.finish(vec![a1, a2], vec![]).unwrap();
        // Branch: gate 1 (a2), pin 0 (reads x1) stuck-at-0.
        let branch = Fault::Stuck(StuckFault {
            site: FaultSite::Branch { gate: 1, pin: 0 },
            stuck_at_one: false,
        });
        let stem = Fault::Stuck(StuckFault {
            site: FaultSite::Net(0),
            stuck_at_one: false,
        });
        let test = ScanTest::new(0, vec![0b11]);
        let ff = logic::simulate(&n, &test);
        assert_eq!(ff.outputs, vec![0b11]); // both POs 1
        let plan = InjectionPlan::new(&n, &[branch, stem]);
        let mut engine = FaultEngine::new(&n);
        let det = engine.run_test(&test, &ff, &plan, 0);
        assert_eq!(det, 0b11); // both detected...
                               // ...but the branch fault must NOT disturb PO a1. Verify by
                               // injecting only the branch fault and checking which PO flips.
        let plan1 = InjectionPlan::new(&n, &[branch]);
        // Simulate manually: load 11, eval.
        let mut eng = FaultEngine::new(&n);
        let det1 = eng.run_test(&test, &ff, &plan1, 0);
        assert_eq!(det1, 1);
        // PO values after the run: a1 unaffected (lane 0 must still be 1).
        assert_eq!(plan1.read(n.pos()[0], &eng.values, &[]) & 1, 1);
        assert_eq!(plan1.read(n.pos()[1], &eng.values, &[]) & 1, 0);
    }

    #[test]
    fn bridge_fault_wired_and() {
        // Independent cones: a = AND(x1,x2) -> PO1 via NOT; b = OR(x3,x4)
        // -> PO2 via NOT. Bridge a~b wired-AND.
        let mut bld = NetlistBuilder::new(4, 0);
        let a = bld.add_gate(GateKind::And, &[0, 1]).unwrap();
        let na = bld.add_gate(GateKind::Not, &[a]).unwrap();
        let o = bld.add_gate(GateKind::Or, &[2, 3]).unwrap();
        let no = bld.add_gate(GateKind::Not, &[o]).unwrap();
        let n = bld.finish(vec![na, no], vec![]).unwrap();
        let bridge = Fault::Bridge(BridgingFault {
            a,
            b: o,
            kind: BridgeKind::And,
        });
        // Pattern x = 1 1 0 0: a=1, o=0; wired-AND makes a read as 0:
        // PO1 flips 0 -> 1. Detected.
        let test = ScanTest::new(0, vec![0b0011]);
        let ff = logic::simulate(&n, &test);
        assert_eq!(ff.outputs, vec![0b10]); // na=0, no=1
        let plan = InjectionPlan::new(&n, &[bridge]);
        let mut engine = FaultEngine::new(&n);
        assert_eq!(engine.run_test(&test, &ff, &plan, 0), 1);
        // Pattern 1 1 1 1: a=1, o=1, wired value 1 = both driven: no effect.
        let quiet = ScanTest::new(0, vec![0b1111]);
        let ff_quiet = logic::simulate(&n, &quiet);
        assert_eq!(engine.run_test(&quiet, &ff_quiet, &plan, 0), 0);
    }

    #[test]
    fn bridge_fault_wired_or_and_order_independence() {
        // The bridged pair is deliberately ordered so one consumer comes
        // between the two drivers in topological order: the two-pass
        // evaluation must still be exact.
        let mut bld = NetlistBuilder::new(4, 0);
        let a = bld.add_gate(GateKind::And, &[0, 1]).unwrap(); // g1
        let na = bld.add_gate(GateKind::Not, &[a]).unwrap(); // consumer of a, before b
        let o = bld.add_gate(GateKind::Or, &[2, 3]).unwrap(); // g3 = b
        let no = bld.add_gate(GateKind::Not, &[o]).unwrap();
        let n = bld.finish(vec![na, no], vec![]).unwrap();
        let bridge = Fault::Bridge(BridgingFault {
            a,
            b: o,
            kind: BridgeKind::Or,
        });
        // x = 0 0 1 0: a=0, o=1; wired-OR -> a reads as 1: PO1 flips 1 -> 0.
        let test = ScanTest::new(0, vec![0b0100]);
        let ff = logic::simulate(&n, &test);
        assert_eq!(ff.outputs, vec![0b01]);
        let plan = InjectionPlan::new(&n, &[bridge]);
        let mut engine = FaultEngine::new(&n);
        assert_eq!(engine.run_test(&test, &ff, &plan, 0), 1);
    }

    #[test]
    fn sixty_four_faults_in_one_batch() {
        let c = lion_netlist();
        let n = c.netlist();
        let stuck = crate::faults::enumerate_stuck(n);
        let batch: Vec<Fault> = stuck.iter().take(64).copied().map(Fault::Stuck).collect();
        let plan = InjectionPlan::new(n, &batch);
        assert_eq!(plan.lane_mask(), u64::MAX);
        // The exhaustive per-transition test set must detect a good chunk.
        let lion = scanft_fsm::benchmarks::lion();
        let mut engine = FaultEngine::new(n);
        let mut detected = 0u64;
        for t in lion.transitions() {
            let test = ScanTest::new(u64::from(t.from), vec![t.input]);
            let ff = logic::simulate(n, &test);
            detected |= engine.run_test(&test, &ff, &plan, detected);
        }
        assert!(detected.count_ones() > 32, "{detected:b}");
    }

    #[test]
    fn delay_fault_needs_a_launch_cycle() {
        use crate::faults::DelayFault;
        // z = BUF(x1): a slow-to-rise x1 is visible only when a 0->1 launch
        // happens between consecutive at-speed cycles.
        let mut b = NetlistBuilder::new(1, 0);
        let z = b.add_gate(GateKind::Buf, &[0]).unwrap();
        let n = b.finish(vec![z], vec![]).unwrap();
        let fault = Fault::Delay(DelayFault {
            net: 0,
            slow_to_rise: true,
        });
        let plan = InjectionPlan::new(&n, &[fault]);
        assert!(plan.has_delays());
        let mut engine = FaultEngine::new(&n);

        // Length-1 tests can never detect it (no launch).
        for input in [0u32, 1] {
            let t = ScanTest::new(0, vec![input]);
            let ff = logic::simulate(&n, &t);
            assert_eq!(engine.run_test(&t, &ff, &plan, 0), 0, "input {input}");
        }
        // 0 -> 1 launches the slow rise: detected at the PO of cycle 2.
        let t = ScanTest::new(0, vec![0, 1]);
        let ff = logic::simulate(&n, &t);
        assert_eq!(ff.outputs, vec![0, 1]);
        assert_eq!(engine.run_test(&t, &ff, &plan, 0), 1);
        // 1 -> 1 launches nothing.
        let t = ScanTest::new(0, vec![1, 1]);
        let ff = logic::simulate(&n, &t);
        assert_eq!(engine.run_test(&t, &ff, &plan, 0), 0);
        // 1 -> 0 is the fast direction for slow-to-rise.
        let t = ScanTest::new(0, vec![1, 0]);
        let ff = logic::simulate(&n, &t);
        assert_eq!(engine.run_test(&t, &ff, &plan, 0), 0);
        // ...but it is the slow direction for a slow-to-fall fault.
        let fall = Fault::Delay(DelayFault {
            net: 0,
            slow_to_rise: false,
        });
        let plan_fall = InjectionPlan::new(&n, &[fall]);
        assert_eq!(engine.run_test(&t, &ff, &plan_fall, 0), 1);
    }

    #[test]
    fn delay_fault_on_state_feedback_path() {
        use crate::faults::DelayFault;
        // ns = XOR(x, ps), z = BUF(ps): a slow next-state line corrupts the
        // captured state, visible one cycle later at the PO.
        let mut b = NetlistBuilder::new(1, 1);
        let x = b.pi(0);
        let ps = b.ppi(0);
        let ns = b.add_gate(GateKind::Xor, &[x, ps]).unwrap();
        let z = b.add_gate(GateKind::Buf, &[ps]).unwrap();
        let n = b.finish(vec![z], vec![ns]).unwrap();
        let fault = Fault::Delay(DelayFault {
            net: ns,
            slow_to_rise: true,
        });
        let plan = InjectionPlan::new(&n, &[fault]);
        let mut engine = FaultEngine::new(&n);
        // Start 0; inputs (0, 1, 0): ns sequence 0,1,1; the 0->1 rise of ns
        // is launched at cycle 2, so the captured state stays 0 and the
        // cycle-3 PO (and the scan-out) expose it.
        let t = ScanTest::new(0, vec![0, 1, 0]);
        let ff = logic::simulate(&n, &t);
        assert_eq!(ff.final_code, 1);
        assert_eq!(engine.run_test(&t, &ff, &plan, 0), 1);
        // The same fault with only one cycle: no launch, no detection.
        let t1 = ScanTest::new(0, vec![1]);
        let ff1 = logic::simulate(&n, &t1);
        assert_eq!(engine.run_test(&t1, &ff1, &plan, 0), 0);
    }

    #[test]
    fn delay_and_stuck_in_one_batch() {
        use crate::faults::DelayFault;
        let c = lion_netlist();
        let n = c.netlist();
        let stuck = Fault::Stuck(StuckFault {
            site: FaultSite::Net(n.pos()[0]),
            stuck_at_one: false,
        });
        let delay = Fault::Delay(DelayFault {
            net: n.pos()[0],
            slow_to_rise: true,
        });
        let plan = InjectionPlan::new(n, &[stuck, delay]);
        let mut engine = FaultEngine::new(n);
        // From state 0: 00 (z=0) then 01 (z=1): the stuck-at-0 is caught at
        // cycle 2, and the z-net 0->1 rise is launched at cycle 2 too.
        let t = ScanTest::new(0, vec![0b00, 0b01]);
        let ff = logic::simulate(n, &t);
        assert_eq!(ff.outputs, vec![0, 1]);
        let det = engine.run_test(&t, &ff, &plan, 0);
        assert_eq!(det, 0b11);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn plan_rejects_oversized_batches() {
        let c = lion_netlist();
        let n = c.netlist();
        let faults = vec![
            Fault::Stuck(StuckFault {
                site: FaultSite::Net(0),
                stuck_at_one: false,
            });
            65
        ];
        let _ = InjectionPlan::new(n, &faults);
    }
}
