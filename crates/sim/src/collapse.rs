//! Structural collapsing of stuck-at faults: equivalence and dominance.
//!
//! Two faults are *equivalent* when every test detects both or neither —
//! they induce the same faulty function. The classic structural rules give
//! a sound (if incomplete) equivalence:
//!
//! - an AND input s-a-0 ≡ the AND output s-a-0 (controlling value);
//! - an OR input s-a-1 ≡ the OR output s-a-1;
//! - a NAND input s-a-0 ≡ the NAND output s-a-1;
//! - a NOR input s-a-1 ≡ the NOR output s-a-0;
//! - NOT input s-a-v ≡ output s-a-!v, BUF input s-a-v ≡ output s-a-v.
//!
//! Fault *dominance* shrinks the list further: fault `A` dominates `B` when
//! every test detecting `B` also detects `A`, so targeting `B` covers `A`
//! for free. Structurally, a gate output stuck at the non-controlled value
//! (`!c ^ inversion`) dominates each input stuck at the non-controlling
//! value `!c`: detecting the input fault forces every side input
//! non-controlling, which produces exactly the output fault's good/faulty
//! difference on the output net and propagates it the same way. The rule is
//! only applied when the *witness* (the dominated input fault) truly has no
//! detection path that bypasses the gate: a branch fault never has one, and
//! a single-fanout stem qualifies exactly when the gate output is its
//! immediate post-dominator ([`scanft_netlist::PostDominators`]) — a stem
//! that is itself observed, or dead, is excluded by that test.
//!
//! Fault simulation then only needs one representative per class. The
//! paper's fault counts (e.g. 40 for `lion`) come from a collapsed set on
//! its own netlist; this module lets the same reduction be applied here.
//! Dominance drops make [`CollapsedFaults::expand`] *conservative* (see its
//! docs), so the default [`collapse_stuck`] stays equivalence-only.

use std::collections::{HashMap, HashSet};

use scanft_netlist::{GateKind, NetId, Netlist, PostDominators};

use crate::faults::{FaultSite, StuckFault};

/// Knobs for [`collapse_stuck_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CollapseConfig {
    /// Also drop classes whose faults are dominated-covered by a surviving
    /// witness class (see the module docs). Off by default because it makes
    /// [`CollapsedFaults::expand`] a lower bound instead of exact.
    pub dominance: bool,
}

/// Result of collapsing a stuck-at fault list.
#[derive(Debug, Clone)]
pub struct CollapsedFaults {
    /// One representative fault per surviving class, in the order of the
    /// input list (the first member of each class).
    pub representatives: Vec<StuckFault>,
    /// For each *input* fault (by index into the original list), the index
    /// of its class in `representatives` — for a dominance-dropped fault,
    /// the class of its witness.
    pub class_of: Vec<usize>,
}

impl CollapsedFaults {
    /// Collapse ratio: representatives / original faults.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.class_of.is_empty() {
            return 1.0;
        }
        self.representatives.len() as f64 / self.class_of.len() as f64
    }

    /// Expands a per-representative detection flag vector back to the full
    /// fault list.
    ///
    /// Exact for equivalence-only collapsing. With dominance drops, sound
    /// but conservative: a dropped fault reports its witness's flag, and a
    /// test detecting the witness provably detects the dropped fault, while
    /// an undetected witness leaves the dropped fault *possibly* detected
    /// by some other test — so coverage is never over-reported.
    ///
    /// # Panics
    ///
    /// Panics if `detected.len() != representatives.len()`.
    #[must_use]
    pub fn expand<T: Copy>(&self, detected: &[T]) -> Vec<T> {
        assert_eq!(detected.len(), self.representatives.len());
        self.class_of.iter().map(|&c| detected[c]).collect()
    }
}

/// Collapses `faults` by the structural equivalence rules above.
///
/// # Examples
///
/// ```
/// use scanft_sim::{collapse, faults};
/// use scanft_synth::{synthesize, SynthConfig};
///
/// let lion = scanft_fsm::benchmarks::lion();
/// let c = synthesize(&lion, &SynthConfig::default());
/// let stuck = faults::enumerate_stuck(c.netlist());
/// let collapsed = collapse::collapse_stuck(c.netlist(), &stuck);
/// assert!(collapsed.representatives.len() < stuck.len());
/// assert!(collapsed.ratio() < 1.0);
/// ```
#[must_use]
pub fn collapse_stuck(netlist: &Netlist, faults: &[StuckFault]) -> CollapsedFaults {
    collapse_stuck_with(netlist, faults, &CollapseConfig::default())
}

/// Collapses `faults` by structural equivalence, optionally followed by
/// dominance class drops (see the module docs for both rules and the
/// soundness argument).
#[must_use]
pub fn collapse_stuck_with(
    netlist: &Netlist,
    faults: &[StuckFault],
    config: &CollapseConfig,
) -> CollapsedFaults {
    let index: HashMap<StuckFault, usize> =
        faults.iter().enumerate().map(|(k, &f)| (f, k)).collect();

    // Union-find over fault indices.
    let mut parent: Vec<usize> = (0..faults.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let union = |parent: &mut [usize], a: usize, b: usize| {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            // Attach the larger index under the smaller so the first-seen
            // fault stays the representative.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent[hi] = lo;
        }
    };

    // The fault on the *pin* (gate, p): a branch fault when the source net
    // branches, otherwise the stem fault of the source net — but only when
    // the stem feeds nothing else. A net that is also a primary or
    // pseudo-primary output is observed directly, so its stem fault is NOT
    // equivalent to the downstream pin fault.
    let pin_fault = |g: u32, p: u32, source: NetId, stuck_at_one: bool| -> Option<usize> {
        let site = if netlist.fanout(source).len() > 1 {
            FaultSite::Branch { gate: g, pin: p }
        } else {
            if netlist.pos().contains(&source) || netlist.ppos().contains(&source) {
                return None;
            }
            FaultSite::Net(source)
        };
        index.get(&StuckFault { site, stuck_at_one }).copied()
    };
    let out_fault = |net: NetId, stuck_at_one: bool| -> Option<usize> {
        index
            .get(&StuckFault {
                site: FaultSite::Net(net),
                stuck_at_one,
            })
            .copied()
    };

    for (g, gate) in netlist.gates().iter().enumerate() {
        let out = netlist.gate_output(g);
        // (pin stuck value, output stuck value) pairs that are equivalent.
        let relations: &[(bool, bool)] = match gate.kind {
            GateKind::And => &[(false, false)],
            GateKind::Or => &[(true, true)],
            GateKind::Nand => &[(false, true)],
            GateKind::Nor => &[(true, false)],
            GateKind::Not => &[(false, true), (true, false)],
            GateKind::Buf => &[(false, false), (true, true)],
            // XOR has no controlling value: no structural equivalence.
            GateKind::Xor => &[],
        };
        for (p, &source) in gate.inputs.iter().enumerate() {
            for &(pin_value, out_value) in relations {
                if let (Some(a), Some(b)) = (
                    pin_fault(g as u32, p as u32, source, pin_value),
                    out_fault(out, out_value),
                ) {
                    union(&mut parent, a, b);
                }
            }
        }
    }

    // Dominance: per class, an optional witness class covering it. The
    // dropped fault is the gate output stuck at the non-controlled value;
    // the witness is an input pin stuck at the non-controlling value whose
    // only detection path runs through this gate.
    let mut witness_of: HashMap<usize, usize> = HashMap::new();
    if config.dominance {
        let post = PostDominators::new(netlist);
        for (g, gate) in netlist.gates().iter().enumerate() {
            let (controlling, invert) = match gate.kind {
                GateKind::And => (false, false),
                GateKind::Or => (true, false),
                GateKind::Nand => (false, true),
                GateKind::Nor => (true, true),
                // Unary gates are fully covered by equivalence; XOR has no
                // controlling value, so neither rule applies.
                GateKind::Not | GateKind::Buf | GateKind::Xor => continue,
            };
            let out = netlist.gate_output(g);
            let Some(&dropped) = index.get(&StuckFault {
                site: FaultSite::Net(out),
                stuck_at_one: !controlling ^ invert,
            }) else {
                continue;
            };
            for (p, &source) in gate.inputs.iter().enumerate() {
                let site = if netlist.fanout(source).len() > 1 {
                    // A branch fault affects only this gate's input: every
                    // detection necessarily propagates through the gate.
                    FaultSite::Branch {
                        gate: g as u32,
                        pin: p as u32,
                    }
                } else if post.idom(source) == Some(out) {
                    // Single-fanout stem whose immediate post-dominator is
                    // the gate output: not itself observed, so the same
                    // argument applies to the stem fault.
                    FaultSite::Net(source)
                } else {
                    continue;
                };
                let Some(&witness) = index.get(&StuckFault {
                    site,
                    stuck_at_one: !controlling,
                }) else {
                    continue;
                };
                let (rd, rw) = (find(&mut parent, dropped), find(&mut parent, witness));
                if rd != rw {
                    witness_of.entry(rd).or_insert(rw);
                }
            }
        }
    }

    // Resolve witness chains to a surviving class per dropped class. Chains
    // are followed transitively (a test for the final witness detects every
    // fault along the way); a cycle keeps its current class conservatively.
    let mut resolved: HashMap<usize, usize> = HashMap::new();
    for k in 0..faults.len() {
        let root = find(&mut parent, k);
        if resolved.contains_key(&root) {
            continue;
        }
        let mut chain = vec![root];
        let mut on_chain: HashSet<usize> = HashSet::from([root]);
        let kept = loop {
            let cur = chain[chain.len() - 1];
            match witness_of.get(&cur) {
                None => break cur,
                Some(&w) => {
                    if let Some(&k) = resolved.get(&w) {
                        break k;
                    }
                    if on_chain.contains(&w) {
                        break cur;
                    }
                    chain.push(w);
                    on_chain.insert(w);
                }
            }
        };
        for c in chain {
            resolved.insert(c, kept);
        }
    }

    // Build classes with first-seen representatives.
    let mut class_index: HashMap<usize, usize> = HashMap::new();
    let mut representatives = Vec::new();
    let mut class_of = Vec::with_capacity(faults.len());
    for k in 0..faults.len() {
        let root = find(&mut parent, k);
        let kept = *resolved.get(&root).unwrap_or(&root);
        let class = *class_index.entry(kept).or_insert_with(|| {
            representatives.push(faults[kept]);
            representatives.len() - 1
        });
        class_of.push(class);
    }
    CollapsedFaults {
        representatives,
        class_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{self, Fault};
    use crate::{campaign, ScanTest};
    use scanft_netlist::NetlistBuilder;
    use scanft_synth::{synthesize, SynthConfig};

    #[test]
    fn inverter_chain_collapses_hard() {
        let mut b = NetlistBuilder::new(1, 0);
        let g1 = b.add_gate(GateKind::Not, &[0]).unwrap();
        let g2 = b.add_gate(GateKind::Not, &[g1]).unwrap();
        let n = b.finish(vec![g2], vec![]).unwrap();
        let stuck = faults::enumerate_stuck(&n);
        assert_eq!(stuck.len(), 6); // 3 nets * 2
        let collapsed = collapse_stuck(&n, &stuck);
        // The whole chain is one pair of classes: x1 sa0 ≡ g1 sa1 ≡ g2 sa0,
        // x1 sa1 ≡ g1 sa0 ≡ g2 sa1.
        assert_eq!(collapsed.representatives.len(), 2);
    }

    #[test]
    fn and_gate_controlling_value() {
        let mut b = NetlistBuilder::new(2, 0);
        let a = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let n = b.finish(vec![a], vec![]).unwrap();
        let stuck = faults::enumerate_stuck(&n);
        assert_eq!(stuck.len(), 6);
        let collapsed = collapse_stuck(&n, &stuck);
        // x1 sa0 ≡ x2 sa0 ≡ a sa0 collapse into one class; the three sa1
        // faults stay distinct: 4 classes.
        assert_eq!(collapsed.representatives.len(), 4);
    }

    #[test]
    fn expansion_round_trips() {
        let lion = scanft_fsm::benchmarks::lion();
        let c = synthesize(&lion, &SynthConfig::default());
        let stuck = faults::enumerate_stuck(c.netlist());
        let collapsed = collapse_stuck(c.netlist(), &stuck);
        let marks: Vec<bool> = (0..collapsed.representatives.len())
            .map(|k| k % 2 == 0)
            .collect();
        let expanded = collapsed.expand(&marks);
        assert_eq!(expanded.len(), stuck.len());
        for (k, &class) in collapsed.class_of.iter().enumerate() {
            assert_eq!(expanded[k], marks[class]);
        }
    }

    /// Soundness: every member of a class has the same detection outcome
    /// under the exhaustive per-transition test set.
    #[test]
    fn classes_are_detection_equivalent() {
        let lion = scanft_fsm::benchmarks::lion();
        let c = synthesize(&lion, &SynthConfig::default());
        let stuck = faults::enumerate_stuck(c.netlist());
        let collapsed = collapse_stuck(c.netlist(), &stuck);
        assert!(collapsed.representatives.len() < stuck.len());
        let tests: Vec<ScanTest> = lion
            .transitions()
            .map(|t| ScanTest::new(u64::from(t.from), vec![t.input]))
            .collect();
        let full = campaign::run(c.netlist(), &tests, &faults::as_fault_list(&stuck));
        // All members of a class must agree on their detecting test.
        let mut per_class: Vec<Option<Option<usize>>> = vec![None; collapsed.representatives.len()];
        for (k, &class) in collapsed.class_of.iter().enumerate() {
            match per_class[class] {
                None => per_class[class] = Some(full.detecting_test[k]),
                Some(first) => assert_eq!(
                    first.is_some(),
                    full.detecting_test[k].is_some(),
                    "fault {k} disagrees with its class"
                ),
            }
        }
    }

    #[test]
    fn dominance_drops_noncontrolled_output_faults() {
        // PO = AND(x1, x2): equivalence leaves 4 classes; dominance drops
        // the output s-a-1 class (witnessed by either input s-a-1).
        let mut b = NetlistBuilder::new(2, 0);
        let a = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let n = b.finish(vec![a], vec![]).unwrap();
        let stuck = faults::enumerate_stuck(&n);
        let equivalence = collapse_stuck(&n, &stuck);
        assert_eq!(equivalence.representatives.len(), 4);
        let dominance = collapse_stuck_with(&n, &stuck, &CollapseConfig { dominance: true });
        assert_eq!(dominance.representatives.len(), 3);
        assert!(!dominance.representatives.contains(&StuckFault {
            site: FaultSite::Net(a),
            stuck_at_one: true,
        }));
        // The dropped fault maps to its witness's class.
        let dropped = stuck
            .iter()
            .position(|f| f.site == FaultSite::Net(a) && f.stuck_at_one)
            .unwrap();
        let witness = stuck
            .iter()
            .position(|f| f.site == FaultSite::Net(0) && f.stuck_at_one)
            .unwrap();
        assert_eq!(
            dominance.class_of[dropped], dominance.class_of[witness],
            "dropped output fault must ride with its witness"
        );
    }

    #[test]
    fn observed_stem_is_not_a_dominance_witness() {
        // g = AND(x1, x2) where x1 is also a PO: x1 s-a-1 can be detected
        // straight at the PO without propagating through g, so it must not
        // witness a drop of g s-a-1.
        let mut b = NetlistBuilder::new(2, 0);
        let g = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let n = b.finish(vec![g, 0], vec![]).unwrap();
        let stuck = faults::enumerate_stuck(&n);
        let dominance = collapse_stuck_with(&n, &stuck, &CollapseConfig { dominance: true });
        // x2 s-a-1 still witnesses the drop (single fanout into g), so the
        // class count shrinks by one — but the surviving witness must be x2,
        // never the observed x1.
        let dropped = stuck
            .iter()
            .position(|f| f.site == FaultSite::Net(g) && f.stuck_at_one)
            .unwrap();
        let x2 = stuck
            .iter()
            .position(|f| f.site == FaultSite::Net(1) && f.stuck_at_one)
            .unwrap();
        assert_eq!(dominance.class_of[dropped], dominance.class_of[x2]);
    }

    /// Soundness of dominance expansion: expanded flags never over-report —
    /// every fault flagged detected is confirmed by the full simulation —
    /// and kept representatives report exactly.
    #[test]
    fn dominance_expansion_never_over_reports() {
        for name in ["lion", "bbtas", "dk27", "mc", "beecount"] {
            let table = scanft_fsm::benchmarks::build(name).unwrap();
            let c = synthesize(&table, &SynthConfig::default());
            let stuck = faults::enumerate_stuck(c.netlist());
            let equivalence = collapse_stuck(c.netlist(), &stuck);
            let dominance =
                collapse_stuck_with(c.netlist(), &stuck, &CollapseConfig { dominance: true });
            assert!(
                dominance.representatives.len() <= equivalence.representatives.len(),
                "{name}: dominance did not shrink the class count"
            );
            let tests: Vec<ScanTest> = table
                .transitions()
                .map(|t| ScanTest::new(u64::from(t.from), vec![t.input]))
                .collect();
            let reps: Vec<Fault> = dominance
                .representatives
                .iter()
                .copied()
                .map(Fault::Stuck)
                .collect();
            let rep_report = campaign::run(c.netlist(), &tests, &reps);
            let full = campaign::run(c.netlist(), &tests, &faults::as_fault_list(&stuck));
            let rep_flags: Vec<bool> = rep_report
                .detecting_test
                .iter()
                .map(Option::is_some)
                .collect();
            let expanded = dominance.expand(&rep_flags);
            for (k, &flag) in expanded.iter().enumerate() {
                if flag {
                    assert!(
                        full.detecting_test[k].is_some(),
                        "{name}: fault {k} flagged detected but is not"
                    );
                }
            }
        }
    }

    /// Simulating only representatives gives the same class-level coverage
    /// as simulating everything.
    #[test]
    fn representative_simulation_is_sufficient() {
        let lion = scanft_fsm::benchmarks::lion();
        let c = synthesize(&lion, &SynthConfig::default());
        let stuck = faults::enumerate_stuck(c.netlist());
        let collapsed = collapse_stuck(c.netlist(), &stuck);
        let tests: Vec<ScanTest> = lion
            .transitions()
            .map(|t| ScanTest::new(u64::from(t.from), vec![t.input]))
            .collect();
        let reps: Vec<Fault> = collapsed
            .representatives
            .iter()
            .copied()
            .map(Fault::Stuck)
            .collect();
        let rep_report = campaign::run(c.netlist(), &tests, &reps);
        let full = campaign::run(c.netlist(), &tests, &faults::as_fault_list(&stuck));
        let rep_flags: Vec<bool> = rep_report
            .detecting_test
            .iter()
            .map(Option::is_some)
            .collect();
        let expanded = collapsed.expand(&rep_flags);
        for (k, flag) in expanded.iter().enumerate() {
            assert_eq!(*flag, full.detecting_test[k].is_some(), "fault {k}");
        }
    }
}
