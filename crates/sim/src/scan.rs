use scanft_fsm::InputId;

/// A scan-based test, exactly as the paper defines one: "a test starts and
/// ends with a scan operation, and consists of one or more primary input
/// combinations applied between the scan operations".
///
/// The initial state is given as the *code* loaded into the scan flip-flops
/// (functional states are translated by the synthesis encoding before tests
/// reach the simulator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanTest {
    /// Code scanned into the flip-flops before the first cycle.
    pub init_code: u64,
    /// Primary-input combinations applied, one per clock cycle.
    pub inputs: Vec<InputId>,
}

impl ScanTest {
    /// Creates a test from an initial code and input sequence.
    #[must_use]
    pub fn new(init_code: u64, inputs: Vec<InputId>) -> Self {
        ScanTest { init_code, inputs }
    }

    /// Length of the test: the number of primary-input combinations applied
    /// between the scan operations (the paper's test-length measure).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the test applies no input combinations (not produced by the
    /// generators, but allowed by the simulator: it degenerates to a scan
    /// load/unload that observes nothing).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }
}

/// The fault-free response of a circuit to a [`ScanTest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResponse {
    /// Primary-output word observed at each cycle (bit `k` = PO `k`).
    pub outputs: Vec<u64>,
    /// Final state code scanned out after the last cycle.
    pub final_code: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_test_length() {
        let t = ScanTest::new(0b10, vec![0, 3, 1]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!(ScanTest::new(0, vec![]).is_empty());
    }
}
