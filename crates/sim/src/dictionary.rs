//! Fault dictionaries and diagnosis.
//!
//! A *fault dictionary* records, for every fault, the set of tests that
//! detect it — simulated **without fault dropping**, so the signature is
//! complete. Given the pass/fail outcome observed on a failing device, the
//! dictionary returns the candidate faults whose signatures match; this is
//! the classic use of a high-coverage functional test set beyond go/no-go
//! screening.

use scanft_netlist::Netlist;

use crate::engine::{FaultEngine, InjectionPlan};
use crate::faults::Fault;
use crate::logic;
use crate::{ScanResponse, ScanTest};

/// A complete pass/fail dictionary for a (test set, fault list) pair.
#[derive(Debug, Clone)]
pub struct FaultDictionary {
    /// `signatures[f]` = sorted indices of the tests that detect fault `f`.
    signatures: Vec<Vec<u32>>,
    num_tests: usize,
}

impl FaultDictionary {
    /// Builds the dictionary by full (non-dropping) fault simulation.
    #[must_use]
    pub fn build(netlist: &Netlist, tests: &[ScanTest], faults: &[Fault]) -> Self {
        let responses: Vec<ScanResponse> =
            tests.iter().map(|t| logic::simulate(netlist, t)).collect();
        let mut signatures: Vec<Vec<u32>> = vec![Vec::new(); faults.len()];
        let mut engine = FaultEngine::new(netlist);
        for (batch_start, batch) in faults.chunks(64).enumerate().map(|(i, b)| (i * 64, b)) {
            let plan = InjectionPlan::new(netlist, batch);
            for (t, (test, response)) in tests.iter().zip(&responses).enumerate() {
                // No dropping: every live lane is simulated on every test.
                let detected = engine.run_test(test, response, &plan, 0);
                let mut lanes = detected;
                while lanes != 0 {
                    let lane = lanes.trailing_zeros() as usize;
                    signatures[batch_start + lane].push(t as u32);
                    lanes &= lanes - 1;
                }
            }
        }
        FaultDictionary {
            signatures,
            num_tests: tests.len(),
        }
    }

    /// The failing-test signature of fault `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    #[must_use]
    pub fn signature(&self, f: usize) -> &[u32] {
        &self.signatures[f]
    }

    /// Number of faults in the dictionary.
    #[must_use]
    pub fn num_faults(&self) -> usize {
        self.signatures.len()
    }

    /// Number of tests the dictionary was built over.
    #[must_use]
    pub fn num_tests(&self) -> usize {
        self.num_tests
    }

    /// Faults whose signature equals the observed failing-test set exactly
    /// (the single-fault diagnosis candidates).
    #[must_use]
    pub fn diagnose(&self, observed_failing: &[u32]) -> Vec<usize> {
        let mut observed = observed_failing.to_vec();
        observed.sort_unstable();
        observed.dedup();
        self.signatures
            .iter()
            .enumerate()
            .filter_map(|(f, sig)| (*sig == observed).then_some(f))
            .collect()
    }

    /// Diagnostic resolution: the number of distinct non-empty signatures
    /// divided by the number of detected faults — 1.0 means every detected
    /// fault is uniquely identifiable from pass/fail data alone.
    #[must_use]
    pub fn resolution(&self) -> f64 {
        use std::collections::HashSet;
        let detected: Vec<&Vec<u32>> = self.signatures.iter().filter(|s| !s.is_empty()).collect();
        if detected.is_empty() {
            return 1.0;
        }
        let distinct: HashSet<&Vec<u32>> = detected.iter().copied().collect();
        distinct.len() as f64 / detected.len() as f64
    }

    /// Groups fault indices by identical signature (the diagnostic
    /// equivalence classes), detected faults only.
    #[must_use]
    pub fn ambiguity_groups(&self) -> Vec<Vec<usize>> {
        use std::collections::HashMap;
        let mut groups: HashMap<&Vec<u32>, Vec<usize>> = HashMap::new();
        for (f, sig) in self.signatures.iter().enumerate() {
            if !sig.is_empty() {
                groups.entry(sig).or_default().push(f);
            }
        }
        let mut out: Vec<Vec<usize>> = groups.into_values().collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults;
    use scanft_synth::{synthesize, SynthConfig};

    fn lion_dictionary() -> (
        Vec<Fault>,
        FaultDictionary,
        Vec<ScanTest>,
        scanft_synth::SynthesizedCircuit,
    ) {
        let lion = scanft_fsm::benchmarks::lion();
        let circuit = synthesize(&lion, &SynthConfig::default());
        let uios = scanft_fsm::uio::derive_uios(&lion, 2);
        let set = scanft_core_like_tests(&lion, &uios);
        let tests = set
            .iter()
            .map(|(init, inputs)| ScanTest::new(u64::from(*init), inputs.clone()))
            .collect::<Vec<_>>();
        let stuck = faults::as_fault_list(&faults::enumerate_stuck(circuit.netlist()));
        let dict = FaultDictionary::build(circuit.netlist(), &tests, &stuck);
        (stuck, dict, tests, circuit)
    }

    /// A tiny stand-in for the generator (sim cannot depend on core):
    /// per-transition tests.
    fn scanft_core_like_tests(
        table: &scanft_fsm::StateTable,
        _uios: &scanft_fsm::uio::UioSet,
    ) -> Vec<(u32, Vec<u32>)> {
        table
            .transitions()
            .map(|t| (t.from, vec![t.input]))
            .collect()
    }

    #[test]
    fn signatures_match_campaign_verdicts() {
        let (stuck, dict, tests, circuit) = lion_dictionary();
        let report = crate::campaign::run(circuit.netlist(), &tests, &stuck);
        for f in 0..stuck.len() {
            assert_eq!(
                !dict.signature(f).is_empty(),
                report.detecting_test[f].is_some(),
                "fault {f}"
            );
            // The campaign's detecting test is the first of the signature.
            if let Some(first) = report.detecting_test[f] {
                assert_eq!(dict.signature(f)[0] as usize, first, "fault {f}");
            }
        }
    }

    #[test]
    fn diagnosis_returns_the_injected_fault() {
        let (stuck, dict, _, _) = lion_dictionary();
        for f in (0..stuck.len()).step_by(5) {
            let observed = dict.signature(f).to_vec();
            if observed.is_empty() {
                continue;
            }
            let candidates = dict.diagnose(&observed);
            assert!(
                candidates.contains(&f),
                "fault {f} not in its own candidates"
            );
            // All candidates share the signature.
            for &c in &candidates {
                assert_eq!(dict.signature(c), observed.as_slice());
            }
        }
    }

    #[test]
    fn diagnose_unknown_signature_is_empty() {
        let (_, dict, tests, _) = lion_dictionary();
        // A signature failing every test should match nothing (no single
        // stuck fault fails all 16 transition tests on lion).
        let all: Vec<u32> = (0..tests.len() as u32).collect();
        assert!(dict.diagnose(&all).is_empty());
    }

    #[test]
    fn resolution_and_groups_are_consistent() {
        let (_, dict, _, _) = lion_dictionary();
        let groups = dict.ambiguity_groups();
        let detected: usize = groups.iter().map(Vec::len).sum();
        assert!(dict.resolution() > 0.0 && dict.resolution() <= 1.0);
        assert!((dict.resolution() - groups.len() as f64 / detected as f64).abs() < 1e-12);
        // Equivalent faults (same class) necessarily share a group; spot
        // check via the collapser.
        let lion = scanft_fsm::benchmarks::lion();
        let circuit = synthesize(&lion, &SynthConfig::default());
        let stuck = faults::enumerate_stuck(circuit.netlist());
        let collapsed = crate::collapse::collapse_stuck(circuit.netlist(), &stuck);
        for group in &collapsed.class_of {
            let _ = group; // classes exist; detailed cross-check in collapse tests
        }
    }

    #[test]
    fn unordered_observations_are_normalized() {
        let (_, dict, _, _) = lion_dictionary();
        let f = (0..dict.num_faults())
            .find(|&f| dict.signature(f).len() >= 2)
            .expect("some fault fails two tests");
        let mut observed = dict.signature(f).to_vec();
        observed.reverse();
        observed.push(observed[0]); // duplicate
        assert!(dict.diagnose(&observed).contains(&f));
    }
}
