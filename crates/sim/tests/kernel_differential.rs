//! Narrow-versus-wide kernel differential properties.
//!
//! The narrow 64-lane full-resimulation kernel is the trusted oracle; the
//! wide 256-lane event-driven (PPSFP) kernel is the optimised rebuild.
//! Per-lane fault simulations are independent, so neither the batch width
//! nor the cone/worklist restriction may change a single verdict. Every
//! test here pins that equivalence on real suite circuits:
//!
//! 1. **detection sets** — `run_ordered_wide` equals `run_ordered_observing`
//!    fault-for-fault, for the paper's functional (multi-cycle) test sets
//!    and for randomly ordered test lists;
//! 2. **coverage reports** — detected counts, per-test new-detection
//!    counts, and effectiveness tables agree;
//! 3. **journal checkpoints** — supervised runs journal bit-identical
//!    64-lane records on both kernels, and a checkpoint written by either
//!    kernel resumes under the other.
//!
//! Random orders are seeded through the workspace SplitMix64, so any
//! failure reproduces by seed.

use std::sync::Arc;

use scanft_core::generate::{generate, GenConfig};
use scanft_fsm::rng::SplitMix64;
use scanft_fsm::uio;
use scanft_harness::{buffer_contents, read_journal, Budget, JournalWriter};
use scanft_sim::campaign::{self, Kernel, SupervisedConfig};
use scanft_sim::faults::{self, Fault};
use scanft_sim::ScanTest;
use scanft_synth::{synthesize, SynthConfig};

const CIRCUITS: [&str; 4] = ["bbtas", "dk27", "mc", "lion"];

struct Setup {
    circuit: scanft_synth::SynthesizedCircuit,
    tests: Vec<ScanTest>,
    faults: Vec<Fault>,
}

/// The paper's own functional test set: UIO-based state-verification
/// sequences, which are multi-cycle and therefore exercise faulty-state
/// propagation across the scan boundary in the event-driven kernel.
fn setup(name: &str) -> Setup {
    let table = scanft_fsm::benchmarks::build(name).expect("registry circuit");
    let circuit = synthesize(&table, &SynthConfig::default());
    let uios = uio::derive_uios(&table, table.num_state_vars());
    let set = generate(&table, &uios, &GenConfig::default());
    let tests = set.to_scan_tests(&circuit);
    let faults = faults::as_fault_list(&faults::enumerate_stuck(circuit.netlist()));
    Setup {
        circuit,
        tests,
        faults,
    }
}

#[test]
fn wide_detection_sets_match_narrow_on_functional_tests() {
    for name in CIRCUITS {
        let s = setup(name);
        let order: Vec<usize> = (0..s.tests.len()).collect();
        for observe in [true, false] {
            let narrow = campaign::run_ordered_observing(
                s.circuit.netlist(),
                &s.tests,
                &order,
                &s.faults,
                observe,
            );
            let wide = campaign::run_ordered_wide(
                s.circuit.netlist(),
                &s.tests,
                &order,
                &s.faults,
                observe,
            );
            assert_eq!(
                wide.detecting_test, narrow.detecting_test,
                "{name} observe={observe}: wide kernel verdicts differ"
            );
            assert_eq!(wide.detected(), narrow.detected(), "{name}");
            assert_eq!(wide.new_detections, narrow.new_detections, "{name}");
            assert_eq!(
                campaign::effectiveness_table(&s.tests, &wide),
                campaign::effectiveness_table(&s.tests, &narrow),
                "{name}"
            );
        }
    }
}

#[test]
fn wide_matches_narrow_under_random_orders() {
    // Shuffled orders shift which test detects which fault, moving batch
    // drop points around — the kernels must still agree bit-for-bit.
    for name in CIRCUITS {
        let s = setup(name);
        for seed in 0..3u64 {
            let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
            let mut order: Vec<usize> = (0..s.tests.len()).collect();
            for i in 0..order.len() {
                let j = i + rng.next_below((order.len() - i) as u64) as usize;
                order.swap(i, j);
            }
            let narrow = campaign::run_ordered_observing(
                s.circuit.netlist(),
                &s.tests,
                &order,
                &s.faults,
                true,
            );
            let wide =
                campaign::run_ordered_wide(s.circuit.netlist(), &s.tests, &order, &s.faults, true);
            assert_eq!(
                wide.detecting_test, narrow.detecting_test,
                "{name} seed={seed}"
            );
        }
    }
}

#[test]
fn event_driven_equals_full_resimulation_on_every_tractable_circuit() {
    // Engine-level equivalence on every suite circuit tractable for the
    // exhaustive oracle (PIs + state vars <= 12): for sampled 64-lane
    // fault batches and per-transition tests, the cone-restricted
    // event-driven path must return the same detection mask as full
    // re-simulation — including under random already-detected skip masks,
    // which exercise the live-seed filtering and the scan/worklist hybrid.
    for spec in scanft_fsm::benchmarks::CIRCUITS
        .iter()
        .filter(|s| s.num_inputs + s.num_state_vars <= 12)
    {
        let table = scanft_fsm::benchmarks::build(spec.name).expect("registry circuit");
        let circuit = synthesize(&table, &SynthConfig::default());
        let netlist = circuit.netlist();
        let mut rng = SplitMix64::from_name(spec.name);
        let mut tests: Vec<ScanTest> = table
            .transitions()
            .map(|t| ScanTest::new(circuit.encode_state(t.from), vec![t.input]))
            .collect();
        sample(&mut tests, 16, &mut rng);
        let list = faults::as_fault_list(&faults::enumerate_stuck(netlist));
        let mut batches: Vec<&[scanft_sim::faults::Fault]> = list.chunks(64).collect();
        sample(&mut batches, 16, &mut rng);

        let arena = Arc::new(scanft_netlist::GateArena::build(netlist));
        let mut full = scanft_sim::engine::FaultEngine::new(netlist);
        let mut event =
            scanft_sim::engine::FaultEngine::<u64>::with_arena(netlist, Arc::clone(&arena));
        let mut eval = scanft_sim::logic::Evaluator::new(netlist);
        for batch in batches {
            let full_plan = scanft_sim::engine::InjectionPlan::new(netlist, batch);
            let event_plan =
                scanft_sim::engine::InjectionPlan::<u64>::event_driven(netlist, &arena, batch);
            let mut skip = 0u64;
            for test in &tests {
                let trace = eval.record_trace(test);
                let response = trace.response();
                for observe in [true, false] {
                    let a = full.run_test_observing(test, &response, &full_plan, skip, observe);
                    let b = event.run_test_event_driven(test, &trace, &event_plan, skip, observe);
                    assert_eq!(
                        a, b,
                        "{}: event-driven diverged from full resim (skip={skip:#x} observe={observe})",
                        spec.name
                    );
                }
                // Accrete a random already-detected mask so later tests run
                // with quiesced lanes.
                skip |= rng.next_u64() & full_plan.lane_mask();
            }
        }
    }
}

/// Seeded partial Fisher–Yates sample of at most `keep` items, in place.
fn sample<T>(items: &mut Vec<T>, keep: usize, rng: &mut SplitMix64) {
    if items.len() <= keep {
        return;
    }
    for i in 0..keep {
        let j = i + rng.next_below((items.len() - i) as u64) as usize;
        items.swap(i, j);
    }
    items.truncate(keep);
}

fn journal_lines(
    name: &str,
    s: &Setup,
    order: &[usize],
    kernel: Kernel,
    max_units: Option<u64>,
) -> (campaign::PartialReport, String) {
    let mut budget = Budget::unlimited();
    if let Some(cap) = max_units {
        budget = budget.with_max_units(cap);
    }
    let config = SupervisedConfig {
        num_threads: 1,
        observe_scan_out: true,
        budget,
        label: name.to_owned(),
        kernel,
        arena: None,
    };
    let (writer, buffer) = JournalWriter::in_memory();
    let partial = campaign::run_supervised(
        s.circuit.netlist(),
        &s.tests,
        order,
        &s.faults,
        &config,
        Some(&writer),
        None,
        None,
    )
    .expect("in-memory journal write");
    (partial, buffer_contents(&buffer))
}

#[test]
fn journal_checkpoints_are_bit_identical_across_kernels() {
    // Single-threaded complete runs: both kernels must write the same
    // header and the same 64-lane records (wide records land in slot order
    // within each super batch, so the files match byte-for-byte after
    // sorting by unit — and unit order itself matches sequentially).
    for name in CIRCUITS {
        let s = setup(name);
        let order: Vec<usize> = (0..s.tests.len()).collect();
        let (narrow_report, narrow_journal) = journal_lines(name, &s, &order, Kernel::Narrow, None);
        let (wide_report, wide_journal) = journal_lines(name, &s, &order, Kernel::Wide, None);
        assert!(narrow_report.is_complete() && wide_report.is_complete());
        assert_eq!(narrow_report.report, wide_report.report, "{name}");
        assert_eq!(
            narrow_journal, wide_journal,
            "{name}: journals differ between kernels"
        );
    }
}

#[test]
fn checkpoints_resume_across_kernels_in_both_directions() {
    for name in CIRCUITS {
        let s = setup(name);
        let order: Vec<usize> = (0..s.tests.len()).collect();
        if s.faults.len() <= 64 {
            continue; // needs at least two journal units to leave a gap
        }
        let golden = campaign::run_ordered(s.circuit.netlist(), &s.tests, &order, &s.faults);
        for (first, second) in [
            (Kernel::Narrow, Kernel::Wide),
            (Kernel::Wide, Kernel::Narrow),
        ] {
            // A unit cap of 1 stops the narrow kernel after one 64-lane
            // batch and the wide kernel after one 4-batch super; either
            // way the journal round-trips and the combined result must be
            // exact. (On sub-256-fault circuits the wide direction resumes
            // from a complete journal — still a valid round-trip check.)
            let (partial, journal_text) = journal_lines(name, &s, &order, first, Some(1));
            let _ = &partial;
            let journal = read_journal(&journal_text);
            let config = SupervisedConfig {
                kernel: second,
                ..SupervisedConfig::default()
            };
            let resumed = campaign::run_supervised(
                s.circuit.netlist(),
                &s.tests,
                &order,
                &s.faults,
                &config,
                None,
                Some(&journal),
                None,
            )
            .expect("cross-kernel resume");
            assert!(resumed.is_complete(), "{name} {first:?}->{second:?}");
            assert_eq!(
                resumed.into_complete().expect("complete"),
                golden,
                "{name}: resume {first:?}->{second:?} diverged"
            );
        }
    }
}
