//! Chaos-recovery properties of the supervised campaign runner.
//!
//! Every test here drills one failure mode the `scanft-harness` supervisor
//! must absorb — worker panics, mid-run kills, torn journal writes — and
//! checks the two resilience invariants on real benchmark circuits:
//!
//! 1. **recovery is exact**: a chaos-interrupted run plus a clean resume
//!    from its journal produces a `CampaignReport` bit-identical to an
//!    uninterrupted run (same detecting test per fault, same effectiveness
//!    counts);
//! 2. **degradation is sound**: a partial report never invents coverage —
//!    every fault in a quarantined or remaining batch stays undetected.
//!
//! All chaos is seeded through the workspace SplitMix64, so failures are
//! reproducible by seed.

use scanft_harness::{
    buffer_contents, read_journal, silence_chaos_panics, Budget, FailurePlan, JournalWriter,
    StopReason,
};
use scanft_sim::campaign::{self, CampaignReport, SupervisedConfig};
use scanft_sim::faults::{self, Fault};
use scanft_sim::ScanTest;
use scanft_synth::{synthesize, SynthConfig};

const CIRCUITS: [&str; 3] = ["bbtas", "dk27", "mc"];

struct Setup {
    circuit: scanft_synth::SynthesizedCircuit,
    tests: Vec<ScanTest>,
    order: Vec<usize>,
    faults: Vec<Fault>,
}

fn setup(name: &str) -> Setup {
    let table = scanft_fsm::benchmarks::build(name).expect("registry circuit");
    let circuit = synthesize(&table, &SynthConfig::default());
    let tests: Vec<ScanTest> = table
        .transitions()
        .map(|t| ScanTest::new(circuit.encode_state(t.from), vec![t.input]))
        .collect();
    let order: Vec<usize> = (0..tests.len()).collect();
    let faults = faults::as_fault_list(&faults::enumerate_stuck(circuit.netlist()));
    Setup {
        circuit,
        tests,
        order,
        faults,
    }
}

fn uninterrupted(s: &Setup) -> CampaignReport {
    campaign::run_ordered(s.circuit.netlist(), &s.tests, &s.order, &s.faults)
}

fn config(name: &str, threads: usize, budget: Budget) -> SupervisedConfig {
    SupervisedConfig {
        num_threads: threads,
        observe_scan_out: true,
        budget,
        label: name.to_owned(),
        kernel: campaign::Kernel::Narrow,
        arena: None,
    }
}

/// Chaos panics + torn journal writes, then a clean resume: the combined
/// run must reproduce the uninterrupted report bit-for-bit. Exercised on
/// three suite circuits over several seeds and thread counts.
#[test]
fn chaos_interrupted_run_plus_clean_resume_is_bit_identical() {
    silence_chaos_panics();
    for name in CIRCUITS {
        let s = setup(name);
        let clean = uninterrupted(&s);
        for seed in [1u64, 7, 42, 1234] {
            // Panic roughly a third of the batches and tear half the journal
            // records — far harsher than the CI smoke drill.
            let plan = FailurePlan::new(seed)
                .with_panic_rate(1, 3)
                .with_truncate_rate(1, 2);
            let (writer, buffer) = JournalWriter::in_memory();
            let writer = writer.with_chaos(plan.clone());
            let first = campaign::run_supervised(
                s.circuit.netlist(),
                &s.tests,
                &s.order,
                &s.faults,
                &config(name, 2, Budget::unlimited()),
                Some(&writer),
                None,
                Some(&plan),
            )
            .expect("in-memory journal cannot fail");

            // Soundness while degraded: quarantined batches contribute
            // nothing to coverage.
            for failure in &first.quarantined {
                let lo = failure.unit * 64;
                let hi = (lo + 64).min(s.faults.len());
                for f in lo..hi {
                    assert!(
                        first.report.detecting_test[f].is_none(),
                        "{name} seed {seed}: quarantined batch {} leaked a detection",
                        failure.unit
                    );
                }
            }
            assert!(first.report.detected() <= clean.detected());

            // Clean resume from whatever journal survived the chaos.
            let journal = read_journal(&buffer_contents(&buffer));
            let resumed = campaign::run_supervised(
                s.circuit.netlist(),
                &s.tests,
                &s.order,
                &s.faults,
                &config(name, 3, Budget::unlimited()),
                None,
                Some(&journal),
                None,
            )
            .expect("journal validated against the same campaign");
            assert!(resumed.is_complete(), "{name} seed {seed}");
            assert_eq!(
                resumed.into_complete().expect("complete"),
                clean,
                "{name} seed {seed}: resume must be bit-identical"
            );
        }
    }
}

/// A mid-run kill, simulated by a unit-cap budget: the journal holds the
/// completed prefix, and a resume finishes the rest to the exact
/// uninterrupted report. The journal round-trips through its text form,
/// like a real process restart.
#[test]
fn kill_and_resume_reproduces_uninterrupted_report() {
    for name in CIRCUITS {
        let s = setup(name);
        let clean = uninterrupted(&s);
        let num_units = s.faults.len().div_ceil(64);
        assert!(num_units >= 2, "{name} needs at least two batches");
        for killed_after in 1..num_units {
            let (writer, buffer) = JournalWriter::in_memory();
            let first = campaign::run_supervised(
                s.circuit.netlist(),
                &s.tests,
                &s.order,
                &s.faults,
                &config(
                    name,
                    2,
                    Budget::unlimited().with_max_units(killed_after as u64),
                ),
                Some(&writer),
                None,
                None,
            )
            .expect("in-memory journal cannot fail");
            assert_eq!(first.stopped, Some(StopReason::UnitCap));
            assert_eq!(first.completed_units.len(), killed_after);

            let journal = read_journal(&buffer_contents(&buffer));
            assert_eq!(journal.records.len(), killed_after);
            assert_eq!(journal.skipped_lines, 0);
            let resumed = campaign::run_supervised(
                s.circuit.netlist(),
                &s.tests,
                &s.order,
                &s.faults,
                &config(name, 1, Budget::unlimited()),
                None,
                Some(&journal),
                None,
            )
            .expect("resume");
            assert!(resumed.is_complete());
            assert_eq!(resumed.resumed_units, first.completed_units);
            assert_eq!(
                resumed.into_complete().expect("complete"),
                clean,
                "{name} killed after {killed_after} batches"
            );
        }
    }
}

/// The vacuous-deadline edge on every suite circuit: a zero-second budget
/// yields a clean empty partial report — all units remaining, nothing
/// quarantined, 0% coverage lower bound.
#[test]
fn zero_second_budget_is_cleanly_empty_everywhere() {
    for name in CIRCUITS {
        let s = setup(name);
        let partial = campaign::run_supervised(
            s.circuit.netlist(),
            &s.tests,
            &s.order,
            &s.faults,
            &config(
                name,
                4,
                Budget::unlimited().with_deadline(std::time::Duration::ZERO),
            ),
            None,
            None,
            None,
        )
        .expect("no journal involved");
        assert!(partial.completed_units.is_empty(), "{name}");
        assert!(partial.quarantined.is_empty(), "{name}");
        assert_eq!(partial.remaining_units.len(), partial.num_units, "{name}");
        assert_eq!(partial.stopped, Some(StopReason::Deadline), "{name}");
        assert_eq!(partial.report.detected(), 0, "{name}");
        assert_eq!(partial.faults_unresolved(), s.faults.len(), "{name}");
    }
}

/// Journaling changes nothing about the computed report: a journaled run
/// equals a bare run, and the journal it leaves replays to the same
/// verdicts (record-level determinism, not just aggregate counts).
#[test]
fn journaling_is_observationally_transparent() {
    for name in CIRCUITS {
        let s = setup(name);
        let clean = uninterrupted(&s);
        let (writer, buffer) = JournalWriter::in_memory();
        let journaled = campaign::run_supervised(
            s.circuit.netlist(),
            &s.tests,
            &s.order,
            &s.faults,
            &config(name, 2, Budget::unlimited()),
            Some(&writer),
            None,
            None,
        )
        .expect("in-memory journal cannot fail");
        assert_eq!(journaled.into_complete().expect("complete"), clean);

        // A resume from the *complete* journal re-simulates nothing and
        // still reports identically.
        let journal = read_journal(&buffer_contents(&buffer));
        let replayed = campaign::run_supervised(
            s.circuit.netlist(),
            &s.tests,
            &s.order,
            &s.faults,
            &config(name, 1, Budget::unlimited()),
            None,
            Some(&journal),
            None,
        )
        .expect("resume");
        assert_eq!(replayed.resumed_units.len(), replayed.num_units);
        assert_eq!(replayed.into_complete().expect("complete"), clean, "{name}");
    }
}
