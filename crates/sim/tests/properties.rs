//! Randomized property tests for the simulation substrate.
//!
//! Driven by the in-repo SplitMix64 RNG with fixed seeds so the workspace
//! builds and tests fully offline (no external `proptest`/`rand`).

#![allow(clippy::unwrap_used)]
use scanft_fsm::benchmarks::random_machine;
use scanft_fsm::rng::SplitMix64;
use scanft_sim::engine::{FaultEngine, InjectionPlan};
use scanft_sim::faults::{self, Fault};
use scanft_sim::{campaign, logic, ScanTest};
use scanft_synth::{synthesize, Encoding, SynthConfig};

fn setup(
    pi: usize,
    states: usize,
    seed: u64,
    gray: bool,
) -> (scanft_fsm::StateTable, scanft_synth::SynthesizedCircuit) {
    let table = random_machine("prop", pi, 2, states, seed).unwrap();
    let config = SynthConfig {
        encoding: if gray {
            Encoding::Gray
        } else {
            Encoding::Binary
        },
        ..SynthConfig::default()
    };
    let circuit = synthesize(&table, &config);
    (table, circuit)
}

fn random_tests(
    rng: &mut SplitMix64,
    table: &scanft_fsm::StateTable,
    circuit: &scanft_synth::SynthesizedCircuit,
    count: usize,
    max_extra_len: u64,
) -> Vec<ScanTest> {
    let pi = table.num_inputs();
    (0..count)
        .map(|_| {
            let state = rng.next_below(table.num_states() as u64) as u32;
            let len = 1 + rng.next_below(max_extra_len) as usize;
            let seq = (0..len).map(|_| rng.next_below(1 << pi) as u32).collect();
            ScanTest::new(circuit.encode_state(state), seq)
        })
        .collect()
}

/// Fault-free scan simulation of the synthesized netlist agrees with the
/// state table on arbitrary multi-cycle sequences.
#[test]
fn netlist_sequences_match_table() {
    let mut rng = SplitMix64::new(0x51_0001);
    for _ in 0..32 {
        let pi = 1 + rng.next_below(3) as usize;
        let states = 2 + rng.next_below(7) as usize;
        let (table, circuit) = setup(pi, states, rng.next_u64(), rng.chance(1, 2));
        let start = rng.next_below(states as u64) as u32;
        let len = 1 + rng.next_below(9) as usize;
        let seq: Vec<u32> = (0..len).map(|_| rng.next_below(1 << pi) as u32).collect();
        let (fin, outs) = table.run(start, &seq);
        let test = ScanTest::new(circuit.encode_state(start), seq);
        let r = logic::simulate(circuit.netlist(), &test);
        assert_eq!(r.outputs, outs);
        assert_eq!(circuit.decode_state(r.final_code), fin);
    }
}

/// Batched fault-parallel detection equals single-fault detection for every
/// stuck-at fault (same tests, same verdicts).
#[test]
fn batching_is_transparent_stuck() {
    let mut rng = SplitMix64::new(0x51_0002);
    for _ in 0..16 {
        let pi = 1 + rng.next_below(2) as usize;
        let states = 2 + rng.next_below(3) as usize;
        let (table, circuit) = setup(pi, states, rng.next_u64(), false);
        let n = circuit.netlist();
        let stuck = faults::enumerate_stuck(n);
        let list = faults::as_fault_list(&stuck);
        let tests = random_tests(&mut rng, &table, &circuit, 4, 4);
        let batched = campaign::run(n, &tests, &list);
        for (f, fault) in list.iter().enumerate() {
            let single = campaign::run(n, &tests, std::slice::from_ref(fault));
            assert_eq!(
                batched.detecting_test[f],
                single.detecting_test[0],
                "fault {}",
                fault.describe(n)
            );
        }
    }
}

/// Same transparency for bridging faults (two-pass evaluation).
#[test]
fn batching_is_transparent_bridging() {
    let mut rng = SplitMix64::new(0x51_0003);
    for _ in 0..16 {
        let pi = 1 + rng.next_below(2) as usize;
        let states = 3 + rng.next_below(6) as usize;
        let (table, circuit) = setup(pi, states, rng.next_u64(), false);
        let n = circuit.netlist();
        let bridges = faults::enumerate_bridging(n, 80);
        let list = faults::bridges_as_fault_list(&bridges.faults);
        if list.is_empty() {
            continue;
        }
        let tests = random_tests(&mut rng, &table, &circuit, 4, 4);
        let batched = campaign::run(n, &tests, &list);
        for (f, fault) in list.iter().enumerate() {
            let single = campaign::run(n, &tests, std::slice::from_ref(fault));
            assert_eq!(
                batched.detecting_test[f],
                single.detecting_test[0],
                "fault {}",
                fault.describe(n)
            );
        }
    }
}

/// Same transparency for delay faults (per-lane launch tracking).
#[test]
fn batching_is_transparent_delay() {
    let mut rng = SplitMix64::new(0x51_0004);
    for _ in 0..16 {
        let pi = 1 + rng.next_below(2) as usize;
        let states = 2 + rng.next_below(5) as usize;
        let (table, circuit) = setup(pi, states, rng.next_u64(), false);
        let n = circuit.netlist();
        let delays = faults::enumerate_delay(n);
        let list = faults::delays_as_fault_list(&delays);
        if list.is_empty() {
            continue;
        }
        let tests = random_tests(&mut rng, &table, &circuit, 4, 5);
        let batched = campaign::run(n, &tests, &list);
        for (f, fault) in list.iter().enumerate().step_by(3) {
            let single = campaign::run(n, &tests, std::slice::from_ref(fault));
            assert_eq!(
                batched.detecting_test[f],
                single.detecting_test[0],
                "fault {}",
                fault.describe(n)
            );
        }
        // Length-1 tests never detect any delay fault.
        let unit_tests: Vec<ScanTest> = (0..table.num_states() as u64)
            .map(|c| ScanTest::new(circuit.encode_state(c as u32), vec![0]))
            .collect();
        let unit = campaign::run(n, &unit_tests, &list);
        assert_eq!(unit.detected(), 0);
    }
}

/// Collapsed-class members always share detection verdicts on random
/// machines and random tests.
#[test]
fn collapse_classes_share_verdicts() {
    let mut rng = SplitMix64::new(0x51_0005);
    for _ in 0..16 {
        let pi = 1 + rng.next_below(2) as usize;
        let states = 2 + rng.next_below(5) as usize;
        let (table, circuit) = setup(pi, states, rng.next_u64(), false);
        let n = circuit.netlist();
        let stuck = faults::enumerate_stuck(n);
        let collapsed = scanft_sim::collapse::collapse_stuck(n, &stuck);
        let tests = random_tests(&mut rng, &table, &circuit, 6, 4);
        let full = campaign::run(n, &tests, &faults::as_fault_list(&stuck));
        let mut class_verdict: Vec<Option<bool>> = vec![None; collapsed.representatives.len()];
        for (k, &class) in collapsed.class_of.iter().enumerate() {
            let verdict = full.detecting_test[k].is_some();
            match class_verdict[class] {
                None => class_verdict[class] = Some(verdict),
                Some(first) => assert_eq!(first, verdict, "fault {k}"),
            }
        }
    }
}

/// Fault collapsing is detection-preserving: simulating only the class
/// representatives yields exactly the same set of detected classes as
/// simulating the full uncollapsed list and projecting detections onto the
/// classes — for random machines, encodings and test sets.
#[test]
fn collapse_is_detection_preserving() {
    let mut rng = SplitMix64::new(0x51_0009);
    for _ in 0..16 {
        let pi = 1 + rng.next_below(2) as usize;
        let states = 2 + rng.next_below(6) as usize;
        let (table, circuit) = setup(pi, states, rng.next_u64(), rng.chance(1, 2));
        let n = circuit.netlist();
        let stuck = faults::enumerate_stuck(n);
        let collapsed = scanft_sim::collapse::collapse_stuck(n, &stuck);
        let tests = random_tests(&mut rng, &table, &circuit, 5, 4);

        let rep_report = campaign::run(
            n,
            &tests,
            &faults::as_fault_list(&collapsed.representatives),
        );
        let full_report = campaign::run(n, &tests, &faults::as_fault_list(&stuck));

        // Classes detected through their representative.
        let by_reps: Vec<bool> = rep_report
            .detecting_test
            .iter()
            .map(Option::is_some)
            .collect();
        // Classes detected through any member of the full list.
        let mut by_members = vec![false; collapsed.representatives.len()];
        for (k, &class) in collapsed.class_of.iter().enumerate() {
            by_members[class] |= full_report.detecting_test[k].is_some();
        }
        assert_eq!(by_reps, by_members);
        // And therefore the expanded per-fault verdicts agree exactly.
        assert_eq!(
            collapsed.expand(&by_reps),
            full_report
                .detecting_test
                .iter()
                .map(Option::is_some)
                .collect::<Vec<bool>>()
        );
    }
}

/// A fault detected with a one-cycle test is classified detectable by the
/// exhaustive analysis (soundness cross-check).
#[test]
fn exhaustive_subsumes_observed_detections() {
    let mut rng = SplitMix64::new(0x51_0006);
    for _ in 0..12 {
        let pi = 1 + rng.next_below(2) as usize;
        let states = 2 + rng.next_below(3) as usize;
        let (table, circuit) = setup(pi, states, rng.next_u64(), false);
        let n = circuit.netlist();
        let stuck = faults::enumerate_stuck(n);
        let list = faults::as_fault_list(&stuck);
        let tests: Vec<ScanTest> = table
            .transitions()
            .map(|t| ScanTest::new(circuit.encode_state(t.from), vec![t.input]))
            .collect();
        let report = campaign::run(n, &tests, &list);
        for (f, fault) in list.iter().enumerate() {
            if report.detecting_test[f].is_some() {
                assert_eq!(
                    scanft_sim::exhaustive::is_detectable(n, fault, 1 << 22),
                    scanft_sim::exhaustive::Detectability::Detectable
                );
            }
        }
    }
}

/// `run_test` never reports detections outside the live lane mask.
#[test]
fn detection_mask_is_confined() {
    let mut rng = SplitMix64::new(0x51_0007);
    for _ in 0..32 {
        let pi = 1 + rng.next_below(2) as usize;
        let states = 2 + rng.next_below(3) as usize;
        let (_table, circuit) = setup(pi, states, rng.next_u64(), false);
        let n = circuit.netlist();
        let skip = rng.next_u64();
        let stuck = faults::enumerate_stuck(n);
        let batch: Vec<Fault> = stuck.iter().take(64).copied().map(Fault::Stuck).collect();
        let plan = InjectionPlan::new(n, &batch);
        let mut engine = FaultEngine::new(n);
        let test = ScanTest::new(0, vec![0]);
        let ff = logic::simulate(n, &test);
        let det = engine.run_test(&test, &ff, &plan, skip);
        assert_eq!(det & skip, 0);
        assert_eq!(det & !plan.lane_mask(), 0);
    }
}

/// `run_parallel` is bit-identical to `run_ordered_observing` across
/// benchmark circuits, random fault subsets, both observation modes, and
/// thread counts {1, 2, 3, 8} — on benchmarks other than `lion`.
#[test]
fn parallel_matches_sequential_on_benchmarks() {
    let mut rng = SplitMix64::new(0x51_0008);
    for name in ["bbtas", "dk27", "mc"] {
        let table = scanft_fsm::benchmarks::build(name).expect("registry circuit");
        let circuit = synthesize(&table, &SynthConfig::default());
        let n = circuit.netlist();
        let tests: Vec<ScanTest> = table
            .transitions()
            .map(|t| ScanTest::new(circuit.encode_state(t.from), vec![t.input]))
            .collect();
        let order: Vec<usize> = (0..tests.len()).collect();
        let all = faults::as_fault_list(&faults::enumerate_stuck(n));
        for round in 0..4 {
            // A random subset of the fault universe (about half), plus the
            // full list on the first round.
            let subset: Vec<Fault> = if round == 0 {
                all.clone()
            } else {
                all.iter().copied().filter(|_| rng.chance(1, 2)).collect()
            };
            for observe in [true, false] {
                let sequential =
                    campaign::run_ordered_observing(n, &tests, &order, &subset, observe);
                for threads in [1usize, 2, 3, 8] {
                    let parallel =
                        campaign::run_parallel(n, &tests, &order, &subset, observe, threads);
                    assert_eq!(
                        parallel.detecting_test, sequential.detecting_test,
                        "{name}: round {round}, observe {observe}, {threads} threads"
                    );
                    assert_eq!(parallel.new_detections, sequential.new_detections);
                    assert_eq!(parallel.order, sequential.order);
                }
            }
        }
    }
}
