//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use scanft_fsm::benchmarks::random_machine;
use scanft_sim::engine::{FaultEngine, InjectionPlan};
use scanft_sim::faults::{self, Fault};
use scanft_sim::{campaign, logic, ScanTest};
use scanft_synth::{synthesize, Encoding, SynthConfig};

fn setup(
    pi: usize,
    states: usize,
    seed: u64,
    gray: bool,
) -> (scanft_fsm::StateTable, scanft_synth::SynthesizedCircuit) {
    let table = random_machine("prop", pi, 2, states, seed).unwrap();
    let config = SynthConfig {
        encoding: if gray { Encoding::Gray } else { Encoding::Binary },
        ..SynthConfig::default()
    };
    let circuit = synthesize(&table, &config);
    (table, circuit)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fault-free scan simulation of the synthesized netlist agrees with
    /// the state table on arbitrary multi-cycle sequences.
    #[test]
    fn netlist_sequences_match_table(
        pi in 1usize..=3,
        states in 2usize..=8,
        seed in any::<u64>(),
        gray in any::<bool>(),
        start in 0u32..8,
        seq in proptest::collection::vec(0u32..8, 1..10),
    ) {
        let (table, circuit) = setup(pi, states, seed, gray);
        let start = start % states as u32;
        let seq: Vec<u32> = seq.into_iter().map(|i| i % (1 << pi)).collect();
        let (fin, outs) = table.run(start, &seq);
        let test = ScanTest::new(circuit.encode_state(start), seq);
        let r = logic::simulate(circuit.netlist(), &test);
        prop_assert_eq!(r.outputs, outs);
        prop_assert_eq!(circuit.decode_state(r.final_code), fin);
    }

    /// Batched fault-parallel detection equals single-fault detection for
    /// every stuck-at fault (same tests, same verdicts).
    #[test]
    fn batching_is_transparent_stuck(
        pi in 1usize..=2,
        states in 2usize..=4,
        seed in any::<u64>(),
        test_seed in any::<u64>(),
    ) {
        let (table, circuit) = setup(pi, states, seed, false);
        let n = circuit.netlist();
        let stuck = faults::enumerate_stuck(n);
        let list = faults::as_fault_list(&stuck);
        // A few random multi-cycle tests.
        let mut rng = scanft_fsm::rng::SplitMix64::new(test_seed);
        let tests: Vec<ScanTest> = (0..4)
            .map(|_| {
                let code = rng.next_below(table.num_states() as u64);
                let len = 1 + rng.next_below(4) as usize;
                let seq = (0..len)
                    .map(|_| rng.next_below(1 << pi) as u32)
                    .collect();
                ScanTest::new(circuit.encode_state(code as u32), seq)
            })
            .collect();
        let batched = campaign::run(n, &tests, &list);
        for (f, fault) in list.iter().enumerate() {
            let single = campaign::run(n, &tests, std::slice::from_ref(fault));
            prop_assert_eq!(
                batched.detecting_test[f], single.detecting_test[0],
                "fault {}", fault.describe(n)
            );
        }
    }

    /// Same transparency for bridging faults (two-pass evaluation).
    #[test]
    fn batching_is_transparent_bridging(
        pi in 1usize..=2,
        states in 3usize..=8,
        seed in any::<u64>(),
        test_seed in any::<u64>(),
    ) {
        let (table, circuit) = setup(pi, states, seed, false);
        let n = circuit.netlist();
        let bridges = faults::enumerate_bridging(n, 80);
        let list = faults::bridges_as_fault_list(&bridges.faults);
        prop_assume!(!list.is_empty());
        let mut rng = scanft_fsm::rng::SplitMix64::new(test_seed);
        let tests: Vec<ScanTest> = (0..4)
            .map(|_| {
                let code = rng.next_below(table.num_states() as u64);
                let len = 1 + rng.next_below(4) as usize;
                let seq = (0..len)
                    .map(|_| rng.next_below(1 << pi) as u32)
                    .collect();
                ScanTest::new(circuit.encode_state(code as u32), seq)
            })
            .collect();
        let batched = campaign::run(n, &tests, &list);
        for (f, fault) in list.iter().enumerate() {
            let single = campaign::run(n, &tests, std::slice::from_ref(fault));
            prop_assert_eq!(
                batched.detecting_test[f], single.detecting_test[0],
                "fault {}", fault.describe(n)
            );
        }
    }

    /// Same transparency for delay faults (per-lane launch tracking).
    #[test]
    fn batching_is_transparent_delay(
        pi in 1usize..=2,
        states in 2usize..=6,
        seed in any::<u64>(),
        test_seed in any::<u64>(),
    ) {
        let (table, circuit) = setup(pi, states, seed, false);
        let n = circuit.netlist();
        let delays = faults::enumerate_delay(n);
        let list = faults::delays_as_fault_list(&delays);
        prop_assume!(!list.is_empty());
        let mut rng = scanft_fsm::rng::SplitMix64::new(test_seed);
        let tests: Vec<ScanTest> = (0..4)
            .map(|_| {
                let code = rng.next_below(table.num_states() as u64);
                let len = 1 + rng.next_below(5) as usize;
                let seq = (0..len)
                    .map(|_| rng.next_below(1 << pi) as u32)
                    .collect();
                ScanTest::new(circuit.encode_state(code as u32), seq)
            })
            .collect();
        let batched = campaign::run(n, &tests, &list);
        for (f, fault) in list.iter().enumerate().step_by(3) {
            let single = campaign::run(n, &tests, std::slice::from_ref(fault));
            prop_assert_eq!(
                batched.detecting_test[f], single.detecting_test[0],
                "fault {}", fault.describe(n)
            );
        }
        // Length-1 tests never detect any delay fault.
        let unit_tests: Vec<ScanTest> = (0..table.num_states() as u64)
            .map(|c| ScanTest::new(circuit.encode_state(c as u32), vec![0]))
            .collect();
        let unit = campaign::run(n, &unit_tests, &list);
        prop_assert_eq!(unit.detected(), 0);
    }

    /// Collapsed-class members always share detection verdicts on random
    /// machines and random tests.
    #[test]
    fn collapse_classes_share_verdicts(
        pi in 1usize..=2,
        states in 2usize..=6,
        seed in any::<u64>(),
        test_seed in any::<u64>(),
    ) {
        let (table, circuit) = setup(pi, states, seed, false);
        let n = circuit.netlist();
        let stuck = faults::enumerate_stuck(n);
        let collapsed = scanft_sim::collapse::collapse_stuck(n, &stuck);
        let mut rng = scanft_fsm::rng::SplitMix64::new(test_seed);
        let tests: Vec<ScanTest> = (0..6)
            .map(|_| {
                let code = rng.next_below(table.num_states() as u64);
                let len = 1 + rng.next_below(4) as usize;
                let seq = (0..len)
                    .map(|_| rng.next_below(1 << pi) as u32)
                    .collect();
                ScanTest::new(circuit.encode_state(code as u32), seq)
            })
            .collect();
        let full = campaign::run(n, &tests, &faults::as_fault_list(&stuck));
        let mut class_verdict: Vec<Option<bool>> =
            vec![None; collapsed.representatives.len()];
        for (k, &class) in collapsed.class_of.iter().enumerate() {
            let verdict = full.detecting_test[k].is_some();
            match class_verdict[class] {
                None => class_verdict[class] = Some(verdict),
                Some(first) => prop_assert_eq!(first, verdict, "fault {}", k),
            }
        }
    }

    /// A fault detected with a one-cycle test is classified detectable by
    /// the exhaustive analysis (soundness cross-check).
    #[test]
    fn exhaustive_subsumes_observed_detections(
        pi in 1usize..=2,
        states in 2usize..=4,
        seed in any::<u64>(),
    ) {
        let (table, circuit) = setup(pi, states, seed, false);
        let n = circuit.netlist();
        let stuck = faults::enumerate_stuck(n);
        let list = faults::as_fault_list(&stuck);
        let tests: Vec<ScanTest> = table
            .transitions()
            .map(|t| ScanTest::new(circuit.encode_state(t.from), vec![t.input]))
            .collect();
        let report = campaign::run(n, &tests, &list);
        for (f, fault) in list.iter().enumerate() {
            if report.detecting_test[f].is_some() {
                prop_assert_eq!(
                    scanft_sim::exhaustive::is_detectable(n, fault, 1 << 22),
                    scanft_sim::exhaustive::Detectability::Detectable
                );
            }
        }
    }

    /// `run_test` never reports detections outside the live lane mask.
    #[test]
    fn detection_mask_is_confined(
        pi in 1usize..=2,
        states in 2usize..=4,
        seed in any::<u64>(),
        skip in any::<u64>(),
    ) {
        let (table, circuit) = setup(pi, states, seed, false);
        let n = circuit.netlist();
        let stuck = faults::enumerate_stuck(n);
        let batch: Vec<Fault> = stuck.iter().take(64).copied().map(Fault::Stuck).collect();
        let plan = InjectionPlan::new(n, &batch);
        let mut engine = FaultEngine::new(n);
        let test = ScanTest::new(0, vec![0]);
        let ff = logic::simulate(n, &test);
        let det = engine.run_test(&test, &ff, &plan, skip);
        prop_assert_eq!(det & skip, 0);
        prop_assert_eq!(det & !plan.lane_mask(), 0);
        let _ = table;
    }
}
