//! Lint/optimizer agreement and idempotence over the benchmark suite.
//!
//! The `constant-net` and `equivalent-nets` lints read the same fact set
//! ([`scanft_analyze::ConstFacts`]) the optimizer folds, so the two can
//! never disagree about *what* is redundant; these tests additionally pin
//! that the prover certifies every one of those facts (nothing the lint
//! reports is skipped as unprovable) and that the rewrite is a fixpoint —
//! optimizing an optimized netlist changes nothing, so the lints are
//! idempotent across optimization.

use scanft_analyze::{Analysis, ConstFacts};
use scanft_fsm::benchmarks;
use scanft_opt::{optimize, optimize_with};
use scanft_synth::{synthesize, SynthConfig};

#[test]
fn prover_certifies_every_lint_fact_on_the_suite() {
    for spec in benchmarks::CIRCUITS {
        if spec.num_transitions() > 2048 {
            continue; // the release-mode opt_suite bench covers the rest
        }
        let table = benchmarks::build(spec.name).expect("registry circuit");
        let c = synthesize(&table, &SynthConfig::default());
        let n = c.netlist();
        let analysis = Analysis::new(n);
        let facts = ConstFacts::of(&analysis);
        let opt = optimize_with(n, &analysis);
        // Every closure fact the lints surface is certified and folded.
        assert_eq!(opt.stats.unproven_constants, 0, "{}", spec.name);
        assert_eq!(opt.stats.unproven_equiv, 0, "{}", spec.name);
        for &(net, value) in facts.constants() {
            assert!(
                opt.constants.contains(&(net, value)),
                "{}: lint sees net {net} = {value} but the prover did not certify it",
                spec.name
            );
        }
        // The plain forward dataflow pass is a (usually strict) subset of
        // the closure facts — the lint never under-reports against it.
        assert!(
            opt.stats.dataflow_constants <= opt.stats.closure_constants,
            "{}",
            spec.name
        );
    }
}

#[test]
fn optimization_is_a_fixpoint_so_lints_are_idempotent() {
    for spec in benchmarks::CIRCUITS {
        if spec.num_transitions() > 2048 {
            continue;
        }
        let table = benchmarks::build(spec.name).expect("registry circuit");
        let c = synthesize(&table, &SynthConfig::default());
        let opt = optimize(c.netlist());
        let again = optimize(&opt.netlist);
        assert_eq!(
            again.netlist, opt.netlist,
            "{}: optimizing twice changed the netlist",
            spec.name
        );
        assert_eq!(again.stats.gates_removed, 0, "{}", spec.name);
        assert_eq!(again.stats.merges, 0, "{}", spec.name);
        assert_eq!(again.stats.constants_folded, 0, "{}", spec.name);
    }
}
