//! Differential pinning against the unoptimized oracle.
//!
//! For each pinned MCNC circuit: optimize, validate the certificate with
//! the independent checker, then simulate the exhaustive transition tests
//! both ways and require **bit-identical** detection sets (per-fault
//! detecting-test indices), new-detection profiles, and coverage under
//! both observation modes. `keyb` (4096 transitions) is pinned by the
//! release-mode `opt_suite` bench binary that CI's `opt-smoke` job runs.

use scanft_fsm::benchmarks;
use scanft_opt::campaign::run_optimized;
use scanft_opt::{checker, optimize};
use scanft_sim::campaign::run_ordered_observing;
use scanft_sim::faults::{self, Fault};
use scanft_sim::ScanTest;
use scanft_synth::{synthesize, SynthConfig, SynthesizedCircuit};

fn setup(name: &str) -> (SynthesizedCircuit, Vec<ScanTest>, Vec<Fault>) {
    let table = benchmarks::build(name).expect("registry circuit");
    let c = synthesize(&table, &SynthConfig::default());
    let tests = table
        .transitions()
        .map(|t| ScanTest::new(c.encode_state(t.from), vec![t.input]))
        .collect();
    let list = faults::as_fault_list(&faults::enumerate_stuck(c.netlist()));
    (c, tests, list)
}

fn pin_circuit(name: &str) {
    let (c, tests, list) = setup(name);
    let n = c.netlist();
    let opt = optimize(n);
    let report = checker::check(n, &opt.netlist, &opt.certificate)
        .unwrap_or_else(|e| panic!("{name}: rejected certificate: {e}"));
    assert_eq!(report.steps, opt.stats.certificate_steps, "{name}");
    let order: Vec<usize> = (0..tests.len()).collect();
    for observe_scan_out in [true, false] {
        let base = run_ordered_observing(n, &tests, &order, &list, observe_scan_out);
        let fast = run_optimized(n, &opt, &tests, &order, &list, observe_scan_out);
        assert_eq!(
            base.detecting_test, fast.detecting_test,
            "{name}: detection sets diverge (observe_scan_out={observe_scan_out})"
        );
        assert_eq!(
            base.new_detections, fast.new_detections,
            "{name}: new-detection profiles diverge (observe_scan_out={observe_scan_out})"
        );
        assert_eq!(
            base.detected(),
            fast.detected(),
            "{name}: coverage diverges"
        );
    }
}

#[test]
fn bbtas_detection_sets_are_bit_identical() {
    pin_circuit("bbtas");
}

#[test]
fn dk27_detection_sets_are_bit_identical() {
    pin_circuit("dk27");
}

#[test]
fn mc_detection_sets_are_bit_identical() {
    pin_circuit("mc");
}

#[test]
fn lion_detection_sets_are_bit_identical() {
    pin_circuit("lion");
}

/// The property of satellite scope: on every suite circuit with at most 12
/// scan-chain inputs (PIs + state variables), optimize-then-simulate equals
/// simulate-on-original — detection sets and coverage — and the
/// certificate validates.
#[test]
fn optimize_then_simulate_equals_simulate() {
    for spec in benchmarks::CIRCUITS {
        if spec.num_inputs + spec.num_state_vars > 12 || spec.num_transitions() > 2048 {
            continue; // the release-mode opt_suite bench covers the rest
        }
        pin_circuit(spec.name);
    }
}
