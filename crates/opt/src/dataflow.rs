//! A small forward dataflow framework over the levelized [`GateArena`].
//!
//! An analysis supplies a join-semilattice of per-net values and a transfer
//! function per gate; the framework seeds the primary and pseudo-primary
//! inputs, sweeps the arena's level schedule, and re-evaluates fanout until
//! the assignment stops changing — a fixpoint in at most `depth` sweeps
//! because the netlist is acyclic and transfer functions are monotone.
//!
//! The bundled instance is three-valued constant propagation
//! ([`ConstLattice`]): scan-in makes every PPI a free variable, so the
//! lattice seeds all inputs at [`Ternary::Unknown`] and only gate-local
//! structure (e.g. `AND(x, 0)`) can force a constant. Its results are a
//! *subset* of the implication closure's constants — reconvergence-made
//! constants like `AND(x, NOT x)` need the closure — which makes the pass a
//! cheap cross-check for the certified facts: every constant found here
//! must also be reported by [`scanft_analyze::ConstFacts`], and the
//! optimizer's stats expose both counts.

use scanft_netlist::{GateArena, GateKind, NetId, Netlist};

/// A forward dataflow analysis: a value domain plus a transfer function.
pub trait Analysis {
    /// The per-net lattice value.
    type Value: Copy + PartialEq;

    /// The value assigned to primary and pseudo-primary inputs.
    fn input(&self) -> Self::Value;

    /// The gate transfer function: the output value from the input values.
    fn transfer(&self, kind: GateKind, inputs: &[Self::Value]) -> Self::Value;
}

/// Runs `analysis` forward over `netlist` to a fixpoint and returns the
/// per-net value assignment.
pub fn forward<A: Analysis>(netlist: &Netlist, arena: &GateArena, analysis: &A) -> Vec<A::Value> {
    let mut values: Vec<A::Value> = vec![analysis.input(); netlist.num_nets()];
    let mut scratch: Vec<A::Value> = Vec::new();
    loop {
        let mut changed = false;
        for level in 0..arena.num_levels() {
            for &g in arena.level_batch(level) {
                let g = g as usize;
                scratch.clear();
                scratch.extend(arena.fanins(g).iter().map(|&net| values[net as usize]));
                let out = analysis.transfer(arena.kind(g), &scratch);
                let slot = &mut values[arena.gate_output(g) as usize];
                if *slot != out {
                    *slot = out;
                    changed = true;
                }
            }
        }
        if !changed {
            return values;
        }
    }
}

/// Three-valued constant domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ternary {
    /// Proven 0 on every input assignment.
    Zero,
    /// Proven 1 on every input assignment.
    One,
    /// Not determined by forward propagation.
    Unknown,
}

impl Ternary {
    /// The constant as a `bool`, when determined.
    #[must_use]
    pub fn known(self) -> Option<bool> {
        match self {
            Ternary::Zero => Some(false),
            Ternary::One => Some(true),
            Ternary::Unknown => None,
        }
    }

    fn not(self) -> Ternary {
        match self {
            Ternary::Zero => Ternary::One,
            Ternary::One => Ternary::Zero,
            Ternary::Unknown => Ternary::Unknown,
        }
    }
}

/// Forward three-valued constant propagation.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstLattice;

impl Analysis for ConstLattice {
    type Value = Ternary;

    fn input(&self) -> Ternary {
        Ternary::Unknown
    }

    fn transfer(&self, kind: GateKind, inputs: &[Ternary]) -> Ternary {
        match kind {
            GateKind::Not => inputs[0].not(),
            GateKind::Buf => inputs[0],
            GateKind::Xor => {
                let mut parity = false;
                for &v in inputs {
                    match v.known() {
                        Some(b) => parity ^= b,
                        None => return Ternary::Unknown,
                    }
                }
                if parity {
                    Ternary::One
                } else {
                    Ternary::Zero
                }
            }
            GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => {
                let controlling = matches!(kind, GateKind::Or | GateKind::Nor);
                let invert = matches!(kind, GateKind::Nand | GateKind::Nor);
                let mut all_known = true;
                for &v in inputs {
                    match v.known() {
                        Some(b) if b == controlling => {
                            return if controlling ^ invert {
                                Ternary::One
                            } else {
                                Ternary::Zero
                            };
                        }
                        Some(_) => {}
                        None => all_known = false,
                    }
                }
                if all_known {
                    if !controlling ^ invert {
                        Ternary::One
                    } else {
                        Ternary::Zero
                    }
                } else {
                    Ternary::Unknown
                }
            }
        }
    }
}

/// The constants found by forward propagation alone, in net order.
#[must_use]
pub fn forward_constants(netlist: &Netlist, arena: &GateArena) -> Vec<(NetId, bool)> {
    forward(netlist, arena, &ConstLattice)
        .iter()
        .enumerate()
        .filter_map(|(net, v)| v.known().map(|b| (net as NetId, b)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanft_analyze::ConstFacts;
    use scanft_netlist::NetlistBuilder;

    #[test]
    fn forward_constants_need_a_constant_source() {
        // Without a constant source, forward propagation finds nothing.
        let mut b = NetlistBuilder::new(2, 0);
        let a = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let n = b.finish(vec![a], vec![]).unwrap();
        let arena = GateArena::build(&n);
        assert!(forward_constants(&n, &arena).is_empty());
    }

    #[test]
    fn forward_constants_propagate_through_levels() {
        // c = AND(x, NOT x) is invisible to the forward pass (it needs the
        // closure), but once a net IS constant the pass pushes it forward.
        // Use XOR(x, x): also invisible. So build an explicit chain from a
        // closure-only constant: the forward pass alone finds nothing,
        // which is exactly the subset relationship the docs promise.
        let mut b = NetlistBuilder::new(1, 0);
        let nx = b.add_gate(GateKind::Not, &[0]).unwrap();
        let c = b.add_gate(GateKind::And, &[0, nx]).unwrap();
        let z = b.add_gate(GateKind::Or, &[c, 0]).unwrap();
        let n = b.finish(vec![z], vec![]).unwrap();
        let arena = GateArena::build(&n);
        let fwd = forward_constants(&n, &arena);
        let facts = ConstFacts::of(&scanft_analyze::Analysis::new(&n));
        // Subset property: every forward constant is a closure constant.
        for &(net, v) in &fwd {
            assert_eq!(facts.constant(net), Some(v));
        }
        assert!(fwd.len() <= facts.constants().len());
        assert_eq!(facts.constant(c), Some(false));
    }
}
