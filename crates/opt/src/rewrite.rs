//! The certificate-emitting rewrite pass: constant folding, equivalence
//! merging, structural hashing, and the dead-logic sweep.
//!
//! One topological pass visits every gate in creation order (creation order
//! *is* a topological order in this netlist model):
//!
//! 1. **Constant folding** — a gate whose output net carries a certified
//!    constant is substituted by the first certified net of that value (the
//!    *representative* generator), so an entire constant cone collapses to
//!    one generator per polarity.
//! 2. **Equivalence merging** — a gate output in a closure equivalence
//!    class is substituted by the class minimum, justified by two on-demand
//!    lemmas (`drop=1 ⇒ keep=1` and `keep=1 ⇒ drop=1`).
//! 3. **Pin dropping** — an input pin whose resolved source is certified
//!    constant at the kind's identity value (`AND`/`NAND`: 1, `OR`/`NOR`:
//!    0, `XOR`: 0) is removed; the last pin never is, so every surviving
//!    gate stays well-formed (the builder accepts single-input `AND(x) =
//!    x`, `NAND(x) = ¬x`, `XOR(x) = x`).
//! 4. **Structural hashing** — a gate with the same kind and the same
//!    resolved input multiset as an earlier survivor is substituted by it,
//!    AIG-style.
//!
//! A worklist sweep then removes every gate whose output has no remaining
//! (resolved) consumer — gate input, primary output, or next-state line —
//! which is exactly the logic that cannot reach an observation point, the
//! region the post-dominator sentinel analysis calls unobservable. Each
//! removal is emitted as a `dead` step the checker re-justifies by
//! recounting.
//!
//! Every substitution always points at a strictly smaller net id, so
//! resolution terminates, the rebuilt netlist is forward-reference-free,
//! and the checker can enforce `keep < drop` as a well-formedness rule.

use std::collections::HashMap;

use scanft_analyze::ConstFacts;
use scanft_netlist::{GateKind, NetId, Netlist, NetlistBuilder};

use crate::certificate::Certificate;
use crate::prover::Prover;

/// How original fault sites relate to the reduced netlist (built during
/// rebuild, consumed by [`crate::fault_map`]).
#[derive(Debug, Clone)]
pub struct NetMap {
    /// Final substitution target per original net (identity when kept).
    resolved: Vec<NetId>,
    /// Reduced-netlist id of each original net that survives under its own
    /// identity (PIs, PPIs, and outputs of surviving gates).
    new_net: Vec<Option<NetId>>,
    /// Reduced-netlist gate index per original gate, when it survives.
    new_gate: Vec<Option<u32>>,
    /// Surviving original pin indices per original gate, in reduced order.
    kept_pins: Vec<Vec<u32>>,
    /// Nets whose *backward* fanin cones carry rewrite assumptions
    /// (constants and equivalences) — see [`crate::fault_map`].
    pub cone_taints: Vec<NetId>,
    /// Individual nets tainted by structural merges (the two gate outputs).
    pub point_taints: Vec<NetId>,
}

impl NetMap {
    /// The final substitution target of `net` (identity when unsubstituted).
    #[must_use]
    pub fn resolve(&self, net: NetId) -> NetId {
        self.resolved[net as usize]
    }

    /// Whether `net` was substituted away.
    #[must_use]
    pub fn is_substituted(&self, net: NetId) -> bool {
        self.resolved[net as usize] != net
    }

    /// The reduced-netlist id of `net` after substitution, when its
    /// resolved target survives.
    #[must_use]
    pub fn reduced_net(&self, net: NetId) -> Option<NetId> {
        self.new_net[self.resolve(net) as usize]
    }

    /// The reduced-netlist gate index of original gate `g`, when it
    /// survives.
    #[must_use]
    pub fn reduced_gate(&self, g: usize) -> Option<u32> {
        self.new_gate[g]
    }

    /// The reduced-netlist pin position of original pin `pin` of gate `g`,
    /// when both the gate and the pin survive.
    #[must_use]
    pub fn reduced_pin(&self, g: usize, pin: u32) -> Option<u32> {
        self.new_gate[g]?;
        self.kept_pins[g]
            .iter()
            .position(|&p| p == pin)
            .map(|p| p as u32)
    }
}

/// Counters describing one rewrite run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Constant substitutions plus dropped constant pins.
    pub constants_folded: usize,
    /// Equivalence plus structural-hash merges.
    pub merges: usize,
    /// Gates removed by the dead sweep.
    pub gates_removed: usize,
    /// Closure constants the prover could not certify (skipped, counted).
    pub unproven_constants: usize,
    /// Equivalence members the prover could not certify (skipped, counted).
    pub unproven_equiv: usize,
}

/// Runs the rewrite pass and rebuild, emitting rewrite steps into `cert`.
pub fn run(
    netlist: &Netlist,
    facts: &ConstFacts,
    prover: &mut Prover,
    cert: &mut Certificate,
) -> (Netlist, NetMap, RewriteStats) {
    let nn = netlist.num_nets();
    let ng = netlist.num_gates();
    let mut stats = RewriteStats::default();
    let mut subst: Vec<NetId> = (0..nn as NetId).collect();
    let resolve = |subst: &[NetId], mut net: NetId| -> NetId {
        while subst[net as usize] != net {
            net = subst[net as usize];
        }
        net
    };
    let mut alive = vec![true; ng];
    let mut cur_inputs: Vec<Vec<NetId>> =
        netlist.gates().iter().map(|g| g.inputs.clone()).collect();
    let mut kept_pins: Vec<Vec<u32>> = netlist
        .gates()
        .iter()
        .map(|g| (0..g.inputs.len() as u32).collect())
        .collect();
    let mut cone_taints: Vec<NetId> = Vec::new();
    let mut point_taints: Vec<NetId> = Vec::new();
    // Per-value representative constant generator net.
    let mut const_rep: [Option<NetId>; 2] = [None, None];
    // Class minimum per equivalence-class member.
    let mut class_rep: HashMap<NetId, NetId> = HashMap::new();
    for class in facts.classes() {
        for &member in class {
            class_rep.insert(member, class[0]);
        }
    }
    let mut hash: HashMap<(GateKind, Vec<NetId>), usize> = HashMap::new();

    for g in 0..ng {
        for slot in &mut cur_inputs[g] {
            *slot = resolve(&subst, *slot);
        }
        let out = netlist.gate_output(g);
        let kind = netlist.gates()[g].kind;

        // 1. Constant folding of the output net.
        if let Some(v) = facts.constant(out) {
            if prover.constant(out) == Some(v) {
                match const_rep[usize::from(v)] {
                    Some(rep) => {
                        cert.const_subst(rep, out, v);
                        subst[out as usize] = rep;
                        cone_taints.push(rep);
                        cone_taints.push(out);
                        stats.constants_folded += 1;
                        continue;
                    }
                    None => const_rep[usize::from(v)] = Some(out),
                }
            } else {
                stats.unproven_constants += 1;
            }
        }

        // 2. Equivalence merging of the output net.
        if let Some(&rep) = class_rep.get(&out) {
            if rep != out {
                let fwd = prover.prove_implication(netlist, cert, out, true, rep, true);
                let bwd = prover.prove_implication(netlist, cert, rep, true, out, true);
                if let (Some(fwd), Some(bwd)) = (fwd, bwd) {
                    cert.equiv(rep, out, fwd, bwd);
                    subst[out as usize] = rep;
                    cone_taints.push(rep);
                    cone_taints.push(out);
                    stats.merges += 1;
                    continue;
                }
                stats.unproven_equiv += 1;
            }
        }

        // 3. Dropping identity-constant pins (never the last one).
        if let Some(identity) = identity_value(kind) {
            let mut pin = 0;
            while pin < cur_inputs[g].len() && cur_inputs[g].len() > 1 {
                let src = cur_inputs[g][pin];
                if facts.constant(src) == Some(identity) && prover.constant(src) == Some(identity) {
                    cert.drop_pin(g as u32, pin as u32, src, identity);
                    cur_inputs[g].remove(pin);
                    kept_pins[g].remove(pin);
                    cone_taints.push(src);
                    stats.constants_folded += 1;
                } else {
                    pin += 1;
                }
            }
        }

        // 4. Structural hashing over the resolved, post-drop input list.
        let key = hash_key(kind, &cur_inputs[g]);
        match hash.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let keep = *e.get();
                cert.merge(keep as u32, g as u32);
                let keep_out = netlist.gate_output(keep);
                subst[out as usize] = keep_out;
                point_taints.push(keep_out);
                point_taints.push(out);
                stats.merges += 1;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(g);
            }
        }
    }

    // Dead sweep: remove gates whose output has no resolved consumer.
    let mut refs: Vec<usize> = vec![0; nn];
    for inputs in cur_inputs.iter().take(ng) {
        for &i in inputs {
            refs[i as usize] += 1;
        }
    }
    for &po in netlist.pos().iter().chain(netlist.ppos()) {
        refs[resolve(&subst, po) as usize] += 1;
    }
    let mut heap: std::collections::BinaryHeap<usize> = (0..ng)
        .filter(|&g| refs[netlist.gate_output(g) as usize] == 0)
        .collect();
    while let Some(g) = heap.pop() {
        if !alive[g] || refs[netlist.gate_output(g) as usize] != 0 {
            continue;
        }
        alive[g] = false;
        cert.dead(g as u32);
        stats.gates_removed += 1;
        for &i in &cur_inputs[g] {
            refs[i as usize] -= 1;
            if refs[i as usize] == 0 {
                if let Some(d) = netlist.driver_index(i) {
                    if alive[d] {
                        heap.push(d);
                    }
                }
            }
        }
    }

    // Rebuild the reduced netlist from the survivors.
    let mut builder = NetlistBuilder::new(netlist.num_pis(), netlist.num_ppis());
    let io = (netlist.num_pis() + netlist.num_ppis()) as NetId;
    let mut new_net: Vec<Option<NetId>> = (0..nn as NetId)
        .map(|net| (net < io).then_some(net))
        .collect();
    let mut new_gate: Vec<Option<u32>> = vec![None; ng];
    let mut next_gate = 0u32;
    for g in 0..ng {
        if !alive[g] {
            continue;
        }
        let inputs: Vec<NetId> = cur_inputs[g]
            .iter()
            .map(|&i| new_net[i as usize].expect("resolved inputs of survivors survive"))
            .collect();
        let out = builder
            .add_gate(netlist.gates()[g].kind, &inputs)
            .expect("rewrite preserves well-formedness");
        new_net[netlist.gate_output(g) as usize] = Some(out);
        new_gate[g] = Some(next_gate);
        next_gate += 1;
    }
    let resolved: Vec<NetId> = (0..nn as NetId).map(|net| resolve(&subst, net)).collect();
    let map_out = |net: &NetId| -> NetId {
        new_net[resolved[*net as usize] as usize].expect("observed nets survive")
    };
    let pos: Vec<NetId> = netlist.pos().iter().map(map_out).collect();
    let ppos: Vec<NetId> = netlist.ppos().iter().map(map_out).collect();
    let reduced = builder
        .finish(pos, ppos)
        .expect("rewrite preserves well-formedness");

    let map = NetMap {
        resolved,
        new_net,
        new_gate,
        kept_pins,
        cone_taints,
        point_taints,
    };
    (reduced, map, stats)
}

/// The identity (droppable) constant value per gate kind, `None` for unary
/// kinds.
fn identity_value(kind: GateKind) -> Option<bool> {
    match kind {
        GateKind::And | GateKind::Nand => Some(true),
        GateKind::Or | GateKind::Nor | GateKind::Xor => Some(false),
        GateKind::Not | GateKind::Buf => None,
    }
}

/// The structural-hash key: kind plus the input multiset (order-insensitive
/// for the commutative fold kinds, duplicates preserved — `XOR(a, a)` and
/// `XOR(a)` must not collide).
fn hash_key(kind: GateKind, inputs: &[NetId]) -> (GateKind, Vec<NetId>) {
    let mut key = inputs.to_vec();
    if !kind.is_unary() {
        key.sort_unstable();
    }
    (kind, key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanft_analyze::Analysis;
    use scanft_netlist::NetlistBuilder as NB;

    fn optimize_raw(n: &Netlist) -> (Netlist, NetMap, RewriteStats, Certificate) {
        let analysis = Analysis::new(n);
        let facts = ConstFacts::of(&analysis);
        let mut cert = Certificate::begin(n.num_pis(), n.num_ppis(), n.num_gates());
        let mut prover = Prover::new(n, &mut cert);
        let (reduced, map, stats) = run(n, &facts, &mut prover, &mut cert);
        (reduced, map, stats, cert)
    }

    #[test]
    fn structural_duplicates_merge() {
        // XOR implications are too weak for the closure to prove the two
        // copies equivalent, so this isolates pass 4: structural hashing
        // must catch the commuted duplicate on its own.
        let mut b = NB::new(2, 0);
        let g1 = b.add_gate(GateKind::Xor, &[0, 1]).unwrap();
        let g2 = b.add_gate(GateKind::Xor, &[1, 0]).unwrap();
        let z = b.add_gate(GateKind::Or, &[g1, g2]).unwrap();
        let n = b.finish(vec![z], vec![]).unwrap();
        let (reduced, map, stats, _) = optimize_raw(&n);
        assert_eq!(stats.merges, 1);
        assert_eq!(stats.gates_removed, 1);
        assert_eq!(reduced.num_gates(), 2);
        assert_eq!(map.resolve(g2), g1);
        assert!(map.reduced_net(g2).is_some());
        assert_eq!(map.reduced_net(g2), map.reduced_net(g1));
    }

    #[test]
    fn constant_pin_drops_and_cone_dies() {
        // c = AND(x1, NOT x1) = 0 feeds OR(c, x1, x2): the pin drops, the
        // constant cone dies, the OR keeps its two live pins. (A two-input
        // OR would instead equivalence-merge onto its surviving input.)
        let mut b = NB::new(2, 0);
        let nx = b.add_gate(GateKind::Not, &[0]).unwrap();
        let c = b.add_gate(GateKind::And, &[0, nx]).unwrap();
        let z = b.add_gate(GateKind::Or, &[c, 0, 1]).unwrap();
        let n = b.finish(vec![z], vec![]).unwrap();
        let (reduced, map, stats, cert) = optimize_raw(&n);
        assert_eq!(stats.constants_folded, 1);
        assert_eq!(stats.unproven_constants, 0);
        // NOT and AND both die once the OR no longer reads c.
        assert_eq!(stats.gates_removed, 2);
        assert_eq!(reduced.num_gates(), 1);
        assert_eq!(reduced.gates()[0].inputs, vec![0, 1]);
        assert!(map.reduced_net(c).is_none());
        assert!(cert.as_text().contains("\"step\":\"drop_pin\""));
        assert!(cert.as_text().contains("\"step\":\"dead\""));
    }

    #[test]
    fn equivalent_copies_merge_through_the_closure() {
        // y = NOT(NOT x) ≡ x: consumers of y rewire to x, both NOTs die.
        let mut b = NB::new(1, 0);
        let n1 = b.add_gate(GateKind::Not, &[0]).unwrap();
        let y = b.add_gate(GateKind::Not, &[n1]).unwrap();
        let z = b.add_gate(GateKind::Buf, &[y]).unwrap();
        let n = b.finish(vec![z], vec![]).unwrap();
        let (reduced, map, stats, _) = optimize_raw(&n);
        assert!(stats.merges >= 1);
        assert_eq!(stats.unproven_equiv, 0);
        assert_eq!(map.resolve(y), 0);
        // The buffer is itself equivalent to x, so the whole chain folds
        // onto the primary input and every gate dies.
        assert_eq!(map.resolve(z), 0);
        assert_eq!(reduced.num_gates(), 0);
        assert_eq!(reduced.pos(), &[0]);
    }

    #[test]
    fn constant_outputs_share_one_generator() {
        // Two disjoint constant-0 cones: the later one substitutes onto the
        // earlier, and its gates die.
        let mut b = NB::new(2, 0);
        let nx = b.add_gate(GateKind::Not, &[0]).unwrap();
        let c1 = b.add_gate(GateKind::And, &[0, nx]).unwrap();
        let ny = b.add_gate(GateKind::Not, &[1]).unwrap();
        let c2 = b.add_gate(GateKind::And, &[1, ny]).unwrap();
        let z = b.add_gate(GateKind::Or, &[c1, c2]).unwrap();
        let n = b.finish(vec![z], vec![]).unwrap();
        let (reduced, map, stats, cert) = optimize_raw(&n);
        assert!(cert.as_text().contains("\"step\":\"const_subst\""));
        assert_eq!(map.resolve(c2), c1);
        assert!(stats.gates_removed >= 2);
        // z = OR(c1, c2) is itself constant and folds onto c1 too, so only
        // c1's generator cone survives as the PO driver.
        assert!(reduced.num_gates() <= 3);
        assert!(map.is_substituted(c2));
        assert_eq!(map.reduced_net(c2), map.reduced_net(c1));
    }

    #[test]
    fn observation_lists_keep_their_length() {
        let mut b = NB::new(1, 1);
        let g1 = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let g2 = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let n = b.finish(vec![g1, g2], vec![g1]).unwrap();
        let (reduced, _, _, _) = optimize_raw(&n);
        assert_eq!(reduced.pos().len(), 2);
        assert_eq!(reduced.ppos().len(), 1);
        // Both POs now observe the single surviving gate.
        assert_eq!(reduced.pos()[0], reduced.pos()[1]);
    }
}
