//! Fault-universe mapping: translates the original collapsed-fault list
//! onto the reduced netlist, so detection reports computed there can be
//! stated in terms of the original fault IDs.
//!
//! Every original fault is classified exactly once:
//!
//! - **Untestable** — provably undetectable without simulation: the stuck
//!   value equals a certified constant of the site's source net (fault-free
//!   and faulty circuits are identical), or the fault's effect origin
//!   cannot reach any observation point of the *original* netlist
//!   ([`scanft_netlist::PostDominators::reaches_output`]; an effect that
//!   reaches neither a PO nor a PPO dies within its cycle, so this is
//!   sound under either observation mode).
//! - **Exact** — the site survives in the reduced netlist and the fault's
//!   effect origin is outside the *taint set*, so simulating the translated
//!   fault on the reduced netlist yields the identical detecting-test
//!   verdict.
//! - **Fallback** — everything else is simulated on the original netlist.
//!   Bridge and delay faults always fall back (their sites are net pairs /
//!   transitions the rewrite does not track).
//!
//! **Why the taint set makes `Exact` sound.** Each rewrite step assumes a
//! fact about specific nets: a constant substitution assumes both nets hold
//! the constant, an equivalence merge assumes the two nets agree, a dropped
//! pin assumes its source holds the identity value. Those facts are theorems
//! of the *fault-free* circuit; a fault can break them only if its effect
//! origin lies in the backward fanin cone of an assumption net — closed
//! across the scan boundary (a cone containing PPI `k` continues into the
//! cone of the net feeding PPO `k`, because the PPO value becomes the PPI
//! value next cycle). For a fault whose origin is outside every such cone,
//! all assumption nets keep their fault-free behaviour in every cycle, so
//! by induction over topological order each rewrite preserves the faulty
//! circuit's values at every observed output, and the reduced-netlist
//! verdict equals the original one. Structural merges need no cones: the
//! two gates read the *same nets*, so their outputs agree under any fault
//! except one injected at those outputs themselves — only the two output
//! nets are tainted.

use scanft_netlist::{NetId, Netlist, PostDominators};
use scanft_sim::faults::{Fault, FaultSite};

use crate::Optimized;

/// How one original fault is handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Provably undetectable; reported as undetected without simulation.
    Untestable,
    /// Simulated on the original netlist.
    Fallback,
    /// Simulated on the reduced netlist as the carried translated fault.
    Exact(Fault),
}

/// The classification of a whole fault list against one optimization.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Per-fault class, parallel to the caller's fault list.
    pub classes: Vec<FaultClass>,
}

impl FaultPlan {
    /// Classifies `faults` (enumerated on `original`) against `opt`.
    ///
    /// # Panics
    ///
    /// Panics if a fault references a net or gate out of range for
    /// `original`.
    #[must_use]
    pub fn new(original: &Netlist, opt: &Optimized, faults: &[Fault]) -> Self {
        let post = PostDominators::new(original);
        let mut constant: Vec<Option<bool>> = vec![None; original.num_nets()];
        for &(net, v) in &opt.constants {
            constant[net as usize] = Some(v);
        }
        let tainted = tainted_origins(original, opt);
        let classes = faults
            .iter()
            .map(|fault| {
                let Fault::Stuck(sf) = fault else {
                    return FaultClass::Fallback;
                };
                let (origin, source) = match sf.site {
                    FaultSite::Net(net) => (net, net),
                    FaultSite::Branch { gate, pin } => (
                        original.gate_output(gate as usize),
                        original.gates()[gate as usize].inputs[pin as usize],
                    ),
                };
                if constant[source as usize] == Some(sf.stuck_at_one)
                    || !post.reaches_output(origin)
                {
                    return FaultClass::Untestable;
                }
                if tainted[origin as usize] {
                    return FaultClass::Fallback;
                }
                let translated = match sf.site {
                    FaultSite::Net(net) => {
                        if opt.map.is_substituted(net) {
                            None
                        } else {
                            opt.map.reduced_net(net).map(FaultSite::Net)
                        }
                    }
                    FaultSite::Branch { gate, pin } => {
                        opt.map.reduced_gate(gate as usize).and_then(|new_gate| {
                            opt.map.reduced_pin(gate as usize, pin).map(|new_pin| {
                                FaultSite::Branch {
                                    gate: new_gate,
                                    pin: new_pin,
                                }
                            })
                        })
                    }
                };
                match translated {
                    Some(site) => FaultClass::Exact(Fault::Stuck(scanft_sim::faults::StuckFault {
                        site,
                        stuck_at_one: sf.stuck_at_one,
                    })),
                    // Site vanished without its origin being tainted or
                    // unobservable — cannot happen by construction, but
                    // falling back is always sound.
                    None => FaultClass::Fallback,
                }
            })
            .collect();
        FaultPlan { classes }
    }

    /// Number of faults per class: `(untestable, fallback, exact)`.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for class in &self.classes {
            match class {
                FaultClass::Untestable => counts.0 += 1,
                FaultClass::Fallback => counts.1 += 1,
                FaultClass::Exact(_) => counts.2 += 1,
            }
        }
        counts
    }
}

/// Marks every net that, as a fault-effect origin, could invalidate a
/// rewrite assumption: the backward fanin cones (closed across the scan
/// boundary) of all assumption nets, plus the merged gate outputs of
/// structural merges.
fn tainted_origins(original: &Netlist, opt: &Optimized) -> Vec<bool> {
    let mut tainted = vec![false; original.num_nets()];
    for &net in &opt.map.point_taints {
        tainted[net as usize] = true;
    }
    let mut stack: Vec<NetId> = opt.map.cone_taints.clone();
    let mut in_cone = vec![false; original.num_nets()];
    while let Some(net) = stack.pop() {
        if std::mem::replace(&mut in_cone[net as usize], true) {
            continue;
        }
        tainted[net as usize] = true;
        if let Some(g) = original.driver_index(net) {
            stack.extend_from_slice(&original.gates()[g].inputs);
        }
        // Scan-boundary closure: a PPI's value is last cycle's PPO value.
        let num_pis = original.num_pis() as NetId;
        if net >= num_pis && net < num_pis + original.num_ppis() as NetId {
            stack.push(original.ppos()[(net - num_pis) as usize]);
        }
    }
    tainted
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanft_netlist::{GateKind, NetlistBuilder};
    use scanft_sim::faults::{self, StuckFault};

    #[test]
    fn clean_netlist_translates_every_stuck_fault_exactly() {
        // No rewrites fire: every stuck fault must classify Exact with an
        // identity translation.
        let mut b = NetlistBuilder::new(2, 0);
        let a = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let z = b.add_gate(GateKind::Not, &[a]).unwrap();
        let n = b.finish(vec![z], vec![]).unwrap();
        let opt = crate::optimize(&n);
        assert_eq!(opt.stats.gates_removed, 0);
        let list = faults::as_fault_list(&faults::enumerate_stuck(&n));
        let plan = FaultPlan::new(&n, &opt, &list);
        let (untestable, fallback, exact) = plan.counts();
        assert_eq!(untestable, 0);
        assert_eq!(fallback, 0);
        assert_eq!(exact, list.len());
        for (fault, class) in list.iter().zip(&plan.classes) {
            assert_eq!(*class, FaultClass::Exact(*fault));
        }
    }

    #[test]
    fn constant_sites_are_untestable() {
        // c = AND(x, NOT x) ≡ 0: stuck-at-0 on c can never be detected.
        let mut b = NetlistBuilder::new(1, 0);
        let nx = b.add_gate(GateKind::Not, &[0]).unwrap();
        let c = b.add_gate(GateKind::And, &[0, nx]).unwrap();
        let z = b.add_gate(GateKind::Or, &[c, 0]).unwrap();
        let n = b.finish(vec![z], vec![]).unwrap();
        let opt = crate::optimize(&n);
        let fault = Fault::Stuck(StuckFault {
            site: FaultSite::Net(c),
            stuck_at_one: false,
        });
        let plan = FaultPlan::new(&n, &opt, &[fault]);
        assert_eq!(plan.classes[0], FaultClass::Untestable);
    }

    #[test]
    fn bridges_always_fall_back() {
        let mut b = NetlistBuilder::new(2, 0);
        let a = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let n = b.finish(vec![a], vec![]).unwrap();
        let opt = crate::optimize(&n);
        let bridges =
            faults::bridges_as_fault_list(&faults::enumerate_bridging(&n, usize::MAX).faults);
        if bridges.is_empty() {
            return;
        }
        let plan = FaultPlan::new(&n, &opt, &bridges);
        assert!(plan.classes.iter().all(|c| *c == FaultClass::Fallback));
    }

    #[test]
    fn tainted_cones_fall_back_and_cross_the_scan_boundary() {
        // The PPO feeds a constant cone next cycle; taint must close over
        // the boundary and reach the PI cone feeding the PPO.
        let mut b = NetlistBuilder::new(1, 1);
        let ppi: NetId = 1;
        let npi = b.add_gate(GateKind::Not, &[ppi]).unwrap();
        let c = b.add_gate(GateKind::And, &[ppi, npi]).unwrap();
        let z = b.add_gate(GateKind::Or, &[c, 0]).unwrap();
        let state = b.add_gate(GateKind::Buf, &[0]).unwrap();
        let n = b.finish(vec![z], vec![state]).unwrap();
        let opt = crate::optimize(&n);
        let tainted = tainted_origins(&n, &opt);
        // The constant cone itself is tainted...
        assert!(tainted[c as usize]);
        assert!(tainted[ppi as usize]);
        // ...and so is the net feeding the PPO (previous cycle's source).
        assert!(tainted[state as usize]);
        assert!(tainted[0]);
    }
}
