//! Certificate-emitting static netlist analysis and optimization.
//!
//! `scanft-opt` reduces a full-scan netlist before simulation or test
//! generation — constant folding driven by the implication closure,
//! AIG-style structural hashing, equivalence merging over the closure's
//! union-find classes, and an unobservable-logic sweep — and emits a
//! machine-checkable **certificate** justifying every rewrite step. The
//! certificate is a JSONL proof log ([`certificate`]) validated by an
//! independent minimal checker ([`checker`]) that shares no code with the
//! optimizer: it re-verifies each unit-propagation trace from gate
//! semantics alone, replays the rewrites under its own justification rules,
//! rebuilds the reduced netlist, and compares it structurally against the
//! optimizer's output.
//!
//! Because scan-in makes every pseudo-primary input a free variable, only
//! combinationally forced facts are used — the reduced netlist is
//! test-for-test equivalent to the original at all observed outputs, and
//! [`fault_map`] translates detection verdicts on the reduced netlist back
//! to the original collapsed-fault universe ([`campaign`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod campaign;
pub mod certificate;
pub mod checker;
pub mod dataflow;
pub mod fault_map;
pub mod prover;
pub mod rewrite;

use scanft_netlist::{GateArena, Netlist};

pub use certificate::Certificate;
pub use rewrite::{NetMap, RewriteStats};

/// Counters describing one optimization run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Gates in the original netlist.
    pub original_gates: usize,
    /// Gates in the reduced netlist.
    pub reduced_gates: usize,
    /// Constant substitutions plus dropped constant pins.
    pub constants_folded: usize,
    /// Equivalence plus structural-hash merges.
    pub merges: usize,
    /// Gates removed by the dead sweep.
    pub gates_removed: usize,
    /// Closure facts the prover could not certify (folds skipped).
    pub unproven_constants: usize,
    /// Equivalence members the prover could not certify (merges skipped).
    pub unproven_equiv: usize,
    /// Constant nets proven by the implication closure.
    pub closure_constants: usize,
    /// Constant nets the plain forward dataflow pass alone would find — a
    /// subset of `closure_constants` by construction.
    pub dataflow_constants: usize,
    /// Certificate steps (including `begin`).
    pub certificate_steps: usize,
    /// Certificate lemmas.
    pub certificate_lemmas: u32,
    /// Certificate size in bytes.
    pub certificate_bytes: usize,
}

/// The result of optimizing a netlist: the reduced netlist, the
/// original-to-reduced mapping, the proof log, and run counters.
#[derive(Debug)]
pub struct Optimized {
    /// The reduced netlist.
    pub netlist: Netlist,
    /// Maps original nets, gates, and pins to their reduced counterparts.
    pub map: NetMap,
    /// The JSONL certificate justifying every rewrite step.
    pub certificate: String,
    /// Certified constant nets of the *original* netlist, in net order
    /// (used by [`fault_map`] to mark constant-site faults untestable).
    pub constants: Vec<(scanft_netlist::NetId, bool)>,
    /// Run counters.
    pub stats: OptStats,
}

/// Optimizes `netlist`, computing the implication closure internally.
#[must_use]
pub fn optimize(netlist: &Netlist) -> Optimized {
    optimize_with(netlist, &scanft_analyze::Analysis::new(netlist))
}

/// Optimizes `netlist` reusing an already-computed `analysis` (the server
/// caches one per circuit).
#[must_use]
pub fn optimize_with(netlist: &Netlist, analysis: &scanft_analyze::Analysis) -> Optimized {
    let obs = scanft_obs::global();
    let _timer = obs.timer("opt.optimize_secs").start();
    let facts = scanft_analyze::ConstFacts::of(analysis);
    let arena = GateArena::build(netlist);
    let dataflow_constants = dataflow::forward_constants(netlist, &arena).len();
    let mut cert = Certificate::begin(netlist.num_pis(), netlist.num_ppis(), netlist.num_gates());
    let mut prover = prover::Prover::new(netlist, &mut cert);
    let (reduced, map, rw) = rewrite::run(netlist, &facts, &mut prover, &mut cert);
    let stats = OptStats {
        original_gates: netlist.num_gates(),
        reduced_gates: reduced.num_gates(),
        constants_folded: rw.constants_folded,
        merges: rw.merges,
        gates_removed: rw.gates_removed,
        unproven_constants: rw.unproven_constants,
        unproven_equiv: rw.unproven_equiv,
        closure_constants: facts.constants().len(),
        dataflow_constants,
        certificate_steps: cert.num_steps(),
        certificate_lemmas: cert.num_lemmas(),
        certificate_bytes: cert.num_bytes(),
    };
    obs.counter("opt.gates_removed")
        .add(stats.gates_removed as u64);
    obs.counter("opt.merges").add(stats.merges as u64);
    obs.counter("opt.constants_folded")
        .add(stats.constants_folded as u64);
    obs.counter("opt.certificate_bytes")
        .add(stats.certificate_bytes as u64);
    obs.counter("opt.certificate_steps")
        .add(stats.certificate_steps as u64);
    Optimized {
        netlist: reduced,
        map,
        certificate: cert.into_text(),
        constants: prover.constants(),
        stats,
    }
}
