//! Fact prover: re-derives the static-learning closure with antecedent
//! tracking, so every constant and implication the optimizer folds carries
//! a replayable unit-propagation trace in the certificate.
//!
//! The algorithm mirrors `scanft_analyze::Implications` step for step —
//! same propagation rules, same contrapositive learning, same round
//! structure and filters — so the fact set it certifies is exactly the one
//! [`scanft_analyze::ConstFacts`] reports (the agreement tests pin this on
//! every suite circuit). The difference is bookkeeping: each assignment
//! remembers *why* it was forced (seed, certified constant, gate rule, or
//! an earlier lemma), which lets the prover extract an ancestor-pruned
//! trace for any derived literal or conflict and emit it as a `const` or
//! `lemma` certificate step ([`crate::certificate`]).
//!
//! Learned implications are certified *lazily*: the closure records them as
//! internal edges and a certificate lemma is emitted only when an emitted
//! trace cites one (recursively certifying the lemma's own trace first).
//! The closure learns millions of pairs on the larger suite machines while
//! the rewrites cite only thousands; eager emission produced a 2 GB
//! certificate for `keyb` where the lazy log stays in the megabytes, with
//! the identical fact set.
//!
//! Soundness is inherited from the mirrored engine; *checkability* is the
//! new property: the independent checker re-verifies every trace entry from
//! gate semantics alone, so a bug in this module (or in the engine it
//! mirrors) surfaces as a rejected certificate, never as a silently wrong
//! netlist.

use std::collections::HashMap;

use scanft_netlist::{GateKind, NetId, Netlist};

use crate::certificate::{Certificate, Reason, TraceEntry};

/// Index of a literal: `2 * net + value`.
fn lit(net: NetId, value: bool) -> usize {
    2 * net as usize + usize::from(value)
}

fn lit_net(l: usize) -> NetId {
    (l / 2) as NetId
}

fn lit_value(l: usize) -> bool {
    l % 2 == 1
}

fn neg(l: usize) -> usize {
    l ^ 1
}

/// Same learning-round bound as the mirrored engine.
const MAX_ROUNDS: usize = 8;

/// A learned contrapositive edge: applying it cites the *internal* learned
/// lemma that proved the forward direction (certified on first citation).
#[derive(Debug, Clone, Copy)]
struct Edge {
    target: u32,
    lemma: u32,
}

/// One learned implication `l ⇒ m`, certified lazily: a certificate lemma
/// is emitted only when a trace that reaches the log actually cites it.
/// `limit` is the number of learned lemmas that existed when this round's
/// rows were computed, so re-deriving the trace uses exactly the edge set
/// the discovery used — and every lemma it cites has a strictly smaller
/// index, which keeps the on-demand emission well-founded.
#[derive(Debug, Clone, Copy)]
struct Learned {
    l: u32,
    m: u32,
    limit: u32,
    cert_id: Option<u32>,
}

/// The closure re-derivation with certificate emission.
pub struct Prover {
    num_nets: usize,
    words_per_row: usize,
    rows: Vec<u64>,
    infeasible: Vec<bool>,
    constant: Vec<Option<bool>>,
    edges: Vec<Vec<Edge>>,
    learned: Vec<Learned>,
    /// Internal index of each learned implication, keyed by
    /// (from-literal, to-literal).
    learned_ids: HashMap<(u32, u32), u32>,
    /// Certificate lemmas already emitted, keyed the same way.
    lemma_ids: HashMap<(u32, u32), u32>,
    prop: Tracked,
}

impl Prover {
    /// Runs tracked static learning over `netlist`, emitting a `const` step
    /// into `cert` for every constant as it is discovered. Learned
    /// implications are recorded internally only; their lemmas reach the
    /// certificate on first citation (see `Learned`), so the log carries
    /// exactly the facts the rewrites depend on, not the full closure —
    /// which runs to millions of learned pairs on the larger machines.
    #[must_use]
    pub fn new(netlist: &Netlist, cert: &mut Certificate) -> Self {
        let n = netlist.num_nets();
        let lits = 2 * n;
        let words_per_row = lits.div_ceil(64).max(1);
        let mut prover = Prover {
            num_nets: n,
            words_per_row,
            rows: vec![0u64; lits * words_per_row],
            infeasible: vec![false; lits],
            constant: vec![None; n],
            edges: vec![Vec::new(); lits],
            learned: Vec::new(),
            learned_ids: HashMap::new(),
            lemma_ids: HashMap::new(),
            prop: Tracked::new(n),
        };
        for _round in 0..MAX_ROUNDS {
            prover.close_all(netlist, cert);
            let mut to_learn: Vec<(usize, usize)> = Vec::new();
            for l in 0..lits {
                if prover.infeasible[l] || prover.constant[lit_net(l) as usize].is_some() {
                    continue;
                }
                let row = &prover.rows[l * words_per_row..(l + 1) * words_per_row];
                for m in iter_bits(row) {
                    if m == l || prover.infeasible[neg(m)] {
                        continue;
                    }
                    if !prover.row_bit(neg(m), neg(l))
                        && !prover.learned_ids.contains_key(&(l as u32, m as u32))
                    {
                        to_learn.push((l, m));
                    }
                }
            }
            if to_learn.is_empty() {
                break;
            }
            // Every pair of this round shares the round-start lemma count:
            // the rows that justified them were computed with exactly the
            // first `limit` learned edges.
            let limit = prover.learned.len() as u32;
            for (l, m) in to_learn {
                let idx = prover.learned.len() as u32;
                prover.learned.push(Learned {
                    l: l as u32,
                    m: m as u32,
                    limit,
                    cert_id: None,
                });
                prover.learned_ids.insert((l as u32, m as u32), idx);
                prover.edges[neg(m)].push(Edge {
                    target: neg(l) as u32,
                    lemma: idx,
                });
            }
        }
        prover
    }

    /// Emits (or reuses) the certificate lemma for learned implication
    /// `idx`, first certifying every lemma its trace cites. Terminates
    /// because the re-derivation only uses edges below `limit`, so every
    /// citation has a strictly smaller index.
    fn require_lemma(&mut self, netlist: &Netlist, cert: &mut Certificate, idx: u32) -> u32 {
        if let Some(id) = self.learned[idx as usize].cert_id {
            return id;
        }
        let Learned { l, m, limit, .. } = self.learned[idx as usize];
        let (l, m) = (l as usize, m as usize);
        // Constants certified since discovery only add seeded facts, so the
        // re-derivation either still reaches `m` or conflicts outright — in
        // which case the seed literal is infeasible and the conflict trace
        // proves the implication vacuously (the checker accepts either).
        let outcome = self.prop.propagate(
            netlist,
            &self.edges,
            &self.constant,
            lit_net(l),
            lit_value(l),
            limit,
        );
        let raw = match outcome {
            Ok(()) => {
                assert_eq!(
                    self.prop.values[lit_net(m) as usize],
                    Some(lit_value(m)),
                    "learned row member must re-derive under its round-start edges"
                );
                self.prop.extract_to(lit_net(m))
            }
            Err(()) => self.prop.extract_conflict(),
        };
        let trace = self.certify_trace(netlist, cert, raw);
        let id = cert.lemma(lit_net(l), lit_value(l), lit_net(m), lit_value(m), &trace);
        self.learned[idx as usize].cert_id = Some(id);
        id
    }

    /// Rewrites a raw trace's internal lemma citations into certificate
    /// lemma ids, emitting any not-yet-certified lemma first so the log
    /// stays a valid forward proof.
    fn certify_trace(
        &mut self,
        netlist: &Netlist,
        cert: &mut Certificate,
        mut raw: Vec<TraceEntry>,
    ) -> Vec<TraceEntry> {
        for entry in &mut raw {
            if let Reason::Contra(internal) = entry.by {
                entry.by = Reason::Contra(self.require_lemma(netlist, cert, internal));
            }
        }
        raw
    }

    /// Recomputes every literal's row, emitting `const` steps for conflicts
    /// as they surface (mirrors the engine's `close_all`).
    fn close_all(&mut self, netlist: &Netlist, cert: &mut Certificate) {
        let lits = 2 * self.num_nets;
        loop {
            for l in 0..lits {
                let net = lit_net(l);
                if let Some(c) = self.constant[net as usize] {
                    self.infeasible[l] = c != lit_value(l);
                    if self.infeasible[l] {
                        continue;
                    }
                }
                match self.prop.propagate(
                    netlist,
                    &self.edges,
                    &self.constant,
                    net,
                    lit_value(l),
                    u32::MAX,
                ) {
                    Ok(()) => {
                        self.infeasible[l] = false;
                        let row =
                            &mut self.rows[l * self.words_per_row..(l + 1) * self.words_per_row];
                        row.fill(0);
                        for &tnet in &self.prop.trail {
                            let v = self.prop.values[tnet as usize].unwrap_or(false);
                            let m = lit(tnet, v);
                            row[m / 64] |= 1 << (m % 64);
                        }
                    }
                    Err(()) => {
                        if !self.infeasible[l] && self.constant[net as usize].is_none() {
                            // First proof of this conflict: certify the
                            // constant at the complement value right away,
                            // so later traces may cite it. Extract before
                            // certifying — emitting cited lemmas reuses the
                            // propagator.
                            let raw = self.prop.extract_conflict();
                            let trace = self.certify_trace(netlist, cert, raw);
                            cert.const_step(net, !lit_value(l), &trace);
                        }
                        self.infeasible[l] = true;
                    }
                }
            }
            let mut new_constant = false;
            for net in 0..self.num_nets {
                if self.constant[net].is_none() {
                    for v in [false, true] {
                        if self.infeasible[lit(net as NetId, v)] {
                            self.constant[net] = Some(!v);
                            new_constant = true;
                        }
                    }
                }
            }
            if !new_constant {
                return;
            }
        }
    }

    fn row_bit(&self, l: usize, m: usize) -> bool {
        self.rows[l * self.words_per_row + m / 64] >> (m % 64) & 1 == 1
    }

    fn prove_pair(
        &mut self,
        netlist: &Netlist,
        cert: &mut Certificate,
        l: usize,
        m: usize,
    ) -> Option<u32> {
        let outcome = self.prop.propagate(
            netlist,
            &self.edges,
            &self.constant,
            lit_net(l),
            lit_value(l),
            u32::MAX,
        );
        match outcome {
            Ok(()) if self.prop.values[lit_net(m) as usize] == Some(lit_value(m)) => {
                let raw = self.prop.extract_to(lit_net(m));
                let trace = self.certify_trace(netlist, cert, raw);
                Some(cert.lemma(lit_net(l), lit_value(l), lit_net(m), lit_value(m), &trace))
            }
            _ => None,
        }
    }

    /// Proves `(a=av) ⇒ (b=bv)` on demand, emitting (or reusing) a lemma
    /// and returning its id. `None` when the closure cannot derive it.
    pub fn prove_implication(
        &mut self,
        netlist: &Netlist,
        cert: &mut Certificate,
        a: NetId,
        av: bool,
        b: NetId,
        bv: bool,
    ) -> Option<u32> {
        let (la, lb) = (lit(a, av), lit(b, bv));
        if let Some(&id) = self.lemma_ids.get(&(la as u32, lb as u32)) {
            return Some(id);
        }
        // A learned closure edge covers the pair: certify that lemma.
        if let Some(&idx) = self.learned_ids.get(&(la as u32, lb as u32)) {
            let id = self.require_lemma(netlist, cert, idx);
            self.lemma_ids.insert((la as u32, lb as u32), id);
            return Some(id);
        }
        let id = self.prove_pair(netlist, cert, la, lb)?;
        self.lemma_ids.insert((la as u32, lb as u32), id);
        Some(id)
    }

    /// The certified constant value of `net`, if the prover proved one.
    #[must_use]
    pub fn constant(&self, net: NetId) -> Option<bool> {
        self.constant[net as usize]
    }

    /// All certified constants in net order.
    #[must_use]
    pub fn constants(&self) -> Vec<(NetId, bool)> {
        self.constant
            .iter()
            .enumerate()
            .filter_map(|(net, c)| c.map(|v| (net as NetId, v)))
            .collect()
    }
}

/// Iterates the set bit positions of a bitset row.
fn iter_bits(row: &[u64]) -> impl Iterator<Item = usize> + '_ {
    row.iter().enumerate().flat_map(|(w, &bits)| {
        let mut bits = bits;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            Some(w * 64 + b)
        })
    })
}

/// One tracked assignment: the forced value, its reason, and the nets whose
/// assignments the forcing used (for ancestor pruning).
#[derive(Debug, Clone)]
struct Why {
    reason: Reason,
    parents: Vec<NetId>,
}

/// A unit propagator that remembers, per assignment, why it was forced.
struct Tracked {
    values: Vec<Option<bool>>,
    why: Vec<Option<Why>>,
    trail: Vec<NetId>,
    cursor: usize,
    /// Set on conflict: the failed assignment (net, value, why).
    conflict: Option<(NetId, bool, Why)>,
}

impl Tracked {
    fn new(num_nets: usize) -> Self {
        Tracked {
            values: vec![None; num_nets],
            why: vec![None; num_nets],
            trail: Vec::with_capacity(num_nets),
            cursor: 0,
            conflict: None,
        }
    }

    /// Propagates `seed_net = seed_value` plus all certified constants to a
    /// fixpoint, applying only learned edges with index below `limit`.
    /// `Err(())` marks a conflict (details kept for extraction).
    fn propagate(
        &mut self,
        netlist: &Netlist,
        edges: &[Vec<Edge>],
        constants: &[Option<bool>],
        seed_net: NetId,
        seed_value: bool,
        limit: u32,
    ) -> Result<(), ()> {
        for &net in &self.trail {
            self.values[net as usize] = None;
            self.why[net as usize] = None;
        }
        self.trail.clear();
        self.cursor = 0;
        self.conflict = None;
        for (net, c) in constants.iter().enumerate() {
            if let Some(v) = c {
                self.assign(
                    net as NetId,
                    *v,
                    Why {
                        reason: Reason::Const,
                        parents: Vec::new(),
                    },
                )?;
            }
        }
        self.assign(
            seed_net,
            seed_value,
            Why {
                reason: Reason::Seed,
                parents: Vec::new(),
            },
        )?;
        while self.cursor < self.trail.len() {
            let net = self.trail[self.cursor];
            self.cursor += 1;
            let v = self.values[net as usize].unwrap_or(false);
            for edge in &edges[lit(net, v)] {
                if edge.lemma >= limit {
                    continue;
                }
                let t = edge.target as usize;
                self.assign(
                    lit_net(t),
                    lit_value(t),
                    Why {
                        reason: Reason::Contra(edge.lemma),
                        parents: vec![net],
                    },
                )?;
            }
            if let Some(g) = netlist.driver_index(net) {
                self.apply_gate(netlist, g)?;
            }
            for &g in netlist.fanout(net) {
                self.apply_gate(netlist, g as usize)?;
            }
        }
        Ok(())
    }

    fn assign(&mut self, net: NetId, v: bool, why: Why) -> Result<(), ()> {
        match self.values[net as usize] {
            Some(x) if x == v => Ok(()),
            Some(_) => {
                self.conflict = Some((net, v, why));
                Err(())
            }
            None => {
                self.values[net as usize] = Some(v);
                self.why[net as usize] = Some(why);
                self.trail.push(net);
                Ok(())
            }
        }
    }

    /// Assigns `net = v` as forced by gate `g`, with the gate's currently
    /// assigned terminals as parents.
    fn assign_by_gate(
        &mut self,
        netlist: &Netlist,
        g: usize,
        net: NetId,
        v: bool,
    ) -> Result<(), ()> {
        let gate = &netlist.gates()[g];
        let out = netlist.gate_output(g);
        let mut parents = Vec::new();
        for &t in gate.inputs.iter().chain(std::iter::once(&out)) {
            if t != net && self.values[t as usize].is_some() && !parents.contains(&t) {
                parents.push(t);
            }
        }
        self.assign(
            net,
            v,
            Why {
                reason: Reason::Gate(g as u32),
                parents,
            },
        )
    }

    /// Applies every forward and backward consistency rule of gate `g`
    /// (mirrors the engine's `apply_gate`).
    fn apply_gate(&mut self, netlist: &Netlist, g: usize) -> Result<(), ()> {
        let gate = &netlist.gates()[g];
        let out = netlist.gate_output(g);
        let kind = gate.kind;
        match kind {
            GateKind::Not | GateKind::Buf => {
                let invert = kind == GateKind::Not;
                let input = gate.inputs[0];
                if let Some(v) = self.values[input as usize] {
                    self.assign_by_gate(netlist, g, out, v ^ invert)?;
                }
                if let Some(v) = self.values[out as usize] {
                    self.assign_by_gate(netlist, g, input, v ^ invert)?;
                }
            }
            GateKind::Xor => {
                let mut parity = false;
                let mut unknown = None;
                let mut unknowns = 0usize;
                for (pin, &input) in gate.inputs.iter().enumerate() {
                    match self.values[input as usize] {
                        Some(v) => parity ^= v,
                        None => {
                            unknown = Some(pin);
                            unknowns += 1;
                        }
                    }
                }
                match (unknowns, self.values[out as usize]) {
                    (0, _) => self.assign_by_gate(netlist, g, out, parity)?,
                    (1, Some(v)) => {
                        let pin = unknown.unwrap_or(0);
                        self.assign_by_gate(netlist, g, gate.inputs[pin], v ^ parity)?;
                    }
                    _ => {}
                }
            }
            GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => {
                let controlling = matches!(kind, GateKind::Or | GateKind::Nor);
                let invert = matches!(kind, GateKind::Nand | GateKind::Nor);
                let mut unknown = None;
                let mut unknowns = 0usize;
                let mut any_controlling = false;
                for (pin, &input) in gate.inputs.iter().enumerate() {
                    match self.values[input as usize] {
                        Some(v) if v == controlling => any_controlling = true,
                        Some(_) => {}
                        None => {
                            unknown = Some(pin);
                            unknowns += 1;
                        }
                    }
                }
                if any_controlling {
                    self.assign_by_gate(netlist, g, out, controlling ^ invert)?;
                } else if unknowns == 0 {
                    self.assign_by_gate(netlist, g, out, !controlling ^ invert)?;
                }
                if let Some(v) = self.values[out as usize] {
                    if v == !controlling ^ invert {
                        for pin in 0..gate.inputs.len() {
                            self.assign_by_gate(netlist, g, gate.inputs[pin], !controlling)?;
                        }
                    } else if unknowns == 1 && !any_controlling {
                        let pin = unknown.unwrap_or(0);
                        self.assign_by_gate(netlist, g, gate.inputs[pin], controlling)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Marks the ancestor closure of `roots` (nets) through parent links.
    fn mark_ancestors(&self, roots: &[NetId]) -> Vec<bool> {
        let mut marked = vec![false; self.values.len()];
        let mut stack: Vec<NetId> = roots.to_vec();
        while let Some(net) = stack.pop() {
            if std::mem::replace(&mut marked[net as usize], true) {
                continue;
            }
            if let Some(why) = &self.why[net as usize] {
                stack.extend_from_slice(&why.parents);
            }
        }
        marked
    }

    /// Marked trail entries in assignment order.
    fn entries(&self, marked: &[bool]) -> Vec<TraceEntry> {
        self.trail
            .iter()
            .filter(|&&net| marked[net as usize])
            .map(|&net| TraceEntry {
                net,
                value: self.values[net as usize].unwrap_or(false),
                by: self.why[net as usize]
                    .as_ref()
                    .map_or(Reason::Seed, |w| w.reason),
            })
            .collect()
    }

    /// The ancestor-pruned trace deriving `target`'s current assignment.
    ///
    /// # Panics
    ///
    /// Panics if `target` is unassigned (callers check derivability first).
    fn extract_to(&self, target: NetId) -> Vec<TraceEntry> {
        assert!(
            self.values[target as usize].is_some(),
            "trace target must be assigned"
        );
        self.entries(&self.mark_ancestors(&[target]))
    }

    /// The ancestor-pruned trace ending in the recorded conflict: the final
    /// entry re-asserts a net at the complement of its standing assignment.
    ///
    /// # Panics
    ///
    /// Panics if no conflict was recorded.
    fn extract_conflict(&self) -> Vec<TraceEntry> {
        let (net, value, why) = self.conflict.as_ref().expect("conflict recorded");
        let mut roots = why.parents.clone();
        roots.push(*net);
        let mut entries = self.entries(&self.mark_ancestors(&roots));
        entries.push(TraceEntry {
            net: *net,
            value: *value,
            by: why.reason,
        });
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanft_analyze::{Analysis, ConstFacts};
    use scanft_netlist::NetlistBuilder;

    #[test]
    fn prover_rediscovers_the_closure_constants() {
        // c = AND(x, NOT x) is constant 0; the closure then sees z = x.
        let mut b = NetlistBuilder::new(1, 0);
        let nx = b.add_gate(GateKind::Not, &[0]).unwrap();
        let c = b.add_gate(GateKind::And, &[0, nx]).unwrap();
        let z = b.add_gate(GateKind::Or, &[c, 0]).unwrap();
        let n = b.finish(vec![z], vec![]).unwrap();
        let mut cert = Certificate::begin(1, 0, 3);
        let prover = Prover::new(&n, &mut cert);
        assert_eq!(prover.constant(c), Some(false));
        let facts = ConstFacts::of(&Analysis::new(&n));
        assert_eq!(prover.constants(), facts.constants());
        assert!(cert.as_text().contains("\"step\":\"const\""));
    }

    #[test]
    fn on_demand_lemmas_cover_equivalence_pairs() {
        let mut b = NetlistBuilder::new(1, 0);
        let n1 = b.add_gate(GateKind::Not, &[0]).unwrap();
        let y = b.add_gate(GateKind::Not, &[n1]).unwrap();
        let bf = b.add_gate(GateKind::Buf, &[0]).unwrap();
        let n = b.finish(vec![y, bf], vec![]).unwrap();
        let mut cert = Certificate::begin(1, 0, 3);
        let mut prover = Prover::new(&n, &mut cert);
        let facts = ConstFacts::of(&Analysis::new(&n));
        for class in facts.classes() {
            let rep = class[0];
            for &member in &class[1..] {
                assert!(
                    prover
                        .prove_implication(&n, &mut cert, member, true, rep, true)
                        .is_some(),
                    "fwd {member}->{rep}"
                );
                assert!(
                    prover
                        .prove_implication(&n, &mut cert, rep, true, member, true)
                        .is_some(),
                    "bwd {rep}->{member}"
                );
            }
        }
        // Re-proving reuses the cached lemma id.
        let first = prover.prove_implication(&n, &mut cert, y, true, bf, true);
        let again = prover.prove_implication(&n, &mut cert, y, true, bf, true);
        assert_eq!(first, again);
    }
}
