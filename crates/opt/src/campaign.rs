//! Campaign runners over an optimized netlist that report in the
//! **original** fault universe.
//!
//! [`run_optimized`] partitions the fault list by [`FaultPlan`]: exact
//! faults simulate on the reduced netlist (translated sites), fallback
//! faults on the original, untestable faults are reported undetected
//! without simulation. Per-fault detecting-test verdicts are independent of
//! how faults are batched (each lane owns its fault and walks the same
//! ordered test list), so stitching the two runs back together by original
//! fault index reproduces exactly what a single run on the original netlist
//! reports — the differential tests pin this bit-for-bit.
//!
//! [`run_supervised_optimized`] preserves the supervised contract of
//! [`scanft_sim::campaign::run_supervised`]: the same 64-fault units over
//! the same original fault list, the same journal header and per-unit
//! records (journals are byte-identical and cross-resumable with
//! unoptimized runs), the same budget, quarantine, resume, and chaos
//! behaviour. A unit containing any fallback fault simulates wholly on the
//! original netlist; a pure exact/untestable unit simulates its translated
//! faults on the reduced netlist in one narrow batch. Units always run on
//! the narrow kernel even when `config.kernel` is wide — verdicts are
//! kernel-independent, so the journal and report are unaffected.
//!
//! race-lint: deterministic-replay — shares the journal/resume contract of
//! `scanft_sim::campaign`: no wall-clock reads, resume must be a pure
//! function of the journal bytes.

use scanft_harness::{
    run_units, FailurePlan, Journal, JournalHeader, JournalRecord, JournalWriter, ScanftError,
};
use scanft_netlist::Netlist;
use scanft_sim::campaign::{CampaignReport, PartialReport, SupervisedConfig};
use scanft_sim::engine::{FaultEngine, InjectionPlan};
use scanft_sim::faults::Fault;
use scanft_sim::{logic, ScanResponse, ScanTest};

use crate::fault_map::{FaultClass, FaultPlan};
use crate::Optimized;

/// Simulates `faults` (enumerated on `original`) over the optimized
/// netlist where sound, the original otherwise, and returns a report in
/// the original fault universe identical to
/// [`scanft_sim::campaign::run_ordered_observing`] on `original`.
///
/// # Panics
///
/// Panics if `order` references a test out of range.
#[must_use]
pub fn run_optimized(
    original: &Netlist,
    opt: &Optimized,
    tests: &[ScanTest],
    order: &[usize],
    faults: &[Fault],
    observe_scan_out: bool,
) -> CampaignReport {
    let plan = FaultPlan::new(original, opt, faults);
    let obs = scanft_obs::global();
    let (untestable, fallback, exact) = plan.counts();
    obs.counter("opt.campaign.untestable")
        .add(untestable as u64);
    obs.counter("opt.campaign.fallback").add(fallback as u64);
    obs.counter("opt.campaign.exact").add(exact as u64);

    let mut exact_idx = Vec::new();
    let mut exact_faults = Vec::new();
    let mut fallback_idx = Vec::new();
    let mut fallback_faults = Vec::new();
    for (f, class) in plan.classes.iter().enumerate() {
        match class {
            FaultClass::Untestable => {}
            FaultClass::Fallback => {
                fallback_idx.push(f);
                fallback_faults.push(faults[f]);
            }
            FaultClass::Exact(translated) => {
                exact_idx.push(f);
                exact_faults.push(*translated);
            }
        }
    }

    let mut detecting_test: Vec<Option<usize>> = vec![None; faults.len()];
    if !exact_faults.is_empty() {
        let report = scanft_sim::campaign::run_ordered_observing(
            &opt.netlist,
            tests,
            order,
            &exact_faults,
            observe_scan_out,
        );
        for (&f, verdict) in exact_idx.iter().zip(report.detecting_test) {
            detecting_test[f] = verdict;
        }
    }
    if !fallback_faults.is_empty() {
        let report = scanft_sim::campaign::run_ordered_observing(
            original,
            tests,
            order,
            &fallback_faults,
            observe_scan_out,
        );
        for (&f, verdict) in fallback_idx.iter().zip(report.detecting_test) {
            detecting_test[f] = verdict;
        }
    }

    let mut new_detections = vec![0usize; order.len()];
    for d in detecting_test.iter().flatten() {
        new_detections[*d] += 1;
    }
    CampaignReport {
        detecting_test,
        order: order.to_vec(),
        new_detections,
    }
}

/// One 64-fault batch against the ordered test list with fault dropping on
/// the narrow kernel (the detecting-test position per lane).
#[allow(clippy::too_many_arguments)]
fn sim_unit(
    engine: &mut FaultEngine<'_>,
    netlist: &Netlist,
    tests: &[ScanTest],
    order: &[usize],
    responses: &[Option<ScanResponse>],
    batch: &[Fault],
    observe_scan_out: bool,
) -> Vec<Option<usize>> {
    let mut local: Vec<Option<usize>> = vec![None; batch.len()];
    if batch.is_empty() {
        return local;
    }
    let plan = InjectionPlan::new(netlist, batch);
    let mut detected: u64 = 0;
    let all = plan.lane_mask();
    for (pos, &t) in order.iter().enumerate() {
        let response = responses[t].as_ref().expect("response precomputed");
        let newly =
            engine.run_test_observing(&tests[t], response, &plan, detected, observe_scan_out);
        let mut lanes = newly;
        while lanes != 0 {
            let lane = lanes.trailing_zeros() as usize;
            local[lane] = Some(pos);
            lanes &= lanes - 1;
        }
        detected |= newly;
        if detected == all {
            break;
        }
    }
    local
}

/// Supervised campaign over an optimized netlist, reporting and journaling
/// in the original fault universe (see the module docs for the contract).
///
/// # Errors
///
/// Returns [`ScanftError::Journal`] when the resume journal does not match
/// this campaign or a journal write fails.
///
/// # Panics
///
/// Panics if `config.num_threads == 0` or `order` references a test out of
/// range.
#[allow(clippy::too_many_arguments)]
pub fn run_supervised_optimized(
    original: &Netlist,
    opt: &Optimized,
    tests: &[ScanTest],
    order: &[usize],
    faults: &[Fault],
    config: &SupervisedConfig,
    journal: Option<&JournalWriter>,
    resume_from: Option<&Journal>,
    chaos: Option<&FailurePlan>,
) -> Result<PartialReport, ScanftError> {
    assert!(config.num_threads > 0, "num_threads must be positive");
    let obs = scanft_obs::global();
    let _span = obs.timer("opt.campaign.supervised").start();
    obs.counter("sim.campaign.faults").add(faults.len() as u64);

    let fault_plan = FaultPlan::new(original, opt, faults);
    let batches: Vec<&[Fault]> = faults.chunks(64).collect();
    let num_units = batches.len();
    // Same header as the unoptimized runner: journals stay cross-resumable.
    let header = JournalHeader {
        label: config.label.clone(),
        faults: faults.len(),
        units: num_units,
        order: order.len(),
        lanes_per_unit: 64,
    };

    let mut prior: Vec<Option<&JournalRecord>> = vec![None; num_units];
    if let Some(journal) = resume_from {
        journal.validate(&header)?;
        for record in &journal.records {
            if record.unit < num_units && record.lanes.len() == batches[record.unit].len() {
                prior[record.unit] = Some(record);
            }
        }
    }
    let resumed_units: Vec<usize> = (0..num_units).filter(|&u| prior[u].is_some()).collect();
    obs.counter("sim.campaign.units_resumed")
        .add(resumed_units.len() as u64);

    if let (Some(writer), None) = (journal, resume_from) {
        writer
            .write_header(&header)
            .map_err(|e| ScanftError::Journal {
                message: format!("writing journal header: {e}"),
            })?;
    }

    // A unit simulates on the original netlist iff it contains any
    // fallback fault; otherwise its exact faults run on the reduced one.
    let unit_falls_back = |unit: usize| -> bool {
        (unit * 64..(unit * 64 + batches[unit].len()))
            .any(|f| matches!(fault_plan.classes[f], FaultClass::Fallback))
    };
    let pending: Vec<usize> = (0..num_units).filter(|&u| prior[u].is_none()).collect();
    let needs_original = pending.iter().any(|&u| unit_falls_back(u));
    let needs_reduced = pending.iter().any(|&u| !unit_falls_back(u));
    let mut original_responses: Vec<Option<ScanResponse>> = vec![None; tests.len()];
    let mut reduced_responses: Vec<Option<ScanResponse>> = vec![None; tests.len()];
    for &t in order {
        if needs_original && original_responses[t].is_none() {
            original_responses[t] = Some(logic::simulate(original, &tests[t]));
        }
        if needs_reduced && reduced_responses[t].is_none() {
            reduced_responses[t] = Some(logic::simulate(&opt.netlist, &tests[t]));
        }
    }

    let batches_run = obs.counter("sim.campaign.batches");
    let gate_evals = obs.counter("sim.kernel.gate_evals");
    let journal_error: scanft_race::sync::Mutex<Option<String>> =
        scanft_race::sync::Mutex::new(None);
    let append_record = |unit: usize, lanes: &[Option<usize>]| {
        if let Some(writer) = journal {
            let record = JournalRecord {
                unit,
                lanes: lanes.iter().map(|d| d.map(|p| p as u64)).collect(),
            };
            if let Err(e) = writer.append(&record) {
                journal_error.lock().get_or_insert_with(|| e.to_string());
            }
        }
    };

    let outcome = run_units(
        &pending,
        config.num_threads,
        &config.budget,
        chaos,
        || (FaultEngine::new(original), FaultEngine::new(&opt.netlist)),
        |(original_engine, reduced_engine), unit| {
            batches_run.inc();
            let batch = batches[unit];
            let local = if unit_falls_back(unit) {
                let local = sim_unit(
                    original_engine,
                    original,
                    tests,
                    order,
                    &original_responses,
                    batch,
                    config.observe_scan_out,
                );
                gate_evals.add(original_engine.take_gate_evals());
                local
            } else {
                let mut lanes = Vec::new();
                let mut translated = Vec::new();
                for (lane, f) in (unit * 64..unit * 64 + batch.len()).enumerate() {
                    if let FaultClass::Exact(fault) = fault_plan.classes[f] {
                        lanes.push(lane);
                        translated.push(fault);
                    }
                }
                let verdicts = sim_unit(
                    reduced_engine,
                    &opt.netlist,
                    tests,
                    order,
                    &reduced_responses,
                    &translated,
                    config.observe_scan_out,
                );
                gate_evals.add(reduced_engine.take_gate_evals());
                let mut local: Vec<Option<usize>> = vec![None; batch.len()];
                for (&lane, verdict) in lanes.iter().zip(verdicts) {
                    local[lane] = verdict;
                }
                local
            };
            append_record(unit, &local);
            local
        },
    );
    if let Some(message) = journal_error.into_inner() {
        return Err(ScanftError::Journal {
            message: format!("writing journal record: {message}"),
        });
    }

    let mut detecting_test: Vec<Option<usize>> = vec![None; faults.len()];
    for (unit, record) in prior.iter().enumerate() {
        if let Some(record) = record {
            for (lane, &pos) in record.lanes.iter().enumerate() {
                detecting_test[unit * 64 + lane] = pos.map(|p| p as usize);
            }
        }
    }
    let mut completed_units = resumed_units.clone();
    for (unit, local) in &outcome.completed {
        completed_units.push(*unit);
        for (lane, &verdict) in local.iter().enumerate() {
            detecting_test[unit * 64 + lane] = verdict;
        }
    }
    completed_units.sort_unstable();

    let mut new_detections = vec![0usize; order.len()];
    for d in detecting_test.iter().flatten() {
        new_detections[*d] += 1;
    }
    Ok(PartialReport {
        report: CampaignReport {
            detecting_test,
            order: order.to_vec(),
            new_detections,
        },
        completed_units,
        resumed_units,
        quarantined: outcome.quarantined,
        remaining_units: outcome.remaining,
        stopped: outcome.stopped,
        num_units,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanft_sim::campaign;
    use scanft_sim::faults;
    use scanft_synth::{synthesize, SynthConfig};

    fn lion_campaign() -> (
        scanft_synth::SynthesizedCircuit,
        Vec<ScanTest>,
        Vec<usize>,
        Vec<Fault>,
    ) {
        let fsm = scanft_fsm::benchmarks::lion();
        let c = synthesize(&fsm, &SynthConfig::default());
        let tests: Vec<ScanTest> = fsm
            .transitions()
            .map(|t| ScanTest::new(c.encode_state(t.from), vec![t.input]))
            .collect();
        let order = campaign::decreasing_length_order(&tests);
        let list = faults::as_fault_list(&faults::enumerate_stuck(c.netlist()));
        (c, tests, order, list)
    }

    #[test]
    fn optimized_run_matches_original_bit_for_bit() {
        let (c, tests, order, list) = lion_campaign();
        let opt = crate::optimize(c.netlist());
        for observe in [true, false] {
            let baseline =
                campaign::run_ordered_observing(c.netlist(), &tests, &order, &list, observe);
            let optimized = run_optimized(c.netlist(), &opt, &tests, &order, &list, observe);
            assert_eq!(
                optimized.detecting_test, baseline.detecting_test,
                "{observe}"
            );
            assert_eq!(optimized.new_detections, baseline.new_detections);
            assert_eq!(optimized.order, baseline.order);
        }
    }

    #[test]
    fn supervised_optimized_journal_is_byte_identical() {
        let (c, tests, order, list) = lion_campaign();
        let opt = crate::optimize(c.netlist());
        let config = SupervisedConfig {
            num_threads: 2,
            ..SupervisedConfig::default()
        };
        let (writer_a, buffer_a) = JournalWriter::in_memory();
        let baseline = campaign::run_supervised(
            c.netlist(),
            &tests,
            &order,
            &list,
            &config,
            Some(&writer_a),
            None,
            None,
        )
        .expect("baseline journal");
        let (writer_b, buffer_b) = JournalWriter::in_memory();
        let optimized = run_supervised_optimized(
            c.netlist(),
            &opt,
            &tests,
            &order,
            &list,
            &config,
            Some(&writer_b),
            None,
            None,
        )
        .expect("optimized journal");
        assert!(optimized.is_complete());
        assert_eq!(optimized.report, baseline.report);
        assert_eq!(optimized.completed_units, baseline.completed_units);
        // Journals are byte-identical, so either run can resume the other.
        let bytes_a = scanft_harness::buffer_contents(&buffer_a);
        let bytes_b = scanft_harness::buffer_contents(&buffer_b);
        let mut lines_a: Vec<&str> = bytes_a.lines().collect();
        let mut lines_b: Vec<&str> = bytes_b.lines().collect();
        // Units may complete in any thread order; compare as sets after the
        // shared header line.
        assert_eq!(lines_a.remove(0), lines_b.remove(0));
        lines_a.sort_unstable();
        lines_b.sort_unstable();
        assert_eq!(lines_a, lines_b);
    }

    #[test]
    fn optimized_resumes_an_unoptimized_checkpoint() {
        let (c, tests, order, list) = lion_campaign();
        let opt = crate::optimize(c.netlist());
        let uninterrupted = campaign::run_ordered(c.netlist(), &tests, &order, &list);
        let partial_config = SupervisedConfig {
            budget: scanft_harness::Budget::unlimited().with_max_units(1),
            ..SupervisedConfig::default()
        };
        let (writer, buffer) = JournalWriter::in_memory();
        let first = campaign::run_supervised(
            c.netlist(),
            &tests,
            &order,
            &list,
            &partial_config,
            Some(&writer),
            None,
            None,
        )
        .expect("partial journal");
        assert_eq!(first.completed_units.len(), 1);
        let journal = scanft_harness::read_journal(&scanft_harness::buffer_contents(&buffer));
        let resumed = run_supervised_optimized(
            c.netlist(),
            &opt,
            &tests,
            &order,
            &list,
            &SupervisedConfig::default(),
            None,
            Some(&journal),
            None,
        )
        .expect("resume");
        assert!(resumed.is_complete());
        assert_eq!(resumed.resumed_units, first.completed_units);
        assert_eq!(resumed.into_complete().expect("complete"), uninterrupted);
    }
}
