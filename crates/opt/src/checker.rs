//! Independent certificate checker.
//!
//! This module validates a JSONL proof log ([`crate::certificate`]) against
//! the original and reduced netlists **without sharing any code with the
//! optimizer**: it has its own JSON parser, its own gate semantics (truth
//! tables by exhaustive completion, not the optimizer's propagation rules),
//! and its own replay of the rewrite steps. The trusted base is therefore
//! this file plus the netlist data structure — a bug anywhere in the
//! implication engine, the prover, or the rewriter surfaces as a rejected
//! certificate.
//!
//! What is checked, layer by layer:
//!
//! - **Shape** — the leading `begin` step must match the original netlist's
//!   interface.
//! - **Facts** — every `const`/`lemma` trace is replayed entry by entry: a
//!   `seed` entry must match the claimed assumption; a `const` citation
//!   must name an already-verified constant; a `gate` entry is accepted
//!   only if the assignment is *forced* — in every completion of the
//!   gate's unassigned terminals consistent with the gate function, the
//!   entry's net takes the entry's value (zero consistent completions is
//!   the vacuous case and also accepted, since the standing premises are
//!   already contradictory); `lemma`/`contra` citations must apply an
//!   earlier lemma directly or contrapositively. A `const` trace must end
//!   in a contradiction of its seeded complement; a `lemma` trace must
//!   derive its right-hand literal (or a contradiction, from which
//!   anything follows).
//! - **Rewrites** — substitutions must always point at a strictly smaller
//!   gate-output net, `equiv` must cite the exact lemma pair `drop=1 ⇒
//!   keep=1` and `keep=1 ⇒ drop=1` (which by contraposition gives full
//!   equivalence), `const_subst` needs equal verified constants on both
//!   nets, `drop_pin` needs a verified identity constant on the resolved
//!   pin source, `merge` needs equal kinds and equal resolved input
//!   multisets, and `dead` is re-justified by recounting the resolved
//!   consumers of the gate's output.
//! - **Rebuild** — the survivors are rebuilt into a netlist and compared
//!   structurally (`==`) against the optimizer's reduced netlist, so the
//!   certificate cannot under-describe the transformation.

use std::collections::HashMap;

use scanft_netlist::{GateKind, NetId, Netlist, NetlistBuilder};

/// Totals from a successful validation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Total steps validated (including `begin`).
    pub steps: usize,
    /// Verified `const` facts.
    pub consts: usize,
    /// Verified `lemma` facts.
    pub lemmas: usize,
    /// Verified substitution/pin rewrites (`const_subst`, `equiv`, `merge`,
    /// `drop_pin`).
    pub rewrites: usize,
    /// Verified `dead` removals.
    pub dead: usize,
}

/// A rejected certificate: the offending line and what rule it broke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// 1-based line number in the JSONL log (0 for end-of-log failures).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "certificate line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CheckError {}

fn fail<T>(line: usize, message: impl Into<String>) -> Result<T, CheckError> {
    Err(CheckError {
        line,
        message: message.into(),
    })
}

// ---------------------------------------------------------------------------
// Minimal JSON value parser (this module's own; no shared code).
// ---------------------------------------------------------------------------

/// The subset of JSON the certificate format uses.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Num(u64),
    Bool(bool),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), String> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                char::from(want),
                self.pos
            ))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'0'..=b'9') => self.parse_number(),
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad keyword at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let start = self.pos;
        loop {
            match self.peek() {
                Some(b'"') => break,
                Some(b'\\') => return Err("escapes are not part of the format".to_owned()),
                Some(_) => self.pos += 1,
                None => return Err("unterminated string".to_owned()),
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf-8 in string".to_owned())?
            .to_owned();
        self.pos += 1;
        Ok(text)
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn parse_line(line: &str) -> Result<Json, String> {
    let mut parser = Parser::new(line);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != line.len() {
        return Err(format!("trailing bytes at {}", parser.pos));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Field extraction helpers.
// ---------------------------------------------------------------------------

fn field_u64(step: &Json, key: &str, line: usize) -> Result<u64, CheckError> {
    step.get(key)
        .and_then(Json::as_u64)
        .ok_or(())
        .or_else(|()| fail(line, format!("missing numeric field '{key}'")))
}

fn field_bool(step: &Json, key: &str, line: usize) -> Result<bool, CheckError> {
    step.get(key)
        .and_then(Json::as_bool)
        .ok_or(())
        .or_else(|()| fail(line, format!("missing boolean field '{key}'")))
}

fn field_net(step: &Json, key: &str, num_nets: usize, line: usize) -> Result<NetId, CheckError> {
    let raw = field_u64(step, key, line)?;
    if raw >= num_nets as u64 {
        return fail(line, format!("'{key}' = {raw} out of range"));
    }
    Ok(raw as NetId)
}

// ---------------------------------------------------------------------------
// Trace verification.
// ---------------------------------------------------------------------------

/// A parsed trace-entry justification.
enum By {
    Seed,
    Const(NetId),
    Gate(usize),
    Lemma(usize),
    Contra(usize),
}

fn parse_by(value: &Json, line: usize) -> Result<By, CheckError> {
    if value.as_str() == Some("seed") {
        return Ok(By::Seed);
    }
    if let Some(net) = value.get("const").and_then(Json::as_u64) {
        return Ok(By::Const(net as NetId));
    }
    if let Some(g) = value.get("gate").and_then(Json::as_u64) {
        return Ok(By::Gate(g as usize));
    }
    if let Some(k) = value.get("lemma").and_then(Json::as_u64) {
        return Ok(By::Lemma(k as usize));
    }
    if let Some(k) = value.get("contra").and_then(Json::as_u64) {
        return Ok(By::Contra(k as usize));
    }
    fail(line, "unrecognized 'by' justification")
}

/// Independent gate evaluation — a truth table, not propagation rules.
fn eval_gate(kind: GateKind, inputs: &[bool]) -> bool {
    match kind {
        GateKind::Not => !inputs[0],
        GateKind::Buf => inputs[0],
        GateKind::And => inputs.iter().all(|&b| b),
        GateKind::Or => inputs.iter().any(|&b| b),
        GateKind::Nand => !inputs.iter().all(|&b| b),
        GateKind::Nor => !inputs.iter().any(|&b| b),
        GateKind::Xor => inputs.iter().fold(false, |p, &b| p ^ b),
    }
}

/// Largest number of free gate terminals the forced-assignment check will
/// enumerate (2^16 completions); certificates citing wider gates with that
/// many unknowns are rejected rather than trusted.
const MAX_FREE_TERMINALS: usize = 16;

/// Accepts `target = value` as forced by gate `g`: in every completion of
/// the gate's currently-unassigned terminals (with `target` treated as
/// free) that satisfies the gate function, `target` must read `value`.
fn gate_forces(
    netlist: &Netlist,
    g: usize,
    assignment: &HashMap<NetId, bool>,
    target: NetId,
    value: bool,
    line: usize,
) -> Result<(), CheckError> {
    let gate = &netlist.gates()[g];
    let out = netlist.gate_output(g);
    let mut terminals: Vec<NetId> = gate.inputs.clone();
    terminals.push(out);
    if !terminals.contains(&target) {
        return fail(line, format!("net {target} is not a terminal of gate {g}"));
    }
    let mut free: Vec<NetId> = Vec::new();
    for &t in &terminals {
        if (t == target || !assignment.contains_key(&t)) && !free.contains(&t) {
            free.push(t);
        }
    }
    if free.len() > MAX_FREE_TERMINALS {
        return fail(line, format!("gate {g} has too many free terminals"));
    }
    for completion in 0u32..(1u32 << free.len()) {
        let lookup = |net: NetId| -> bool {
            match free.iter().position(|&f| f == net) {
                Some(i) => completion >> i & 1 == 1,
                None => *assignment.get(&net).expect("terminal assigned or free"),
            }
        };
        let inputs: Vec<bool> = gate.inputs.iter().map(|&i| lookup(i)).collect();
        if eval_gate(gate.kind, &inputs) == lookup(out) && lookup(target) != value {
            return fail(
                line,
                format!("gate {g} does not force net {target} to {value}"),
            );
        }
    }
    Ok(())
}

/// Replays one trace, returning whether it ended in a contradiction plus
/// the final assignment.
fn verify_trace(
    netlist: &Netlist,
    consts: &[Option<bool>],
    lemmas: &[(NetId, bool, NetId, bool)],
    trace: &[Json],
    seed: (NetId, bool),
    line: usize,
) -> Result<(HashMap<NetId, bool>, bool), CheckError> {
    let mut assignment: HashMap<NetId, bool> = HashMap::new();
    let mut conflicted = false;
    let mut seeds = 0usize;
    for entry in trace {
        if conflicted {
            return fail(line, "trace continues past its contradiction");
        }
        let net = field_net(entry, "net", netlist.num_nets(), line)?;
        let value = field_bool(entry, "value", line)?;
        let by = entry
            .get("by")
            .ok_or(())
            .or_else(|()| fail(line, "trace entry missing 'by'"))?;
        match parse_by(by, line)? {
            By::Seed => {
                seeds += 1;
                if seeds > 1 {
                    return fail(line, "trace seeds more than once");
                }
                if (net, value) != seed {
                    return fail(line, "seed entry does not match the claimed assumption");
                }
            }
            By::Const(cited) => {
                if cited != net {
                    return fail(line, "constant citation names a different net");
                }
                if consts[net as usize] != Some(value) {
                    return fail(line, format!("net {net} has no verified constant {value}"));
                }
            }
            By::Gate(g) => {
                if g >= netlist.num_gates() {
                    return fail(line, format!("gate {g} out of range"));
                }
                gate_forces(netlist, g, &assignment, net, value, line)?;
            }
            By::Lemma(k) => {
                let &(a, av, b, bv) = lemmas
                    .get(k)
                    .ok_or(())
                    .or_else(|()| fail(line, format!("lemma {k} not yet proven")))?;
                if (net, value) != (b, bv) || assignment.get(&a) != Some(&av) {
                    return fail(line, format!("lemma {k} does not apply"));
                }
            }
            By::Contra(k) => {
                let &(a, av, b, bv) = lemmas
                    .get(k)
                    .ok_or(())
                    .or_else(|()| fail(line, format!("lemma {k} not yet proven")))?;
                if (net, value) != (a, !av) || assignment.get(&b) != Some(&(!bv)) {
                    return fail(line, format!("lemma {k} does not apply contrapositively"));
                }
            }
        }
        match assignment.get(&net) {
            None => {
                assignment.insert(net, value);
            }
            Some(&standing) if standing != value => conflicted = true,
            Some(_) => return fail(line, format!("net {net} assigned twice to the same value")),
        }
    }
    Ok((assignment, conflicted))
}

// ---------------------------------------------------------------------------
// Rewrite replay.
// ---------------------------------------------------------------------------

/// The identity constant a `drop_pin` step may cite, per gate kind.
fn droppable_value(kind: GateKind) -> Option<bool> {
    match kind {
        GateKind::And | GateKind::Nand => Some(true),
        GateKind::Or | GateKind::Nor | GateKind::Xor => Some(false),
        GateKind::Not | GateKind::Buf => None,
    }
}

/// Validates `certificate` as a proof that `reduced` is a sound
/// simplification of `original`.
///
/// # Errors
///
/// Returns the first [`CheckError`] — an unjustified fact, an unjustified
/// rewrite, a malformed line, or a final rebuild mismatch.
pub fn check(
    original: &Netlist,
    reduced: &Netlist,
    certificate: &str,
) -> Result<CheckReport, CheckError> {
    let num_nets = original.num_nets();
    let num_gates = original.num_gates();
    let io = (original.num_pis() + original.num_ppis()) as NetId;
    let mut report = CheckReport::default();
    let mut consts: Vec<Option<bool>> = vec![None; num_nets];
    let mut lemmas: Vec<(NetId, bool, NetId, bool)> = Vec::new();
    let mut subst: Vec<NetId> = (0..num_nets as NetId).collect();
    let resolve = |subst: &[NetId], mut net: NetId| -> NetId {
        while subst[net as usize] != net {
            net = subst[net as usize];
        }
        net
    };
    let mut alive = vec![true; num_gates];
    let mut inputs: Vec<Vec<NetId>> = original.gates().iter().map(|g| g.inputs.clone()).collect();

    for (index, text) in certificate.lines().enumerate() {
        let line = index + 1;
        let step = match parse_line(text) {
            Ok(step) => step,
            Err(message) => return fail(line, message),
        };
        let kind = step
            .get("step")
            .and_then(Json::as_str)
            .ok_or(())
            .or_else(|()| fail(line, "missing 'step' discriminator"))?;
        if (line == 1) != (kind == "begin") {
            return fail(line, "'begin' must be exactly the first step");
        }
        report.steps += 1;
        match kind {
            "begin" => {
                if field_u64(&step, "num_pis", line)? != original.num_pis() as u64
                    || field_u64(&step, "num_ppis", line)? != original.num_ppis() as u64
                    || field_u64(&step, "num_gates", line)? != num_gates as u64
                {
                    return fail(line, "certificate is for a different netlist shape");
                }
            }
            "const" => {
                let net = field_net(&step, "net", num_nets, line)?;
                let value = field_bool(&step, "value", line)?;
                let trace = step
                    .get("trace")
                    .and_then(Json::as_arr)
                    .ok_or(())
                    .or_else(|()| fail(line, "missing 'trace'"))?;
                let (_, conflicted) =
                    verify_trace(original, &consts, &lemmas, trace, (net, !value), line)?;
                if !conflicted {
                    return fail(line, "constant trace does not reach a contradiction");
                }
                consts[net as usize] = Some(value);
                report.consts += 1;
            }
            "lemma" => {
                let id = field_u64(&step, "id", line)?;
                if id != lemmas.len() as u64 {
                    return fail(line, format!("lemma id {id} out of order"));
                }
                let net = field_net(&step, "net", num_nets, line)?;
                let value = field_bool(&step, "value", line)?;
                let to_net = field_net(&step, "to_net", num_nets, line)?;
                let to_value = field_bool(&step, "to_value", line)?;
                let trace = step
                    .get("trace")
                    .and_then(Json::as_arr)
                    .ok_or(())
                    .or_else(|()| fail(line, "missing 'trace'"))?;
                let (assignment, conflicted) =
                    verify_trace(original, &consts, &lemmas, trace, (net, value), line)?;
                if !conflicted && assignment.get(&to_net) != Some(&to_value) {
                    return fail(line, "lemma trace does not derive its conclusion");
                }
                lemmas.push((net, value, to_net, to_value));
                report.lemmas += 1;
            }
            "const_subst" => {
                let keep = field_net(&step, "keep", num_nets, line)?;
                let drop = field_net(&step, "drop", num_nets, line)?;
                let value = field_bool(&step, "value", line)?;
                if keep >= drop {
                    return fail(line, "substitution must point at a smaller net");
                }
                if drop < io {
                    return fail(line, "only gate outputs may be substituted");
                }
                if subst[drop as usize] != drop {
                    return fail(line, format!("net {drop} already substituted"));
                }
                if consts[keep as usize] != Some(value) || consts[drop as usize] != Some(value) {
                    return fail(line, "both nets need the same verified constant");
                }
                subst[drop as usize] = keep;
                report.rewrites += 1;
            }
            "equiv" => {
                let keep = field_net(&step, "keep", num_nets, line)?;
                let drop = field_net(&step, "drop", num_nets, line)?;
                let fwd = field_u64(&step, "fwd", line)? as usize;
                let bwd = field_u64(&step, "bwd", line)? as usize;
                if keep >= drop {
                    return fail(line, "substitution must point at a smaller net");
                }
                if drop < io {
                    return fail(line, "only gate outputs may be substituted");
                }
                if subst[drop as usize] != drop {
                    return fail(line, format!("net {drop} already substituted"));
                }
                // (drop=1 ⇒ keep=1) ∧ (keep=1 ⇒ drop=1) gives equality on
                // both values by contraposition.
                if lemmas.get(fwd) != Some(&(drop, true, keep, true)) {
                    return fail(line, "'fwd' lemma is not drop=1 ⇒ keep=1");
                }
                if lemmas.get(bwd) != Some(&(keep, true, drop, true)) {
                    return fail(line, "'bwd' lemma is not keep=1 ⇒ drop=1");
                }
                subst[drop as usize] = keep;
                report.rewrites += 1;
            }
            "merge" => {
                let keep = field_u64(&step, "keep", line)? as usize;
                let drop = field_u64(&step, "drop", line)? as usize;
                if keep >= drop || drop >= num_gates {
                    return fail(line, "merge must keep the earlier of two distinct gates");
                }
                if !alive[keep] || !alive[drop] {
                    return fail(line, "merge references a removed gate");
                }
                let keep_out = original.gate_output(keep);
                let drop_out = original.gate_output(drop);
                if subst[keep_out as usize] != keep_out {
                    return fail(line, "merge target's output is already substituted");
                }
                if subst[drop_out as usize] != drop_out {
                    return fail(line, format!("net {drop_out} already substituted"));
                }
                let kind_keep = original.gates()[keep].kind;
                if kind_keep != original.gates()[drop].kind {
                    return fail(line, "merged gates differ in kind");
                }
                let mut keep_inputs: Vec<NetId> =
                    inputs[keep].iter().map(|&i| resolve(&subst, i)).collect();
                let mut drop_inputs: Vec<NetId> =
                    inputs[drop].iter().map(|&i| resolve(&subst, i)).collect();
                if !kind_keep.is_unary() {
                    keep_inputs.sort_unstable();
                    drop_inputs.sort_unstable();
                }
                if keep_inputs != drop_inputs {
                    return fail(line, "merged gates read different resolved inputs");
                }
                subst[drop_out as usize] = keep_out;
                report.rewrites += 1;
            }
            "drop_pin" => {
                let g = field_u64(&step, "gate", line)? as usize;
                let pin = field_u64(&step, "pin", line)? as usize;
                let net = field_net(&step, "net", num_nets, line)?;
                let value = field_bool(&step, "value", line)?;
                if g >= num_gates || !alive[g] {
                    return fail(line, "drop_pin references a removed or invalid gate");
                }
                let out = original.gate_output(g);
                if subst[out as usize] != out {
                    return fail(line, "drop_pin on a substituted gate");
                }
                if droppable_value(original.gates()[g].kind) != Some(value) {
                    return fail(line, "dropped value is not the gate's identity constant");
                }
                if inputs[g].len() <= 1 || pin >= inputs[g].len() {
                    return fail(line, "pin index invalid or last pin dropped");
                }
                if resolve(&subst, inputs[g][pin]) != net {
                    return fail(line, "cited net is not the pin's resolved source");
                }
                if consts[net as usize] != Some(value) {
                    return fail(line, format!("net {net} has no verified constant {value}"));
                }
                inputs[g].remove(pin);
                report.rewrites += 1;
            }
            "dead" => {
                let g = field_u64(&step, "gate", line)? as usize;
                if g >= num_gates || !alive[g] {
                    return fail(line, "dead references a removed or invalid gate");
                }
                let out = original.gate_output(g);
                let consumed = (0..num_gates)
                    .filter(|&h| alive[h] && h != g)
                    .flat_map(|h| inputs[h].iter())
                    .chain(original.pos())
                    .chain(original.ppos())
                    .any(|&i| resolve(&subst, i) == out);
                if consumed {
                    return fail(line, format!("gate {g}'s output still has consumers"));
                }
                alive[g] = false;
                report.dead += 1;
            }
            other => return fail(line, format!("unknown step '{other}'")),
        }
    }
    if report.steps == 0 {
        return fail(0, "empty certificate");
    }

    // Rebuild the survivors and compare against the claimed reduced netlist.
    let mut builder = NetlistBuilder::new(original.num_pis(), original.num_ppis());
    let mut new_net: Vec<Option<NetId>> = (0..num_nets as NetId)
        .map(|net| (net < io).then_some(net))
        .collect();
    for g in 0..num_gates {
        if !alive[g] {
            continue;
        }
        let mut gate_inputs = Vec::with_capacity(inputs[g].len());
        for &i in &inputs[g] {
            match new_net[resolve(&subst, i) as usize] {
                Some(n) => gate_inputs.push(n),
                None => return fail(0, format!("input of surviving gate {g} did not survive")),
            }
        }
        let out = match builder.add_gate(original.gates()[g].kind, &gate_inputs) {
            Ok(out) => out,
            Err(e) => return fail(0, format!("rebuilding gate {g}: {e}")),
        };
        new_net[original.gate_output(g) as usize] = Some(out);
    }
    let mut observed = Vec::new();
    for (label, nets) in [
        ("primary output", original.pos()),
        ("next-state line", original.ppos()),
    ] {
        let mut mapped = Vec::with_capacity(nets.len());
        for &net in nets {
            match new_net[resolve(&subst, net) as usize] {
                Some(n) => mapped.push(n),
                None => return fail(0, format!("{label} net {net} did not survive")),
            }
        }
        observed.push(mapped);
    }
    let ppos = observed.pop().unwrap_or_default();
    let pos = observed.pop().unwrap_or_default();
    let rebuilt = match builder.finish(pos, ppos) {
        Ok(netlist) => netlist,
        Err(e) => return fail(0, format!("rebuilding netlist: {e}")),
    };
    if rebuilt != *reduced {
        return fail(0, "rebuilt netlist differs from the claimed reduction");
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanft_netlist::NetlistBuilder as NB;

    fn opt_pair(n: &Netlist) -> crate::Optimized {
        crate::optimize(n)
    }

    fn redundant_netlist() -> Netlist {
        // Constant cone, duplicate gate, and double inversion all at once.
        let mut b = NB::new(2, 1);
        let nx = b.add_gate(GateKind::Not, &[0]).unwrap();
        let c = b.add_gate(GateKind::And, &[0, nx]).unwrap();
        let a1 = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let a2 = b.add_gate(GateKind::And, &[1, 0]).unwrap();
        let z = b.add_gate(GateKind::Or, &[c, a1, a2]).unwrap();
        let nz = b.add_gate(GateKind::Not, &[z]).unwrap();
        let y = b.add_gate(GateKind::Not, &[nz]).unwrap();
        let s = b.add_gate(GateKind::Xor, &[y, 2]).unwrap();
        b.finish(vec![y], vec![s]).unwrap()
    }

    #[test]
    fn accepts_a_real_certificate() {
        let n = redundant_netlist();
        let opt = opt_pair(&n);
        assert!(
            opt.stats.gates_removed > 0,
            "fixture must exercise rewrites"
        );
        let report = check(&n, &opt.netlist, &opt.certificate).expect("valid certificate");
        assert_eq!(report.steps, opt.stats.certificate_steps);
        assert_eq!(report.lemmas as u32, opt.stats.certificate_lemmas);
        assert_eq!(report.dead, opt.stats.gates_removed);
    }

    #[test]
    fn rejects_wrong_netlist_shape() {
        let n = redundant_netlist();
        let opt = opt_pair(&n);
        let mut b = NB::new(3, 0);
        let g = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let other = b.finish(vec![g], vec![]).unwrap();
        let err = check(&other, &opt.netlist, &opt.certificate).expect_err("shape mismatch");
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_tampered_rewrites() {
        let n = redundant_netlist();
        let opt = opt_pair(&n);
        // Flip a claimed constant value: the trace no longer justifies it.
        if opt.certificate.contains("\"step\":\"const\",") {
            let tampered = opt.certificate.replacen(
                "\"step\":\"const\",\"net\":",
                "\"step\":\"const\",\"net\":9",
                1,
            );
            assert!(check(&n, &opt.netlist, &tampered).is_err());
        }
        // Drop a dead step: the rebuild no longer matches.
        let without_dead: String = opt
            .certificate
            .lines()
            .filter(|l| !l.contains("\"step\":\"dead\""))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(check(&n, &opt.netlist, &without_dead).is_err());
        // Forge an extra substitution without a lemma.
        let forged = format!(
            "{}{{\"step\":\"equiv\",\"keep\":0,\"drop\":{},\"fwd\":0,\"bwd\":0}}\n",
            opt.certificate,
            n.num_nets() - 1
        );
        assert!(check(&n, &opt.netlist, &forged).is_err());
        // An empty certificate proves nothing.
        assert!(check(&n, &opt.netlist, "").is_err());
    }

    #[test]
    fn rejects_unjustified_dead_step() {
        let mut b = NB::new(2, 0);
        let g = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let n = b.finish(vec![g], vec![]).unwrap();
        let opt = opt_pair(&n);
        // Claim the PO driver is dead: its output is still consumed.
        let forged = format!("{}{{\"step\":\"dead\",\"gate\":0}}\n", opt.certificate);
        let err = check(&n, &opt.netlist, &forged).expect_err("PO driver is consumed");
        assert!(err.message.contains("consumers"), "{err}");
    }

    #[test]
    fn identity_certificate_round_trips() {
        // No redundancy: the certificate is just `begin`, and the rebuild
        // must still reproduce the netlist exactly.
        let mut b = NB::new(2, 1);
        let g1 = b.add_gate(GateKind::Nand, &[0, 1]).unwrap();
        let g2 = b.add_gate(GateKind::Xor, &[g1, 2]).unwrap();
        let n = b.finish(vec![g2], vec![g1]).unwrap();
        let opt = opt_pair(&n);
        assert_eq!(opt.stats.gates_removed, 0);
        let report = check(&n, &opt.netlist, &opt.certificate).expect("identity");
        assert_eq!(report.rewrites, 0);
    }
}
