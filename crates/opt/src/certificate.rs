//! The machine-checkable certificate: a JSONL proof log.
//!
//! Every line is one JSON object with a `"step"` discriminator. The log has
//! three layers:
//!
//! 1. **Shape** — a leading `begin` step pins the original netlist's
//!    interface (`num_pis`, `num_ppis`, `num_gates`) so a certificate can
//!    never be replayed against the wrong circuit.
//! 2. **Facts** — `const` and `lemma` steps, each carrying a *trace*: a
//!    unit-propagation derivation whose entries are individually
//!    re-checkable from gate semantics alone. A `const` trace seeds the
//!    complement of the claimed value and ends in a contradiction (*ex
//!    falso*); a `lemma` trace seeds the left-hand literal and derives the
//!    right-hand one. Lemmas are numbered in emission order and may cite
//!    earlier lemmas (directly or contrapositively) and earlier constants,
//!    so the log is a valid proof in one forward pass.
//! 3. **Rewrites** — `const_subst`, `equiv`, `merge`, `drop_pin`, and
//!    `dead` steps, each justified by facts proven above it (or, for
//!    `merge` and `dead`, by structure the checker replays itself).
//!
//! The checker ([`crate::checker`]) consumes this format without sharing
//! any code with the emitting side.

use scanft_netlist::NetId;

/// Why a trace entry's assignment is forced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reason {
    /// The seed literal of this trace.
    Seed,
    /// A constant certified earlier in the log (cited by net).
    Const,
    /// Forced by the named gate's consistency rules under the assignments
    /// made so far.
    Gate(u32),
    /// Direct application of lemma `k`: its left-hand literal is assigned,
    /// so its right-hand literal follows.
    Lemma(u32),
    /// Contrapositive application of lemma `k`: the complement of its
    /// right-hand literal is assigned, so the complement of its left-hand
    /// literal follows.
    Contra(u32),
}

/// One assignment of a unit-propagation trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// The net assigned.
    pub net: NetId,
    /// The value assigned.
    pub value: bool,
    /// Why the assignment is forced.
    pub by: Reason,
}

/// Accumulates certificate lines and running totals.
#[derive(Debug, Default)]
pub struct Certificate {
    text: String,
    steps: usize,
    lemmas: u32,
}

fn write_trace(out: &mut String, trace: &[TraceEntry]) {
    out.push_str(",\"trace\":[");
    for (i, e) in trace.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let by = match e.by {
            Reason::Seed => "\"seed\"".to_owned(),
            Reason::Const => format!("{{\"const\":{}}}", e.net),
            Reason::Gate(g) => format!("{{\"gate\":{g}}}"),
            Reason::Lemma(k) => format!("{{\"lemma\":{k}}}"),
            Reason::Contra(k) => format!("{{\"contra\":{k}}}"),
        };
        out.push_str(&format!(
            "{{\"net\":{},\"value\":{},\"by\":{by}}}",
            e.net, e.value
        ));
    }
    out.push_str("]}\n");
}

impl Certificate {
    /// Starts a certificate for a netlist with the given interface shape.
    #[must_use]
    pub fn begin(num_pis: usize, num_ppis: usize, num_gates: usize) -> Self {
        let mut cert = Certificate::default();
        cert.text.push_str(&format!(
            "{{\"step\":\"begin\",\"num_pis\":{num_pis},\"num_ppis\":{num_ppis},\"num_gates\":{num_gates}}}\n"
        ));
        cert.steps += 1;
        cert
    }

    /// Records a proven constant: `net` is `value` in every consistent
    /// assignment, because seeding the complement derives the contradiction
    /// shown in `trace`.
    pub fn const_step(&mut self, net: NetId, value: bool, trace: &[TraceEntry]) {
        self.steps += 1;
        self.text.push_str(&format!(
            "{{\"step\":\"const\",\"net\":{net},\"value\":{value}"
        ));
        write_trace(&mut self.text, trace);
    }

    /// Records a proven implication lemma `(net=value) ⇒ (to_net=to_value)`
    /// and returns its id for later citation.
    pub fn lemma(
        &mut self,
        net: NetId,
        value: bool,
        to_net: NetId,
        to_value: bool,
        trace: &[TraceEntry],
    ) -> u32 {
        let id = self.lemmas;
        self.lemmas += 1;
        self.steps += 1;
        self.text.push_str(&format!(
            "{{\"step\":\"lemma\",\"id\":{id},\"net\":{net},\"value\":{value},\"to_net\":{to_net},\"to_value\":{to_value}"
        ));
        write_trace(&mut self.text, trace);
        id
    }

    /// Records a constant-net substitution: every use of `drop` is replaced
    /// by `keep`; both carry the same certified constant `value`.
    pub fn const_subst(&mut self, keep: NetId, drop: NetId, value: bool) {
        self.steps += 1;
        self.text.push_str(&format!(
            "{{\"step\":\"const_subst\",\"keep\":{keep},\"drop\":{drop},\"value\":{value}}}\n"
        ));
    }

    /// Records an equivalence substitution justified by two lemmas:
    /// `fwd` proves `drop=1 ⇒ keep=1` and `bwd` proves `keep=1 ⇒ drop=1`.
    pub fn equiv(&mut self, keep: NetId, drop: NetId, fwd: u32, bwd: u32) {
        self.steps += 1;
        self.text.push_str(&format!(
            "{{\"step\":\"equiv\",\"keep\":{keep},\"drop\":{drop},\"fwd\":{fwd},\"bwd\":{bwd}}}\n"
        ));
    }

    /// Records a structural-hash merge: gate `drop` has the same kind and
    /// the same resolved input list as the earlier gate `keep`, so its
    /// output net is substituted by `keep`'s output net.
    pub fn merge(&mut self, keep: u32, drop: u32) {
        self.steps += 1;
        self.text.push_str(&format!(
            "{{\"step\":\"merge\",\"keep\":{keep},\"drop\":{drop}}}\n"
        ));
    }

    /// Records removal of input pin `pin` (current position) of gate `gate`:
    /// the pin's resolved source `net` carries the certified constant
    /// `value`, which is non-controlling for the gate's kind.
    pub fn drop_pin(&mut self, gate: u32, pin: u32, net: NetId, value: bool) {
        self.steps += 1;
        self.text.push_str(&format!(
            "{{\"step\":\"drop_pin\",\"gate\":{gate},\"pin\":{pin},\"net\":{net},\"value\":{value}}}\n"
        ));
    }

    /// Records removal of gate `gate`: its output has no remaining
    /// consumers (gate inputs, primary outputs, or next-state lines).
    pub fn dead(&mut self, gate: u32) {
        self.steps += 1;
        self.text
            .push_str(&format!("{{\"step\":\"dead\",\"gate\":{gate}}}\n"));
    }

    /// The certificate as JSONL text.
    #[must_use]
    pub fn as_text(&self) -> &str {
        &self.text
    }

    /// Consumes the certificate, returning the JSONL text.
    #[must_use]
    pub fn into_text(self) -> String {
        self.text
    }

    /// Number of steps recorded (including `begin`).
    #[must_use]
    pub fn num_steps(&self) -> usize {
        self.steps
    }

    /// Number of lemmas recorded.
    #[must_use]
    pub fn num_lemmas(&self) -> u32 {
        self.lemmas
    }

    /// Size of the log in bytes.
    #[must_use]
    pub fn num_bytes(&self) -> usize {
        self.text.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_one_json_object_each() {
        let mut cert = Certificate::begin(2, 1, 3);
        cert.const_step(
            4,
            false,
            &[
                TraceEntry {
                    net: 4,
                    value: true,
                    by: Reason::Seed,
                },
                TraceEntry {
                    net: 0,
                    value: true,
                    by: Reason::Gate(1),
                },
            ],
        );
        let id = cert.lemma(
            3,
            true,
            5,
            false,
            &[TraceEntry {
                net: 3,
                value: true,
                by: Reason::Seed,
            }],
        );
        cert.equiv(3, 5, id, id);
        cert.merge(1, 2);
        cert.drop_pin(0, 1, 4, false);
        cert.dead(2);
        let text = cert.as_text();
        assert_eq!(text.lines().count(), cert.num_steps());
        assert_eq!(cert.num_lemmas(), 1);
        assert_eq!(cert.num_bytes(), text.len());
        for line in text.lines() {
            assert!(line.starts_with("{\"step\":\""), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        assert!(
            text.starts_with("{\"step\":\"begin\",\"num_pis\":2,\"num_ppis\":1,\"num_gates\":3}")
        );
    }
}
