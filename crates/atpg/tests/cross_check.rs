//! Cross-checks of the PODEM engine against independent oracles.
//!
//! Three claims are verified on synthesized benchmark circuits and random
//! machines (seeded SplitMix64, fully offline):
//!
//! 1. every generated test detects its target fault in the fault-parallel
//!    `FaultEngine` (campaign simulation);
//! 2. every redundancy verdict agrees with the exhaustive detectability
//!    analysis (`Undetectable`), and every test agrees with `Detectable`;
//! 3. at a generous budget, no fault of these small circuits is aborted —
//!    the engine fully classifies the stuck-at universe.

#![allow(clippy::unwrap_used)]
use scanft_atpg::{Atpg, AtpgConfig, AtpgOutcome};
use scanft_fsm::rng::SplitMix64;
use scanft_netlist::Netlist;
use scanft_sim::faults::{self, Fault, StuckFault};
use scanft_sim::{campaign, exhaustive};
use scanft_synth::{synthesize, Encoding, SynthConfig};

fn detects(netlist: &Netlist, test: &scanft_sim::ScanTest, fault: &StuckFault) -> bool {
    let report = campaign::run(netlist, std::slice::from_ref(test), &[Fault::Stuck(*fault)]);
    report.detecting_test[0].is_some()
}

/// Classifies every stuck-at fault of `netlist` and cross-checks each
/// verdict against the fault engine and the exhaustive oracle.
fn classify_and_check(netlist: &Netlist, context: &str) {
    let mut atpg = Atpg::new(netlist);
    let config = AtpgConfig::default();
    for fault in faults::enumerate_stuck(netlist) {
        let describe = || format!("{context}: {}", Fault::Stuck(fault).describe(netlist));
        let result = atpg.generate(&fault, &config);
        match result.outcome {
            AtpgOutcome::Test(test) => {
                assert!(detects(netlist, &test, &fault), "{}", describe());
                assert_eq!(
                    exhaustive::is_detectable(netlist, &Fault::Stuck(fault), 1 << 22),
                    exhaustive::Detectability::Detectable,
                    "{}",
                    describe()
                );
            }
            AtpgOutcome::Redundant => {
                assert_eq!(
                    exhaustive::is_detectable(netlist, &Fault::Stuck(fault), 1 << 22),
                    exhaustive::Detectability::Undetectable,
                    "{}",
                    describe()
                );
            }
            AtpgOutcome::Aborted { reason } => {
                panic!("{}: aborted ({reason}) at default budget", describe());
            }
        }
    }
}

/// Full classification agreement on the paper's walkthrough circuit and a
/// few more registry benchmarks, under both state encodings.
#[test]
fn verdicts_match_exhaustive_on_benchmarks() {
    for name in ["lion", "bbtas", "dk27", "mc"] {
        let table = scanft_fsm::benchmarks::build(name).expect("registry circuit");
        for encoding in [Encoding::Binary, Encoding::Gray] {
            let config = SynthConfig {
                encoding,
                ..SynthConfig::default()
            };
            let circuit = synthesize(&table, &config);
            classify_and_check(circuit.netlist(), &format!("{name}/{encoding:?}"));
        }
    }
}

/// Same agreement on random machines — these synthesize to netlists with
/// redundant faults more often than the hand-crafted benchmarks.
#[test]
fn verdicts_match_exhaustive_on_random_machines() {
    let mut rng = SplitMix64::new(0x917_0001);
    for _ in 0..12 {
        let pi = 1 + rng.next_below(2) as usize;
        let states = 2 + rng.next_below(5) as usize;
        let seed = rng.next_u64();
        let table = scanft_fsm::benchmarks::random_machine("atpg", pi, 2, states, seed).unwrap();
        let circuit = synthesize(&table, &SynthConfig::default());
        classify_and_check(circuit.netlist(), &format!("random(seed={seed:#x})"));
    }
}

/// The effort statistics are consistent: backtracks never exceed decisions,
/// and classifying a whole universe at the default budget reports nonzero
/// total effort on any non-trivial circuit.
#[test]
fn effort_statistics_are_consistent() {
    let table = scanft_fsm::benchmarks::build("dk27").unwrap();
    let circuit = synthesize(&table, &SynthConfig::default());
    let netlist = circuit.netlist();
    let mut atpg = Atpg::new(netlist);
    let config = AtpgConfig::default();
    let mut total_decisions = 0;
    for fault in faults::enumerate_stuck(netlist) {
        let result = atpg.generate(&fault, &config);
        assert!(result.stats.backtracks <= result.stats.decisions);
        assert!(result.stats.decisions <= config.decision_budget);
        total_decisions += result.stats.decisions;
    }
    assert!(total_decisions > 0);
}
