//! Three- and five-valued logic for structural test generation.
//!
//! PODEM reasons over the composite **D-calculus**: every line carries a
//! value from `{0, 1, X, D, D̄}`, where `D` means "1 in the fault-free
//! circuit, 0 in the faulty circuit" and `D̄` the converse. Rather than a
//! five-way enum with hand-written composite truth tables, a line value is
//! stored as a *pair* of three-valued ([`Trit`]) values — the fault-free
//! (`good`) and faulty (`bad`) components — and every gate is evaluated
//! twice with the ordinary three-valued tables. The five classic values
//! fall out of the pairing:
//!
//! | pair (good, bad) | D-calculus value |
//! |------------------|------------------|
//! | (0, 0)           | 0                |
//! | (1, 1)           | 1                |
//! | (1, 0)           | D                |
//! | (0, 1)           | D̄               |
//! | any X component  | X                |
//!
//! The pair form keeps the implication step exact for arbitrary gate kinds
//! (including XOR, which has no controlling value) and makes the detection
//! predicate trivial: a fault is observed on a line iff both components are
//! definite and differ.

use scanft_netlist::GateKind;

/// A three-valued logic value: `0`, `1` or unassigned/unknown (`X`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Trit {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown / unassigned.
    #[default]
    X,
}

impl Trit {
    /// Converts a boolean to a definite trit.
    #[must_use]
    pub fn from_bool(value: bool) -> Self {
        if value {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    /// Whether the value is `0` or `1` (not `X`).
    #[must_use]
    pub fn is_definite(self) -> bool {
        self != Trit::X
    }
}

impl std::ops::Not for Trit {
    type Output = Trit;

    /// Three-valued complement (`X` stays `X`).
    fn not(self) -> Self {
        match self {
            Trit::Zero => Trit::One,
            Trit::One => Trit::Zero,
            Trit::X => Trit::X,
        }
    }
}

/// The composite five-valued line value as a (fault-free, faulty) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct V5 {
    /// Value in the fault-free circuit.
    pub good: Trit,
    /// Value in the faulty circuit.
    pub bad: Trit,
}

impl V5 {
    /// The fully unknown value `X`.
    pub const X: V5 = V5 {
        good: Trit::X,
        bad: Trit::X,
    };

    /// A definite fault-free value replicated into both circuits.
    #[must_use]
    pub fn definite(value: bool) -> Self {
        let t = Trit::from_bool(value);
        V5 { good: t, bad: t }
    }

    /// Whether the line carries the fault effect: both components definite
    /// and different (`D` or `D̄`).
    #[must_use]
    pub fn carries_d(self) -> bool {
        self.good.is_definite() && self.bad.is_definite() && self.good != self.bad
    }

    /// Whether either component is still `X` — the line can still change as
    /// more primary inputs are assigned.
    #[must_use]
    pub fn undetermined(self) -> bool {
        self.good == Trit::X || self.bad == Trit::X
    }
}

/// Evaluates one gate kind over three-valued inputs.
///
/// The tables are the standard pessimistic three-valued extensions: a
/// controlling input forces the output regardless of `X` elsewhere; XOR is
/// `X` as soon as any input is `X`.
///
/// # Panics
///
/// Panics (in debug builds) if `inputs` is empty.
#[must_use]
pub fn eval_trits(kind: GateKind, inputs: &[Trit]) -> Trit {
    debug_assert!(!inputs.is_empty());
    match kind {
        GateKind::Not => !inputs[0],
        GateKind::Buf => inputs[0],
        GateKind::And | GateKind::Nand => {
            let raw = if inputs.contains(&Trit::Zero) {
                Trit::Zero
            } else if inputs.contains(&Trit::X) {
                Trit::X
            } else {
                Trit::One
            };
            if kind == GateKind::Nand {
                !raw
            } else {
                raw
            }
        }
        GateKind::Or | GateKind::Nor => {
            let raw = if inputs.contains(&Trit::One) {
                Trit::One
            } else if inputs.contains(&Trit::X) {
                Trit::X
            } else {
                Trit::Zero
            };
            if kind == GateKind::Nor {
                !raw
            } else {
                raw
            }
        }
        GateKind::Xor => {
            if inputs.contains(&Trit::X) {
                Trit::X
            } else {
                Trit::from_bool(inputs.iter().filter(|&&t| t == Trit::One).count() % 2 == 1)
            }
        }
    }
}

/// The controlling input value of a gate kind, if it has one (`0` for
/// AND/NAND, `1` for OR/NOR; none for XOR and the unary kinds).
#[must_use]
pub fn controlling_value(kind: GateKind) -> Option<bool> {
    match kind {
        GateKind::And | GateKind::Nand => Some(false),
        GateKind::Or | GateKind::Nor => Some(true),
        GateKind::Xor | GateKind::Not | GateKind::Buf => None,
    }
}

/// Whether the gate kind inverts (NAND, NOR, NOT).
#[must_use]
pub fn inverts(kind: GateKind) -> bool {
    matches!(kind, GateKind::Nand | GateKind::Nor | GateKind::Not)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trit_basics() {
        assert_eq!(Trit::from_bool(true), Trit::One);
        assert_eq!(Trit::from_bool(false), Trit::Zero);
        assert!(Trit::One.is_definite());
        assert!(!Trit::X.is_definite());
        assert_eq!(!Trit::One, Trit::Zero);
        assert_eq!(!Trit::X, Trit::X);
    }

    #[test]
    fn v5_classification() {
        let d = V5 {
            good: Trit::One,
            bad: Trit::Zero,
        };
        assert!(d.carries_d());
        assert!(!d.undetermined());
        assert!(!V5::definite(true).carries_d());
        assert!(V5::X.undetermined());
        assert!(!V5::X.carries_d());
        let half = V5 {
            good: Trit::One,
            bad: Trit::X,
        };
        assert!(half.undetermined());
        assert!(!half.carries_d());
    }

    #[test]
    fn and_or_tables() {
        use Trit::{One, Zero, X};
        assert_eq!(eval_trits(GateKind::And, &[Zero, X]), Zero);
        assert_eq!(eval_trits(GateKind::And, &[One, X]), X);
        assert_eq!(eval_trits(GateKind::And, &[One, One]), One);
        assert_eq!(eval_trits(GateKind::Or, &[One, X]), One);
        assert_eq!(eval_trits(GateKind::Or, &[Zero, X]), X);
        assert_eq!(eval_trits(GateKind::Nand, &[Zero, X]), One);
        assert_eq!(eval_trits(GateKind::Nor, &[One, X]), Zero);
    }

    #[test]
    fn xor_and_unary_tables() {
        use Trit::{One, Zero, X};
        assert_eq!(eval_trits(GateKind::Xor, &[One, Zero, One]), Zero);
        assert_eq!(eval_trits(GateKind::Xor, &[One, Zero, Zero]), One);
        assert_eq!(eval_trits(GateKind::Xor, &[One, X]), X);
        assert_eq!(eval_trits(GateKind::Not, &[Zero]), One);
        assert_eq!(eval_trits(GateKind::Buf, &[X]), X);
    }

    /// The three-valued tables agree with the boolean `eval_words` kernel on
    /// every definite input combination (all kinds, 1..=3 inputs).
    #[test]
    fn trit_tables_agree_with_boolean_kernel() {
        for kind in [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
        ] {
            for n in 1..=3usize {
                for pattern in 0u32..1 << n {
                    let trits: Vec<Trit> = (0..n)
                        .map(|k| Trit::from_bool(pattern >> k & 1 == 1))
                        .collect();
                    let words: Vec<u64> = (0..n)
                        .map(|k| if pattern >> k & 1 == 1 { u64::MAX } else { 0 })
                        .collect();
                    let expect = kind.eval_words(&words) & 1 == 1;
                    assert_eq!(
                        eval_trits(kind, &trits),
                        Trit::from_bool(expect),
                        "{kind} {pattern:b}"
                    );
                }
            }
        }
        for kind in [GateKind::Not, GateKind::Buf] {
            for bit in [false, true] {
                let expect = kind.eval_words(&[if bit { u64::MAX } else { 0 }]) & 1 == 1;
                assert_eq!(
                    eval_trits(kind, &[Trit::from_bool(bit)]),
                    Trit::from_bool(expect)
                );
            }
        }
    }

    #[test]
    fn controlling_values_and_inversions() {
        assert_eq!(controlling_value(GateKind::And), Some(false));
        assert_eq!(controlling_value(GateKind::Nor), Some(true));
        assert_eq!(controlling_value(GateKind::Xor), None);
        assert!(inverts(GateKind::Nand));
        assert!(!inverts(GateKind::Buf));
    }
}
