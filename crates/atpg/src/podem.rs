//! The PODEM test-generation engine.
//!
//! PODEM (path-oriented decision making) searches over *primary-input
//! assignments only*: pick an objective that moves the fault effect toward
//! an observable line, backtrace it to an unassigned input, assign, and
//! re-imply the whole circuit forward. Because the only decision variables
//! are the circuit inputs (PIs and pseudo-PIs in the full-scan model), the
//! search space is exactly the input cube — when it is exhausted without a
//! budget hit, the target fault is **proven combinationally redundant**.
//!
//! The implementation keeps the classic structure:
//!
//! 1. **imply** — forward three-valued evaluation of the good and faulty
//!    circuits in topological order (gate creation order in
//!    [`scanft_netlist::Netlist`] is topological by construction);
//! 2. **X-path check** — a reverse-topological sweep marking every line
//!    from which an undetermined path still reaches a PO or PPO;
//! 3. **objective** — excite the fault if unexcited, otherwise advance the
//!    D-frontier through a gate whose output still has an X-path;
//! 4. **backtrace** — walk the objective back to an unassigned input,
//!    flipping the goal value through inversions and choosing easy/hard
//!    inputs by logic level for controlling/non-controlling goals;
//! 5. **backtrack** — on a dead end (fault unexcitable or no X-path left),
//!    flip the most recent unflipped decision; when no decision is left,
//!    the fault is redundant.
//!
//! On top of the classic loop sits **static-implication guidance**
//! (`AtpgConfig::use_implications`, default on): before the search starts,
//! the fault's *necessary* literals — activation plus non-controlling side
//! inputs at every dominator gate ([`scanft_analyze::Requirements`]) — are
//! expanded through the learned implication closure
//! ([`scanft_analyze::Implications`]). A conflict inside that expansion
//! proves the fault redundant with zero decisions; surviving literals fix
//! the input assignments they force (necessary assignments are never worth
//! a decision-stack entry, their complements cannot detect the fault), and
//! the remaining required internal values prune every search branch whose
//! implied good values contradict them. All of it is sound: the required
//! literals are necessary conditions, and three-valued implication is
//! monotone, so a definite contradiction can never be fixed by assigning
//! more inputs.
//!
//! Every generated test is a single-cycle [`ScanTest`] (scan-in the PPI
//! assignment, apply the PI combination, observe POs and scan-out), so it
//! composes directly with the functional tests of the paper's flow and with
//! `scanft-sim`'s fault-dropping campaigns.

use scanft_analyze::{Analysis, Implications, Requirements, Scoap};
use scanft_harness::Budget;
use scanft_netlist::{GateKind, NetId, Netlist};
use scanft_obs::Counter;
use scanft_sim::faults::{FaultSite, StuckFault};
use scanft_sim::ScanTest;

use crate::value::{controlling_value, eval_trits, inverts, Trit, V5};

/// Cost model steering PODEM's backtrace and D-frontier choices.
///
/// Neither choice affects soundness — any heuristic yields correct
/// tests/redundancy proofs — only the number of decisions spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Heuristic {
    /// Logic depth: easy = shallow, hard = deep. The original cost model,
    /// kept for comparison (the `coverage_topup` bench reports the
    /// decision-count delta between the two).
    Level,
    /// SCOAP testability measures: backtrace picks inputs by 0/1
    /// controllability of the goal value and the D-frontier advances
    /// through the gate with the cheapest observability.
    #[default]
    Scoap,
}

/// Knobs for one test-generation call.
#[derive(Debug, Clone)]
pub struct AtpgConfig {
    /// Maximum number of input-assignment decisions per fault. The search
    /// aborts (outcome [`AtpgOutcome::Aborted`]) when the budget is hit, so
    /// redundancy is only ever claimed on budget-free exhaustion.
    pub decision_budget: u64,
    /// Wall-clock and extra-decision caps for this call, on top of
    /// `decision_budget`. `budget.deadline` is a per-fault wall-clock cap:
    /// when it expires mid-search the outcome is
    /// [`AtpgOutcome::Aborted`] with [`AbortReason::Deadline`] — never a
    /// wrong `Redundant`, because redundancy still requires budget-free
    /// exhaustion of the input space. `budget.max_units` caps decisions
    /// (the effective decision budget is the minimum of the two caps).
    /// Defaults to unlimited, which preserves the historical behaviour.
    pub budget: Budget,
    /// Cost model guiding the search.
    pub heuristic: Heuristic,
    /// Guide the search with the static implication closure: fix necessary
    /// input assignments up front, prove conflicting targets redundant
    /// without search, and prune branches that contradict a required
    /// literal. Default on; turn off for A/B comparison (the
    /// `coverage_topup` bench reports the backtrack delta).
    pub use_implications: bool,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            decision_budget: 100_000,
            budget: Budget::unlimited(),
            heuristic: Heuristic::default(),
            use_implications: true,
        }
    }
}

impl AtpgConfig {
    /// The decision cap actually enforced: `decision_budget` tightened by
    /// `budget.max_units` when one is set.
    #[must_use]
    pub fn effective_decision_budget(&self) -> u64 {
        match self.budget.max_units {
            Some(cap) => self.decision_budget.min(cap),
            None => self.decision_budget,
        }
    }
}

/// Why a test-generation call gave up without a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The decision budget ran out.
    Decisions,
    /// The per-fault wall-clock deadline expired.
    Deadline,
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::Decisions => write!(f, "decision budget"),
            AbortReason::Deadline => write!(f, "wall-clock deadline"),
        }
    }
}

/// Verdict of one test-generation call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtpgOutcome {
    /// A single-cycle scan test that detects the target fault.
    Test(ScanTest),
    /// The input space was exhausted without a detecting assignment: the
    /// fault is combinationally redundant (undetectable by any scan test).
    Redundant,
    /// The search gave up before finishing; the fault is neither detected
    /// nor proven redundant.
    Aborted {
        /// Which budget stopped the search.
        reason: AbortReason,
    },
}

/// Search-effort statistics for one test-generation call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AtpgStats {
    /// Input assignments tried (fresh decisions, not flips).
    pub decisions: u64,
    /// Decisions undone by flipping to the complementary value.
    pub backtracks: u64,
    /// Necessary input assignments fixed by the implication closure before
    /// the search (each one removes a decision variable).
    pub implications: u64,
}

/// Outcome plus effort of one test-generation call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtpgResult {
    /// The verdict.
    pub outcome: AtpgOutcome,
    /// Search effort spent reaching it.
    pub stats: AtpgStats,
}

/// The target fault in a site-independent normal form.
///
/// `activation` is the line whose *good* value must be the complement of the
/// stuck value for the fault to be excited; `origin` is the first line at
/// which the good/faulty values can differ (the stem itself, or the output
/// of the branch's consuming gate).
#[derive(Debug, Clone, Copy)]
struct Target {
    stem: Option<NetId>,
    branch: Option<(u32, u32)>,
    stuck: Trit,
    activation: NetId,
    origin: NetId,
}

/// One entry of the explicit decision stack.
#[derive(Debug, Clone, Copy)]
struct Decision {
    net: NetId,
    flipped: bool,
}

/// A reusable PODEM engine for one netlist.
///
/// # Examples
///
/// ```
/// use scanft_atpg::{Atpg, AtpgConfig, AtpgOutcome};
/// use scanft_netlist::{GateKind, NetlistBuilder};
/// use scanft_sim::faults::{FaultSite, StuckFault};
///
/// // PO = AND(x1, x2); x1 stuck-at-0 needs x1=x2=1.
/// let mut b = NetlistBuilder::new(2, 0);
/// let g = b.add_gate(GateKind::And, &[0, 1]).unwrap();
/// let n = b.finish(vec![g], vec![]).unwrap();
/// let mut atpg = Atpg::new(&n);
/// let fault = StuckFault { site: FaultSite::Net(0), stuck_at_one: false };
/// let r = atpg.generate(&fault, &AtpgConfig::default());
/// match r.outcome {
///     AtpgOutcome::Test(t) => assert_eq!(t.inputs, vec![0b11]),
///     other => panic!("expected a test, got {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct Atpg<'a> {
    netlist: &'a Netlist,
    /// SCOAP measures of the netlist, driving the [`Heuristic::Scoap`]
    /// cost model.
    scoap: Scoap,
    /// Implication closure and dominator pass for the implication-guided
    /// search; built lazily on the first guided call, or shared up front
    /// via [`Atpg::with_analysis`].
    learned: Option<(Implications, Requirements)>,
    /// Per-net composite value, rebuilt by `imply`.
    values: Vec<V5>,
    /// Per-net X-path flag, rebuilt after every `imply`.
    ok: Vec<bool>,
    /// Whether the net is a PO or PPO.
    is_obs: Vec<bool>,
    /// Current input assignment, indexed by net id `0..num_inputs`.
    assignment: Vec<Trit>,
    /// Per-net good value the current target *requires* for detection
    /// (activation and dominator side inputs, closed under implication).
    /// All-X when implication guidance is off.
    required: Vec<Trit>,
    /// Scratch buffers for per-gate input gathering.
    good_in: Vec<Trit>,
    bad_in: Vec<Trit>,
    c_decisions: Counter,
    c_backtracks: Counter,
    c_implications: Counter,
    c_tests: Counter,
    c_redundant: Counter,
    c_aborted: Counter,
    c_deadline_aborts: Counter,
}

impl<'a> Atpg<'a> {
    /// Creates an engine for `netlist`.
    ///
    /// The SCOAP measures are computed immediately; the implication closure
    /// and dominator pass are built lazily on the first call with
    /// [`AtpgConfig::use_implications`] set. To share an already-computed
    /// [`Analysis`] (e.g. one used for static pruning), use
    /// [`Atpg::with_analysis`] instead.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        Self::build(netlist, Scoap::new(netlist), None)
    }

    /// Creates an engine that reuses `analysis` (its SCOAP measures drive
    /// the cost model, its implication closure and dominators drive the
    /// guided search) instead of recomputing them.
    #[must_use]
    pub fn with_analysis(netlist: &'a Netlist, analysis: Analysis) -> Self {
        let Analysis {
            scoap,
            implications,
            requirements,
        } = analysis;
        Self::build(netlist, scoap, Some((implications, requirements)))
    }

    fn build(
        netlist: &'a Netlist,
        scoap: Scoap,
        learned: Option<(Implications, Requirements)>,
    ) -> Self {
        let obs = scanft_obs::global();
        let mut is_obs = vec![false; netlist.num_nets()];
        for &net in netlist.pos().iter().chain(netlist.ppos()) {
            is_obs[net as usize] = true;
        }
        Atpg {
            netlist,
            scoap,
            learned,
            values: vec![V5::X; netlist.num_nets()],
            ok: vec![false; netlist.num_nets()],
            is_obs,
            assignment: vec![Trit::X; netlist.num_pis() + netlist.num_ppis()],
            required: vec![Trit::X; netlist.num_nets()],
            good_in: Vec::new(),
            bad_in: Vec::new(),
            c_decisions: obs.counter("atpg.decisions"),
            c_backtracks: obs.counter("atpg.backtracks"),
            c_implications: obs.counter("atpg.implications_applied"),
            c_tests: obs.counter("atpg.tests"),
            c_redundant: obs.counter("atpg.redundant"),
            c_aborted: obs.counter("atpg.aborted"),
            c_deadline_aborts: obs.counter("atpg.deadline_aborts"),
        }
    }

    /// The netlist this engine targets.
    #[must_use]
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Attempts to generate a single-cycle scan test for `fault`.
    ///
    /// Returns [`AtpgOutcome::Test`] with a detecting test,
    /// [`AtpgOutcome::Redundant`] when the PI/PPI space is provably
    /// exhausted, or [`AtpgOutcome::Aborted`] on budget exhaustion.
    pub fn generate(&mut self, fault: &StuckFault, config: &AtpgConfig) -> AtpgResult {
        let target = self.normalize(fault);
        self.assignment.fill(Trit::X);
        self.required.fill(Trit::X);
        let mut stack: Vec<Decision> = Vec::new();
        let mut stats = AtpgStats::default();
        // The per-fault wall-clock cap starts now; `checked_add` collapses
        // unreachably-far deadlines to "no deadline".
        let deadline_at = config
            .budget
            .deadline
            .and_then(|d| std::time::Instant::now().checked_add(d));

        let feasible =
            !config.use_implications || self.apply_static_implications(fault, &mut stats);
        let outcome = if !feasible {
            // The fault's necessary literals conflict (or no dominator chain
            // reaches an output): redundant with zero decisions. This is the
            // FIRE argument replayed per target, so it is exactly as sound as
            // the static prune the property suite cross-checks exhaustively.
            // A static proof stays sound under any deadline, so it is never
            // downgraded to an abort.
            AtpgOutcome::Redundant
        } else {
            self.search(&target, config, deadline_at, &mut stack, &mut stats)
        };

        self.c_decisions.add(stats.decisions);
        self.c_backtracks.add(stats.backtracks);
        self.c_implications.add(stats.implications);
        match outcome {
            AtpgOutcome::Test(_) => self.c_tests.inc(),
            AtpgOutcome::Redundant => self.c_redundant.inc(),
            AtpgOutcome::Aborted {
                reason: AbortReason::Decisions,
            } => self.c_aborted.inc(),
            AtpgOutcome::Aborted {
                reason: AbortReason::Deadline,
            } => {
                self.c_aborted.inc();
                self.c_deadline_aborts.inc();
            }
        }
        AtpgResult { outcome, stats }
    }

    /// The classic PODEM decision loop over the (possibly pre-constrained)
    /// input assignment.
    fn search(
        &mut self,
        target: &Target,
        config: &AtpgConfig,
        deadline_at: Option<std::time::Instant>,
        stack: &mut Vec<Decision>,
        stats: &mut AtpgStats,
    ) -> AtpgOutcome {
        let budget = config.effective_decision_budget();
        loop {
            self.imply(target);
            if self.detected() {
                break AtpgOutcome::Test(self.extract_test());
            }
            self.compute_x_paths();
            let objective = if self.possible(target) {
                self.objective(target, config.heuristic)
            } else {
                None
            };
            match objective {
                Some((net, value)) => {
                    // Deadline before decisions: an expired clock wins even
                    // when the decision budget is also gone. Both aborts are
                    // sound — redundancy is only ever claimed below, on
                    // genuine exhaustion of the decision stack.
                    if deadline_at.is_some_and(|t| std::time::Instant::now() >= t) {
                        break AtpgOutcome::Aborted {
                            reason: AbortReason::Deadline,
                        };
                    }
                    if stats.decisions >= budget {
                        break AtpgOutcome::Aborted {
                            reason: AbortReason::Decisions,
                        };
                    }
                    stats.decisions += 1;
                    let (input, input_value) = self.backtrace(net, value, config.heuristic);
                    self.assignment[input as usize] = Trit::from_bool(input_value);
                    stack.push(Decision {
                        net: input,
                        flipped: false,
                    });
                }
                None => {
                    // Dead end: flip the deepest unflipped decision, or give
                    // up — with the whole input space explored, the fault is
                    // redundant.
                    let exhausted = loop {
                        match stack.pop() {
                            Some(d) if !d.flipped => {
                                stats.backtracks += 1;
                                let flipped = !self.assignment[d.net as usize];
                                self.assignment[d.net as usize] = flipped;
                                stack.push(Decision {
                                    net: d.net,
                                    flipped: true,
                                });
                                break false;
                            }
                            Some(d) => self.assignment[d.net as usize] = Trit::X,
                            None => break true,
                        }
                    };
                    if exhausted {
                        break AtpgOutcome::Redundant;
                    }
                }
            }
        }
    }

    /// Constrains the search with the static implication closure.
    ///
    /// Expands the target's necessary literals — activation plus the
    /// non-controlling side inputs of every dominator gate, from
    /// [`Requirements::requirements`] — through [`Implications::implied`]
    /// into `self.required`, and fixes every required *input* directly in
    /// `self.assignment` (a necessary assignment's complement cannot detect
    /// the fault, so it never earns a decision-stack entry). Returns `false`
    /// when the requirements are contradictory, i.e. the fault is proven
    /// redundant before any search.
    fn apply_static_implications(&mut self, fault: &StuckFault, stats: &mut AtpgStats) -> bool {
        if self.learned.is_none() {
            self.learned = Some((
                Implications::new(self.netlist),
                Requirements::new(self.netlist),
            ));
        }
        let Some((implications, requirements)) = self.learned.as_ref() else {
            return true;
        };
        let Some(required) = requirements.requirements(self.netlist, fault) else {
            return false;
        };
        for &(net, value) in &required {
            if implications.infeasible(net, value) {
                return false;
            }
            for (to, tv) in implications.implied(net, value) {
                let forced = Trit::from_bool(tv);
                let cur = self.required[to as usize];
                if cur == Trit::X {
                    self.required[to as usize] = forced;
                } else if cur != forced {
                    return false;
                }
            }
        }
        let num_inputs = self.netlist.num_pis() + self.netlist.num_ppis();
        for net in 0..num_inputs {
            let r = self.required[net];
            if r != Trit::X {
                self.assignment[net] = r;
                stats.implications += 1;
            }
        }
        true
    }

    fn normalize(&self, fault: &StuckFault) -> Target {
        let stuck = Trit::from_bool(fault.stuck_at_one);
        match fault.site {
            FaultSite::Net(net) => Target {
                stem: Some(net),
                branch: None,
                stuck,
                activation: net,
                origin: net,
            },
            FaultSite::Branch { gate, pin } => {
                let source = self.netlist.gates()[gate as usize].inputs[pin as usize];
                Target {
                    stem: None,
                    branch: Some((gate, pin)),
                    stuck,
                    activation: source,
                    origin: self.netlist.gate_output(gate as usize),
                }
            }
        }
    }

    /// Forward three-valued implication of the good and faulty circuits
    /// from the current input assignment.
    fn imply(&mut self, target: &Target) {
        let num_inputs = self.netlist.num_pis() + self.netlist.num_ppis();
        for net in 0..num_inputs {
            let a = self.assignment[net];
            self.values[net] = V5 { good: a, bad: a };
        }
        if let Some(stem) = target.stem {
            if (stem as usize) < num_inputs {
                self.values[stem as usize].bad = target.stuck;
            }
        }
        for (g, gate) in self.netlist.gates().iter().enumerate() {
            self.good_in.clear();
            self.bad_in.clear();
            for &input in &gate.inputs {
                self.good_in.push(self.values[input as usize].good);
                self.bad_in.push(self.values[input as usize].bad);
            }
            if let Some((bg, bp)) = target.branch {
                if bg as usize == g {
                    self.bad_in[bp as usize] = target.stuck;
                }
            }
            let out = num_inputs + g;
            let good = eval_trits(gate.kind, &self.good_in);
            let mut bad = eval_trits(gate.kind, &self.bad_in);
            if target.stem == Some(out as NetId) {
                bad = target.stuck;
            }
            self.values[out] = V5 { good, bad };
        }
    }

    /// Whether the fault effect has reached an observable line.
    fn detected(&self) -> bool {
        self.netlist
            .pos()
            .iter()
            .chain(self.netlist.ppos())
            .any(|&net| self.values[net as usize].carries_d())
    }

    /// Reverse-topological X-path sweep: `ok[net]` iff `net` is still
    /// undetermined and some all-undetermined path from it reaches a PO or
    /// PPO. Net ids are topological, so a single reverse pass suffices.
    fn compute_x_paths(&mut self) {
        for net in (0..self.netlist.num_nets()).rev() {
            self.ok[net] = self.values[net].undetermined()
                && (self.is_obs[net]
                    || self
                        .netlist
                        .fanout(net as NetId)
                        .iter()
                        .any(|&g| self.ok[self.netlist.gate_output(g as usize) as usize]));
        }
    }

    /// Sound pruning test: `false` only when *no* completion of the current
    /// assignment can detect the fault.
    ///
    /// Three-valued implication is monotone — a definite line value never
    /// changes as more inputs are assigned — so each condition is safe:
    /// a wrong good value at the activation line is final; a fault effect
    /// can only travel on from a line that carries it into a line with an
    /// X-path; and before any line carries the effect, the origin itself
    /// must still have an X-path (every D-carrying line traces back to the
    /// origin, so "no D anywhere" means the origin is where it must start).
    ///
    /// With implication guidance on, a fourth condition applies: a definite
    /// good value contradicting a literal in the `required` map (a necessary
    /// condition for detection, by the dominator argument) is equally final,
    /// so the branch is dead.
    fn possible(&self, target: &Target) -> bool {
        let act = self.values[target.activation as usize].good;
        if act.is_definite() && act == target.stuck {
            return false;
        }
        for (net, &r) in self.required.iter().enumerate() {
            if r != Trit::X {
                let good = self.values[net].good;
                if good.is_definite() && good != r {
                    return false;
                }
            }
        }
        let mut any_d = false;
        for net in 0..self.netlist.num_nets() {
            if !self.values[net].carries_d() {
                continue;
            }
            any_d = true;
            let reaches = self
                .netlist
                .fanout(net as NetId)
                .iter()
                .any(|&g| self.ok[self.netlist.gate_output(g as usize) as usize]);
            if reaches {
                return true;
            }
        }
        if any_d {
            false
        } else {
            self.ok[target.origin as usize]
        }
    }

    /// Picks the next objective `(net, good value)`.
    ///
    /// Excite first; then advance the D-frontier (a gate with a D input, an
    /// undetermined output on an X-path, and an unassigned input to set to
    /// the non-controlling value). Under [`Heuristic::Level`] the first
    /// frontier gate in index order is taken; under [`Heuristic::Scoap`]
    /// the frontier gate with the cheapest output observability wins, so
    /// the effect is pushed along the easiest propagation path. The
    /// fallback — assign any remaining unassigned input — never affects
    /// correctness, only search order, and guarantees progress until
    /// `possible` can rule the branch out.
    fn objective(&self, target: &Target, heuristic: Heuristic) -> Option<(NetId, bool)> {
        if self.values[target.activation as usize].good == Trit::X {
            return Some((target.activation, target.stuck == Trit::Zero));
        }
        let num_inputs = self.netlist.num_pis() + self.netlist.num_ppis();
        let mut best: Option<(NetId, bool, u32)> = None;
        for (g, gate) in self.netlist.gates().iter().enumerate() {
            let out = self.netlist.gate_output(g);
            if !self.ok[out as usize] || !self.values[out as usize].undetermined() {
                continue;
            }
            let has_d = gate
                .inputs
                .iter()
                .any(|&i| self.values[i as usize].carries_d());
            if !has_d {
                continue;
            }
            if let Some(&input) = gate
                .inputs
                .iter()
                .find(|&&i| self.values[i as usize].good == Trit::X)
            {
                // Non-controlling value lets the fault effect through; XOR
                // has none, so either value sensitizes — pick 0.
                let value = controlling_value(gate.kind).map(|c| !c).unwrap_or(false);
                match heuristic {
                    Heuristic::Level => return Some((input, value)),
                    Heuristic::Scoap => {
                        let cost = self.scoap.co(out);
                        if best.is_none_or(|(_, _, c)| cost < c) {
                            best = Some((input, value, cost));
                        }
                    }
                }
            }
        }
        if let Some((input, value, _)) = best {
            return Some((input, value));
        }
        (0..num_inputs)
            .find(|&net| self.assignment[net] == Trit::X)
            .map(|net| (net as NetId, false))
    }

    /// Estimated cost of driving `net` to `value`: SCOAP controllability
    /// under [`Heuristic::Scoap`], logic depth under [`Heuristic::Level`]
    /// (which ignores `value` — that coarseness is exactly what the SCOAP
    /// model improves on).
    fn drive_cost(&self, heuristic: Heuristic, net: NetId, value: bool) -> u32 {
        match heuristic {
            Heuristic::Level => self.netlist.level(net),
            Heuristic::Scoap => self.scoap.controllability(net, value),
        }
    }

    /// Walks an objective back to an unassigned PI/PPI, choosing easy/hard
    /// inputs by the configured cost model.
    ///
    /// Invariant: a gate output with good value `X` always has an input
    /// with good value `X` (the three-valued tables are exact), so the walk
    /// terminates at an input net.
    fn backtrace(&self, mut net: NetId, mut value: bool, heuristic: Heuristic) -> (NetId, bool) {
        let num_inputs = self.netlist.num_pis() + self.netlist.num_ppis();
        while net as usize >= num_inputs {
            let gate = &self.netlist.gates()[net as usize - num_inputs];
            if gate.kind.is_unary() {
                if gate.kind == GateKind::Not {
                    value = !value;
                }
                net = gate.inputs[0];
                continue;
            }
            let goal = value ^ inverts(gate.kind);
            let unassigned = gate
                .inputs
                .iter()
                .copied()
                .filter(|&i| self.values[i as usize].good == Trit::X);
            match controlling_value(gate.kind) {
                Some(c) if goal == c => {
                    // One controlling input suffices: take the easiest
                    // (cheapest to drive) unassigned one.
                    net = unassigned
                        .min_by_key(|&i| self.drive_cost(heuristic, i, goal))
                        .expect("X output implies an X input");
                    value = goal;
                }
                Some(_) => {
                    // Every input must be non-controlling: attack the
                    // hardest (most expensive) unassigned one first.
                    net = unassigned
                        .max_by_key(|&i| self.drive_cost(heuristic, i, goal))
                        .expect("X output implies an X input");
                    value = goal;
                }
                None => {
                    // XOR: aim the chosen input at the parity that the
                    // already-definite inputs leave to cover.
                    let parity = gate
                        .inputs
                        .iter()
                        .filter(|&&i| self.values[i as usize].good == Trit::One)
                        .count()
                        % 2
                        == 1;
                    let target_value = goal ^ parity;
                    net = unassigned
                        .min_by_key(|&i| self.drive_cost(heuristic, i, target_value))
                        .expect("X output implies an X input");
                    value = target_value;
                }
            }
        }
        (net, value)
    }

    /// Packs the current assignment into a single-cycle scan test, filling
    /// unassigned inputs with 0. Detection is preserved under any fill:
    /// implication is monotone, so every definite line of the partial
    /// assignment — in particular the sensitized path — keeps its value.
    fn extract_test(&self) -> ScanTest {
        let mut input = 0u32;
        for k in 0..self.netlist.num_pis() {
            if self.assignment[self.netlist.pi(k) as usize] == Trit::One {
                input |= 1 << k;
            }
        }
        let mut code = 0u64;
        for k in 0..self.netlist.num_ppis() {
            if self.assignment[self.netlist.ppi(k) as usize] == Trit::One {
                code |= 1 << k;
            }
        }
        ScanTest::new(code, vec![input])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanft_netlist::NetlistBuilder;
    use scanft_sim::faults::{self, Fault};
    use scanft_sim::{campaign, exhaustive};

    fn test_detects(netlist: &Netlist, test: &ScanTest, fault: &StuckFault) -> bool {
        let report = campaign::run(netlist, std::slice::from_ref(test), &[Fault::Stuck(*fault)]);
        report.detecting_test[0].is_some()
    }

    #[test]
    fn and_gate_stuck_faults() {
        // PO = AND(x1, x2).
        let mut b = NetlistBuilder::new(2, 0);
        let g = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let n = b.finish(vec![g], vec![]).unwrap();
        let mut atpg = Atpg::new(&n);
        for fault in faults::enumerate_stuck(&n) {
            let r = atpg.generate(&fault, &AtpgConfig::default());
            match r.outcome {
                AtpgOutcome::Test(t) => {
                    assert!(
                        test_detects(&n, &t, &fault),
                        "{}",
                        Fault::Stuck(fault).describe(&n)
                    );
                }
                other => panic!("{}: {other:?}", Fault::Stuck(fault).describe(&n)),
            }
        }
    }

    #[test]
    fn scan_flops_are_searchable_inputs() {
        // PPO = OR(x1, y1): exciting y1 s-a-0 needs the scan state bit.
        let mut b = NetlistBuilder::new(1, 1);
        let g = b.add_gate(GateKind::Or, &[0, 1]).unwrap();
        let n = b.finish(vec![], vec![g]).unwrap();
        let mut atpg = Atpg::new(&n);
        let fault = StuckFault {
            site: FaultSite::Net(1),
            stuck_at_one: false,
        };
        let r = atpg.generate(&fault, &AtpgConfig::default());
        match r.outcome {
            AtpgOutcome::Test(t) => {
                assert_eq!(t.init_code, 1, "y1 must be scanned in as 1");
                assert_eq!(t.inputs, vec![0], "x1 must be 0 to propagate");
                assert!(test_detects(&n, &t, &fault));
            }
            other => panic!("expected a test, got {other:?}"),
        }
    }

    #[test]
    fn constant_true_output_is_redundant() {
        // g2 = OR(x1, NOT x1) is constant 1: g2 s-a-1 is redundant, and the
        // verdict must come from exhaustion, not from a budget hit.
        let mut b = NetlistBuilder::new(1, 0);
        let inv = b.add_gate(GateKind::Not, &[0]).unwrap();
        let or = b.add_gate(GateKind::Or, &[0, inv]).unwrap();
        let n = b.finish(vec![or], vec![]).unwrap();
        let mut atpg = Atpg::new(&n);
        let fault = StuckFault {
            site: FaultSite::Net(or),
            stuck_at_one: true,
        };
        let r = atpg.generate(&fault, &AtpgConfig::default());
        assert_eq!(r.outcome, AtpgOutcome::Redundant);
        assert_eq!(
            exhaustive::is_detectable(&n, &Fault::Stuck(fault), 1 << 20),
            exhaustive::Detectability::Undetectable
        );
        // The complementary fault is detectable.
        let sa0 = StuckFault {
            site: FaultSite::Net(or),
            stuck_at_one: false,
        };
        let r = atpg.generate(&sa0, &AtpgConfig::default());
        assert!(matches!(r.outcome, AtpgOutcome::Test(_)));
    }

    #[test]
    fn branch_fault_distinct_from_stem() {
        // x1 fans out to g1 = AND(x1, x2) and g2 = OR(x1, x3); the branch
        // x1->g1 s-a-0 must be excited via x1=1 and observed through g1.
        let mut b = NetlistBuilder::new(3, 0);
        let g1 = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let g2 = b.add_gate(GateKind::Or, &[0, 2]).unwrap();
        let n = b.finish(vec![g1, g2], vec![]).unwrap();
        let mut atpg = Atpg::new(&n);
        let fault = StuckFault {
            site: FaultSite::Branch { gate: 0, pin: 0 },
            stuck_at_one: false,
        };
        let r = atpg.generate(&fault, &AtpgConfig::default());
        match r.outcome {
            AtpgOutcome::Test(t) => {
                assert_eq!(t.inputs[0] & 0b11, 0b11, "x1=x2=1 excites and propagates");
                assert!(test_detects(&n, &t, &fault));
            }
            other => panic!("expected a test, got {other:?}"),
        }
    }

    #[test]
    fn zero_budget_aborts_instead_of_claiming_redundancy() {
        // Implication guidance off: the raw search must hit the budget and
        // abort rather than misreport redundancy.
        let mut b = NetlistBuilder::new(2, 0);
        let g = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let n = b.finish(vec![g], vec![]).unwrap();
        let mut atpg = Atpg::new(&n);
        let fault = StuckFault {
            site: FaultSite::Net(0),
            stuck_at_one: false,
        };
        let r = atpg.generate(
            &fault,
            &AtpgConfig {
                decision_budget: 0,
                use_implications: false,
                ..AtpgConfig::default()
            },
        );
        assert_eq!(
            r.outcome,
            AtpgOutcome::Aborted {
                reason: AbortReason::Decisions
            }
        );
        assert_eq!(r.stats.decisions, 0);
    }

    #[test]
    fn max_units_tightens_the_decision_budget() {
        // budget.max_units acts as an extra decision cap alongside
        // decision_budget; the tighter of the two wins.
        let config = AtpgConfig {
            decision_budget: 100,
            budget: Budget::unlimited().with_max_units(7),
            ..AtpgConfig::default()
        };
        assert_eq!(config.effective_decision_budget(), 7);
        let config = AtpgConfig {
            decision_budget: 3,
            budget: Budget::unlimited().with_max_units(7),
            ..AtpgConfig::default()
        };
        assert_eq!(config.effective_decision_budget(), 3);
        assert_eq!(AtpgConfig::default().effective_decision_budget(), 100_000);
    }

    #[test]
    fn expired_deadline_aborts_instead_of_claiming_redundancy() {
        // A zero-second deadline on a *redundant* fault with guidance off:
        // the search must abort with the deadline reason, never misreport
        // redundancy it did not prove by exhaustion.
        let mut b = NetlistBuilder::new(2, 0);
        let g1 = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let g2 = b.add_gate(GateKind::Or, &[0, g1]).unwrap();
        let n = b.finish(vec![g2], vec![]).unwrap();
        let mut atpg = Atpg::new(&n);
        let fault = StuckFault {
            site: FaultSite::Net(g1),
            stuck_at_one: false,
        };
        let r = atpg.generate(
            &fault,
            &AtpgConfig {
                budget: Budget::unlimited().with_deadline(std::time::Duration::ZERO),
                use_implications: false,
                ..AtpgConfig::default()
            },
        );
        assert_eq!(
            r.outcome,
            AtpgOutcome::Aborted {
                reason: AbortReason::Deadline
            }
        );
        // With guidance on, the static redundancy proof is sound at any
        // deadline, so it is kept rather than downgraded to an abort.
        let r = atpg.generate(
            &fault,
            &AtpgConfig {
                budget: Budget::unlimited().with_deadline(std::time::Duration::ZERO),
                ..AtpgConfig::default()
            },
        );
        assert_eq!(r.outcome, AtpgOutcome::Redundant);
    }

    #[test]
    fn unlimited_deadline_changes_nothing() {
        let mut b = NetlistBuilder::new(2, 0);
        let g = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let n = b.finish(vec![g], vec![]).unwrap();
        let mut atpg = Atpg::new(&n);
        for fault in faults::enumerate_stuck(&n) {
            let base = atpg.generate(&fault, &AtpgConfig::default());
            let capped = atpg.generate(
                &fault,
                &AtpgConfig {
                    budget: Budget::unlimited().with_deadline(std::time::Duration::from_secs(3600)),
                    ..AtpgConfig::default()
                },
            );
            assert_eq!(base.outcome, capped.outcome);
        }
    }

    #[test]
    fn necessary_assignments_solve_without_decisions() {
        // x1 s-a-0 in AND(x1, x2): activation forces x1=1 and the dominator
        // side input forces x2=1 — the implication closure fixes both, so
        // the test falls out with zero decisions even at zero budget.
        let mut b = NetlistBuilder::new(2, 0);
        let g = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let n = b.finish(vec![g], vec![]).unwrap();
        let mut atpg = Atpg::new(&n);
        let fault = StuckFault {
            site: FaultSite::Net(0),
            stuck_at_one: false,
        };
        let r = atpg.generate(
            &fault,
            &AtpgConfig {
                decision_budget: 0,
                ..AtpgConfig::default()
            },
        );
        match r.outcome {
            AtpgOutcome::Test(t) => {
                assert_eq!(t.inputs, vec![0b11]);
                assert!(test_detects(&n, &t, &fault));
            }
            other => panic!("expected a test, got {other:?}"),
        }
        assert_eq!(r.stats.decisions, 0);
        assert_eq!(r.stats.implications, 2, "both inputs are necessary");
    }

    #[test]
    fn implication_guidance_agrees_with_plain_search() {
        // Guided and unguided search must reach identical verdicts on every
        // fault of a circuit mixing detectable and redundant faults, with
        // the guided run never spending more backtracks.
        let mut b = NetlistBuilder::new(2, 1);
        let g1 = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let g2 = b.add_gate(GateKind::Or, &[0, g1]).unwrap();
        let ns = b.add_gate(GateKind::Xor, &[g2, 2]).unwrap();
        let n = b.finish(vec![g2], vec![ns]).unwrap();
        let mut atpg = Atpg::new(&n);
        let mut backtracks = [0u64, 0u64];
        for fault in faults::enumerate_stuck(&n) {
            let mut verdicts = Vec::new();
            for (k, use_implications) in [(0, true), (1, false)] {
                let r = atpg.generate(
                    &fault,
                    &AtpgConfig {
                        use_implications,
                        ..AtpgConfig::default()
                    },
                );
                backtracks[k] += r.stats.backtracks;
                let ok = match r.outcome {
                    AtpgOutcome::Test(t) => {
                        assert!(
                            test_detects(&n, &t, &fault),
                            "{}",
                            Fault::Stuck(fault).describe(&n)
                        );
                        true
                    }
                    AtpgOutcome::Redundant => false,
                    AtpgOutcome::Aborted { reason } => {
                        panic!("{}: aborted ({reason})", Fault::Stuck(fault).describe(&n))
                    }
                };
                verdicts.push(ok);
            }
            assert_eq!(
                verdicts[0],
                verdicts[1],
                "{}",
                Fault::Stuck(fault).describe(&n)
            );
        }
        assert!(
            backtracks[0] <= backtracks[1],
            "guided search backtracked more ({} > {})",
            backtracks[0],
            backtracks[1]
        );
    }

    #[test]
    fn heuristics_agree_on_verdicts() {
        // Both cost models must reach identical verdicts on every fault of
        // a circuit with detectable and redundant faults; only the effort
        // may differ.
        let mut b = NetlistBuilder::new(2, 1);
        let g1 = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let g2 = b.add_gate(GateKind::Or, &[0, g1]).unwrap();
        let ns = b.add_gate(GateKind::Xor, &[g2, 2]).unwrap();
        let n = b.finish(vec![g2], vec![ns]).unwrap();
        let mut atpg = Atpg::new(&n);
        for fault in faults::enumerate_stuck(&n) {
            let mut verdicts = Vec::new();
            for heuristic in [Heuristic::Level, Heuristic::Scoap] {
                let r = atpg.generate(
                    &fault,
                    &AtpgConfig {
                        heuristic,
                        ..AtpgConfig::default()
                    },
                );
                let ok = match r.outcome {
                    AtpgOutcome::Test(t) => {
                        assert!(
                            test_detects(&n, &t, &fault),
                            "{}",
                            Fault::Stuck(fault).describe(&n)
                        );
                        true
                    }
                    AtpgOutcome::Redundant => false,
                    AtpgOutcome::Aborted { reason } => {
                        panic!("{}: aborted ({reason})", Fault::Stuck(fault).describe(&n))
                    }
                };
                verdicts.push(ok);
            }
            assert_eq!(
                verdicts[0],
                verdicts[1],
                "{}",
                Fault::Stuck(fault).describe(&n)
            );
        }
    }

    #[test]
    fn xor_propagation() {
        // PO = XOR(x1, x2, x3): every stem fault is detectable.
        let mut b = NetlistBuilder::new(3, 0);
        let g = b.add_gate(GateKind::Xor, &[0, 1, 2]).unwrap();
        let n = b.finish(vec![g], vec![]).unwrap();
        let mut atpg = Atpg::new(&n);
        for fault in faults::enumerate_stuck(&n) {
            let r = atpg.generate(&fault, &AtpgConfig::default());
            match r.outcome {
                AtpgOutcome::Test(t) => {
                    assert!(
                        test_detects(&n, &t, &fault),
                        "{}",
                        Fault::Stuck(fault).describe(&n)
                    );
                }
                other => panic!("{}: {other:?}", Fault::Stuck(fault).describe(&n)),
            }
        }
    }

    #[test]
    fn masked_reconvergence_is_proven_redundant() {
        // Classic redundant reconvergence: f = AND(x1, x2) OR AND(x1, NOT x2)
        // OR AND(NOT x1, x2) simplifies so that one branch fault is
        // undetectable; use the simpler c17-style blocked line instead:
        // g1 = AND(x1, x2); g2 = OR(x1, g1); g1's effect on g2 is masked
        // whenever x1 = 1, but exciting g1 requires x1 = 1 -> g1 s-a-0 is
        // undetectable at g2.
        let mut b = NetlistBuilder::new(2, 0);
        let g1 = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let g2 = b.add_gate(GateKind::Or, &[0, g1]).unwrap();
        let n = b.finish(vec![g2], vec![]).unwrap();
        let mut atpg = Atpg::new(&n);
        let fault = StuckFault {
            site: FaultSite::Net(g1),
            stuck_at_one: false,
        };
        let r = atpg.generate(&fault, &AtpgConfig::default());
        assert_eq!(r.outcome, AtpgOutcome::Redundant);
        assert_eq!(
            exhaustive::is_detectable(&n, &Fault::Stuck(fault), 1 << 20),
            exhaustive::Detectability::Undetectable
        );
    }
}
