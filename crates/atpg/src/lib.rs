//! Deterministic structural test generation (PODEM) for full-scan circuits.
//!
//! The paper evaluates *functional* test sets by gate-level fault
//! simulation and supplements them with deterministic tests for whatever
//! faults the functional tests leave undetected. This crate provides that
//! deterministic side: a PODEM-style combinational ATPG over the full-scan
//! model of [`scanft_netlist`], where both primary inputs and scan flops
//! (pseudo-primary inputs) are freely assignable and both primary outputs
//! and scan flops (pseudo-primary outputs) are observable.
//!
//! - [`value`]: the five-valued D-calculus (`0/1/X/D/D̄`) as pairs of
//!   three-valued good/faulty components;
//! - [`podem`]: the engine — forward implication, X-path check,
//!   objective/backtrace, backtracking with a decision budget, and
//!   redundancy identification on budget-free exhaustion.
//!
//! Every generated test is a single-cycle [`scanft_sim::ScanTest`], so the
//! output composes directly with the fault-dropping campaigns in
//! [`scanft_sim::campaign`] and the functional test sets of `scanft-core`
//! (which hosts the `top_up` driver combining the two).
//!
//! # Example
//!
//! ```
//! use scanft_atpg::{Atpg, AtpgConfig, AtpgOutcome};
//! use scanft_sim::faults;
//! use scanft_synth::{synthesize, SynthConfig};
//!
//! let lion = scanft_fsm::benchmarks::lion();
//! let circuit = synthesize(&lion, &SynthConfig::default());
//! let netlist = circuit.netlist();
//! let mut atpg = Atpg::new(netlist);
//! let config = AtpgConfig::default();
//! // The lion netlist is irredundant: every stuck-at fault gets a test.
//! for fault in faults::enumerate_stuck(netlist) {
//!     let result = atpg.generate(&fault, &config);
//!     assert!(matches!(result.outcome, AtpgOutcome::Test(_)));
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod podem;
pub mod value;

pub use podem::{AbortReason, Atpg, AtpgConfig, AtpgOutcome, AtpgResult, AtpgStats, Heuristic};
pub use value::{Trit, V5};
