//! The metric primitives: counters, gauges and histogram-style timers.
//!
//! Handles are cheap clones of an `Arc` of atomics. Counter and gauge
//! updates are single relaxed atomic operations, so instrumented hot loops
//! pay one indirection and one atomic RMW per event and never contend on a
//! lock. A timer observation updates five statistics that must stay
//! mutually consistent (count, total, min, max, bucket), so [`Timer::record`]
//! serializes writers on a tiny per-timer lock; the per-field accessors
//! remain lock-free relaxed reads, and [`Timer::stats`] takes the same lock
//! to produce a tear-free cross-field snapshot for export.
//!
//! All synchronization goes through the `scanft-race` facade so the timer
//! write path is visible to the deterministic model scheduler.
//!
//! race-lint: statistics-counters — this file is the workspace's one
//! relaxed-ordering zone: every atomic here is a monotonic statistic whose
//! readers tolerate staleness (or read under the timer writer lock), so
//! `Ordering::Relaxed` is policy-compliant. Everywhere else the
//! `relaxed-ordering-policy` lint denies it.

use scanft_race::sync::{Arc, AtomicU64, Mutex, Ordering};
use std::time::{Duration, Instant};

/// Number of histogram buckets kept by a [`Timer`].
///
/// Decade buckets: bucket 0 counts observations below 100 ns, bucket `k`
/// (for `1 <= k < 8`) counts `10^(k+1) <= nanoseconds < 10^(k+2)`, and the
/// last bucket is unbounded above (≥ 1 s).
pub const TIMER_BUCKETS: usize = 9;

/// A monotonically increasing event count.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a free-standing counter (registry-less, mainly for tests).
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments the counter by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (e.g. gates after minimization).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Creates a free-standing gauge (registry-less, mainly for tests).
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Raises the gauge to `value` if it is higher than the current value.
    pub fn set_max(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Adds `n` to the gauge (e.g. a queue-depth gauge on enqueue).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` from the gauge, saturating at zero so a racy
    /// enqueue/dequeue interleaving can never wrap a depth gauge to 2^64.
    pub fn sub(&self, n: u64) {
        // fetch_update retries on contention; saturating_sub keeps it >= 0.
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
pub(crate) struct TimerCore {
    /// Serializes [`Timer::record`] so the five statistics below always
    /// advance together; [`Timer::stats`] holds it while reading so the
    /// mutex's acquire/release ordering makes the snapshot coherent.
    write_lock: Mutex<()>,
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; TIMER_BUCKETS],
}

impl Default for TimerCore {
    fn default() -> Self {
        TimerCore {
            write_lock: Mutex::new(()),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            // Seeded so the first `fetch_min` wins regardless of ordering.
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            buckets: Default::default(),
        }
    }
}

/// A coherent point-in-time copy of one timer's statistics.
///
/// Produced by [`Timer::stats`] under the timer's writer lock, so the
/// fields are mutually consistent: `total_secs` is exactly the sum of the
/// observations counted by `count`, and the buckets sum to `count`. The
/// individual accessors on [`Timer`] are lock-free but can interleave with
/// a concurrent [`Timer::record`] between fields; exporters must use this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimerStats {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations in seconds.
    pub total_secs: f64,
    /// Shortest observation in seconds (0.0 when `count == 0`).
    pub min_secs: f64,
    /// Longest observation in seconds (0.0 when `count == 0`).
    pub max_secs: f64,
    /// Decade bucket counts (see [`TIMER_BUCKETS`]).
    pub buckets: [u64; TIMER_BUCKETS],
}

/// A histogram-style duration accumulator: count, total, min, max and
/// decade buckets (see [`TIMER_BUCKETS`]).
#[derive(Debug, Clone, Default)]
pub struct Timer(pub(crate) Arc<TimerCore>);

impl Timer {
    /// Creates a free-standing timer (registry-less, mainly for tests).
    #[must_use]
    pub fn new() -> Self {
        Timer::default()
    }

    /// Starts a span scope; the elapsed time is recorded when the span is
    /// stopped or dropped.
    #[must_use]
    pub fn start(&self) -> Span {
        Span {
            timer: self.clone(),
            started: Instant::now(),
            recorded: false,
        }
    }

    /// Records one observation.
    ///
    /// Writers serialize on the timer's writer lock so all five statistics
    /// advance together; the fields themselves stay relaxed atomics (the
    /// statistics-counter zone of the ordering policy) because the lock's
    /// acquire/release edges already order them for [`Timer::stats`].
    pub fn record(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let core = &*self.0;
        let _writer = core.write_lock.lock();
        core.count.fetch_add(1, Ordering::Relaxed);
        core.total_ns.fetch_add(ns, Ordering::Relaxed);
        core.min_ns.fetch_min(ns, Ordering::Relaxed);
        core.max_ns.fetch_max(ns, Ordering::Relaxed);
        core.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// A coherent snapshot of all statistics, taken under the writer lock.
    ///
    /// Unlike the individual accessors, the returned fields cannot tear
    /// against a concurrent [`Timer::record`]: `total_secs` always equals
    /// the sum of exactly the `count` observations it reports.
    #[must_use]
    pub fn stats(&self) -> TimerStats {
        let core = &*self.0;
        let _writer = core.write_lock.lock();
        let count = core.count.load(Ordering::Relaxed);
        let min_ns = if count == 0 {
            0
        } else {
            core.min_ns.load(Ordering::Relaxed)
        };
        let mut buckets = [0; TIMER_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&core.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        TimerStats {
            count,
            total_secs: core.total_ns.load(Ordering::Relaxed) as f64 / 1e9,
            min_secs: min_ns as f64 / 1e9,
            max_secs: core.max_ns.load(Ordering::Relaxed) as f64 / 1e9,
            buckets,
        }
    }

    /// Number of recorded observations.
    ///
    /// Lock-free; coherent on its own but may tear against other fields
    /// read separately — use [`Timer::stats`] for a cross-field snapshot.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations in seconds.
    #[must_use]
    pub fn total_secs(&self) -> f64 {
        self.0.total_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Shortest observation in seconds (0.0 before any observation).
    #[must_use]
    pub fn min_secs(&self) -> f64 {
        if self.count() == 0 {
            return 0.0;
        }
        self.0.min_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Longest observation in seconds (0.0 before any observation).
    #[must_use]
    pub fn max_secs(&self) -> f64 {
        self.0.max_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// The decade bucket counts (see [`TIMER_BUCKETS`]).
    #[must_use]
    pub fn buckets(&self) -> [u64; TIMER_BUCKETS] {
        let mut out = [0; TIMER_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&self.0.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }
}

fn bucket_of(ns: u64) -> usize {
    // Decade buckets starting at 10 ns: [0,100), [100,1000), ...
    let mut bucket = 0;
    let mut bound = 100u64;
    while bucket + 1 < TIMER_BUCKETS && ns >= bound {
        bucket += 1;
        bound = bound.saturating_mul(10);
    }
    bucket
}

/// A lightweight span scope: measures from [`Timer::start`] until
/// [`Span::stop`] (or drop) and records the duration into its timer.
#[derive(Debug)]
pub struct Span {
    timer: Timer,
    started: Instant,
    recorded: bool,
}

impl Span {
    /// Stops the span, records the elapsed time, and returns it.
    pub fn stop(mut self) -> Duration {
        let elapsed = self.started.elapsed();
        self.timer.record(elapsed);
        self.recorded = true;
        elapsed
    }

    /// Stops the span, records the elapsed time, and returns it in seconds
    /// — the shape legacy `elapsed_secs` fields report.
    pub fn stop_secs(self) -> f64 {
        self.stop().as_secs_f64()
    }

    /// Elapsed time so far without stopping the span.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.recorded {
            self.timer.record(self.started.elapsed());
            self.recorded = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let clone = c.clone();
        clone.inc();
        assert_eq!(c.get(), 43, "clones share state");
    }

    #[test]
    fn gauge_last_write_and_max() {
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
        g.set_max(2);
        assert_eq!(g.get(), 3);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn gauge_add_sub_saturates_at_zero() {
        let g = Gauge::new();
        g.add(3);
        g.sub(1);
        assert_eq!(g.get(), 2);
        g.sub(10);
        assert_eq!(g.get(), 0, "sub saturates instead of wrapping");
    }

    #[test]
    fn timer_records_statistics() {
        let t = Timer::new();
        t.record(Duration::from_micros(5));
        t.record(Duration::from_micros(50));
        assert_eq!(t.count(), 2);
        assert!(t.total_secs() >= 55e-6 - 1e-9);
        assert!(t.min_secs() <= 5e-6 + 1e-9);
        assert!(t.max_secs() >= 50e-6 - 1e-9);
        assert_eq!(t.buckets().iter().sum::<u64>(), 2);
    }

    #[test]
    fn span_records_on_stop_and_on_drop() {
        let t = Timer::new();
        let span = t.start();
        assert!(span.elapsed() >= Duration::ZERO);
        let d = span.stop();
        assert_eq!(t.count(), 1);
        assert!(d >= Duration::ZERO);
        {
            let _span = t.start();
        }
        assert_eq!(t.count(), 2, "drop records unfinished spans");
        let secs = t.start().stop_secs();
        assert!(secs >= 0.0);
        assert_eq!(t.count(), 3);
    }

    #[test]
    fn buckets_are_decades() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(99), 0);
        assert_eq!(bucket_of(100), 1);
        assert_eq!(bucket_of(999), 1);
        assert_eq!(bucket_of(1_000), 2);
        assert_eq!(bucket_of(999_999_999), 7);
        assert_eq!(bucket_of(1_000_000_000), 8);
        assert_eq!(bucket_of(u64::MAX), TIMER_BUCKETS - 1);
    }

    #[test]
    fn timer_stats_snapshot_is_coherent_under_contention() {
        // Every observation is exactly 1000 ns, so any coherent snapshot
        // must satisfy total_ns == 1000 * count; a torn read (count from
        // after a record, total from before) breaks the equation.
        let t = Timer::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let t = t.clone();
                scope.spawn(move || {
                    for _ in 0..5_000 {
                        t.record(Duration::from_nanos(1_000));
                    }
                });
            }
            let reader = t.clone();
            scope.spawn(move || {
                for _ in 0..2_000 {
                    let s = reader.stats();
                    let total_ns = (s.total_secs * 1e9).round() as u64;
                    assert_eq!(
                        total_ns,
                        1_000 * s.count,
                        "stats() returned a torn snapshot"
                    );
                    assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
                }
            });
        });
        let s = t.stats();
        assert_eq!(s.count, 20_000);
        assert_eq!(s.total_secs, 0.02);
        assert_eq!(s.min_secs, 1e-6);
        assert_eq!(s.max_secs, 1e-6);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}
