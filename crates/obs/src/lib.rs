//! Observability substrate for `scanft`: counters, gauges, histogram-style
//! timers and span scopes behind a thread-safe registry, with JSON-lines
//! export.
//!
//! The paper's experimental claims are all *counting* claims — tests
//! generated, UIO search nodes expanded, fault batches simulated, detections
//! per test — so every stage of the pipeline reports its work through this
//! crate rather than through ad-hoc fields and print statements.
//!
//! # Design
//!
//! - **No external dependencies.** Everything is built on atomics and a
//!   registration-time `Mutex`, both taken from the `scanft-race` sync
//!   facade so the deterministic model checker can schedule them.
//! - **No locks on the counter/gauge hot path.** A [`Counter`], [`Gauge`]
//!   or [`Timer`] is a clonable handle around an `Arc` of atomics;
//!   registration takes the registry lock once, after which counter and
//!   gauge updates are single relaxed atomic operations. Timer
//!   observations serialize on a tiny per-timer writer lock so the
//!   count/total/min/max/bucket statistics stay mutually coherent (see
//!   [`Timer::stats`]). Fetch handles outside loops.
//! - **Deterministic export.** [`Registry::to_jsonl`] emits one JSON object
//!   per metric, sorted by name, so exports diff cleanly and golden tests
//!   can pin the schema.
//!
//! # Example
//!
//! ```
//! use scanft_obs::Registry;
//!
//! let registry = Registry::new();
//! let tests = registry.counter("core.generate.tests_emitted");
//! tests.add(9);
//! let timer = registry.timer("core.generate_secs");
//! let span = timer.start();
//! // ... do the work ...
//! let secs = span.stop_secs();
//! assert!(secs >= 0.0);
//! assert_eq!(tests.get(), 9);
//! let jsonl = registry.to_jsonl();
//! assert!(jsonl.contains("\"name\":\"core.generate.tests_emitted\",\"value\":9"));
//! ```
//!
//! Most callers use the process-wide registry via [`global`]; the CLI's
//! `--metrics` flag exports it after a command finishes.
//!
//! # Metric namespaces
//!
//! Names are dot-separated, prefixed by the reporting crate or stage:
//! `fsm.*`, `synth.*`, `sim.campaign.*`, `atpg.*` (including
//! `atpg.deadline_aborts`), `core.generate.*`, `core.top_up.*` (including
//! `core.top_up.budget_stops`), and `harness.*` for the resilience layer —
//! `harness.units_completed`, `harness.units_quarantined`,
//! `harness.deadline_hits`, `harness.unitcap_hits`, and the
//! `harness.chaos.*` injection counters.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod export;
mod metric;
mod registry;

pub use export::{escape_json_string, MetricSnapshot, SnapshotValue};
pub use metric::{Counter, Gauge, Span, Timer, TimerStats, TIMER_BUCKETS};
pub use registry::{global, Registry};
