//! JSON-lines rendering of metric snapshots.
//!
//! One JSON object per metric, schema pinned by the CLI golden test:
//!
//! ```text
//! {"kind":"counter","name":"core.generate.tests_emitted","value":9}
//! {"kind":"gauge","name":"synth.gates","value":23}
//! {"kind":"timer","name":"core.generate_secs","count":1,"total_secs":1.23e-5,"min_secs":1.23e-5,"max_secs":1.23e-5,"buckets":[0,0,0,1,0,0,0,0,0]}
//! ```

use crate::metric::TIMER_BUCKETS;

/// A point-in-time copy of one metric's value.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Timer statistics.
    Timer {
        /// Number of observations.
        count: u64,
        /// Sum of observations in seconds.
        total_secs: f64,
        /// Shortest observation in seconds (0.0 when `count == 0`).
        min_secs: f64,
        /// Longest observation in seconds (0.0 when `count == 0`).
        max_secs: f64,
        /// Decade bucket counts (see [`TIMER_BUCKETS`]).
        buckets: [u64; TIMER_BUCKETS],
    },
}

/// A named metric value, as captured by `Registry::snapshot`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric name.
    pub name: String,
    /// Captured value.
    pub value: SnapshotValue,
}

impl MetricSnapshot {
    /// Renders the snapshot as one JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let name = escape_json_string(&self.name);
        match &self.value {
            SnapshotValue::Counter(v) => {
                format!("{{\"kind\":\"counter\",\"name\":\"{name}\",\"value\":{v}}}")
            }
            SnapshotValue::Gauge(v) => {
                format!("{{\"kind\":\"gauge\",\"name\":\"{name}\",\"value\":{v}}}")
            }
            SnapshotValue::Timer {
                count,
                total_secs,
                min_secs,
                max_secs,
                buckets,
            } => {
                let buckets = buckets
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "{{\"kind\":\"timer\",\"name\":\"{name}\",\"count\":{count},\
                     \"total_secs\":{},\"min_secs\":{},\"max_secs\":{},\
                     \"buckets\":[{buckets}]}}",
                    json_f64(*total_secs),
                    json_f64(*min_secs),
                    json_f64(*max_secs),
                )
            }
        }
    }
}

fn json_f64(v: f64) -> String {
    // Durations are always finite; guard anyway so the output stays valid
    // JSON no matter what a caller records.
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

/// Escapes a string for inclusion inside a JSON string literal.
#[must_use]
pub fn escape_json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_lines() {
        let c = MetricSnapshot {
            name: "a.b".into(),
            value: SnapshotValue::Counter(7),
        };
        assert_eq!(
            c.to_json(),
            "{\"kind\":\"counter\",\"name\":\"a.b\",\"value\":7}"
        );
        let g = MetricSnapshot {
            name: "g".into(),
            value: SnapshotValue::Gauge(0),
        };
        assert_eq!(
            g.to_json(),
            "{\"kind\":\"gauge\",\"name\":\"g\",\"value\":0}"
        );
    }

    #[test]
    fn timer_line_shape() {
        let t = MetricSnapshot {
            name: "t".into(),
            value: SnapshotValue::Timer {
                count: 2,
                total_secs: 0.5,
                min_secs: 0.25,
                max_secs: 0.25,
                buckets: [0, 0, 0, 0, 0, 0, 0, 2, 0],
            },
        };
        assert_eq!(
            t.to_json(),
            "{\"kind\":\"timer\",\"name\":\"t\",\"count\":2,\"total_secs\":0.5,\
             \"min_secs\":0.25,\"max_secs\":0.25,\"buckets\":[0,0,0,0,0,0,0,2,0]}"
        );
    }

    #[test]
    fn escaping() {
        assert_eq!(escape_json_string("plain.name"), "plain.name");
        assert_eq!(escape_json_string("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json_string("x\ny"), "x\\ny");
        assert_eq!(escape_json_string("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_stay_valid_json() {
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
