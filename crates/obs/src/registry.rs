//! The metric registry: name → handle, plus the process-wide instance.
//!
//! Registration takes a `Mutex` once per `counter`/`gauge`/`timer` call and
//! returns a lock-free handle; instrumented code fetches handles outside its
//! hot loops. Names are sorted (`BTreeMap`) so exports are deterministic.
//!
//! The lock is the `scanft-race` facade `Mutex`: it never poisons (a
//! panicking registrant cannot wedge every later metrics export) and its
//! operations are scheduling points under the deterministic model checker.

use std::collections::BTreeMap;

use scanft_race::sync::{Mutex, OnceLock};

use crate::export::{MetricSnapshot, SnapshotValue};
use crate::metric::{Counter, Gauge, Timer};

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Timer(Timer),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Timer(_) => "timer",
        }
    }
}

/// A named collection of metrics.
///
/// Most code uses the process-wide [`global`] registry; fresh instances
/// exist for tests and for embedding scanft as a library in a host with its
/// own metrics plumbing.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        match self.register(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Returns the gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.register(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Returns the timer named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn timer(&self, name: &str) -> Timer {
        match self.register(name, || Metric::Timer(Timer::new())) {
            Metric::Timer(t) => t,
            other => panic!("metric `{name}` is a {}, not a timer", other.kind()),
        }
    }

    fn register(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.metrics.lock();
        metrics.entry(name.to_owned()).or_insert_with(make).clone()
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.lock().len()
    }

    /// Whether no metric has been registered yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of every metric, sorted by name. Timer values
    /// come from [`crate::TimerStats`] snapshots, so each timer's fields
    /// are mutually coherent even while other threads keep recording.
    #[must_use]
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let metrics = self.metrics.lock();
        metrics
            .iter()
            .map(|(name, metric)| MetricSnapshot {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                    Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    Metric::Timer(t) => {
                        let stats = t.stats();
                        SnapshotValue::Timer {
                            count: stats.count,
                            total_secs: stats.total_secs,
                            min_secs: stats.min_secs,
                            max_secs: stats.max_secs,
                            buckets: stats.buckets,
                        }
                    }
                },
            })
            .collect()
    }

    /// Renders every metric as JSON lines (one object per metric, sorted by
    /// name, trailing newline). See [`MetricSnapshot::to_json`] for the
    /// per-line schema.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for snapshot in self.snapshot() {
            out.push_str(&snapshot.to_json());
            out.push('\n');
        }
        out
    }
}

/// The process-wide registry used by the instrumented pipeline and exported
/// by the CLI's `--metrics` flag.
#[must_use]
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_shared_handle() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").add(3);
        assert_eq!(r.counter("a").get(), 5);
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let r = Registry::new();
        r.counter("zeta").inc();
        r.gauge("alpha").set(1);
        let _ = r.timer("mid");
        let names: Vec<String> = r.snapshot().into_iter().map(|s| s.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn global_is_shared() {
        // Only touch names namespaced to this test: the global registry is
        // process-wide and other tests may run in parallel.
        global().counter("obs.test.global_is_shared").add(7);
        assert_eq!(global().counter("obs.test.global_is_shared").get(), 7);
    }

    #[test]
    fn registration_is_thread_safe() {
        let r = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = &r;
                scope.spawn(move || {
                    for i in 0..100 {
                        r.counter(&format!("c{}", i % 10)).inc();
                    }
                });
            }
        });
        assert_eq!(r.len(), 10);
        let total: u64 = (0..10).map(|i| r.counter(&format!("c{i}")).get()).sum();
        assert_eq!(total, 400);
    }
}
