//! Micro-benchmark: the functional test generation procedure itself (the
//! kernel behind Table 5).

use scanft_bench::harness;
use scanft_core::generate::{generate, per_transition_baseline, GenConfig};
use scanft_fsm::benchmarks;
use scanft_fsm::uio::{derive_uios_with, UioConfig};
use std::hint::black_box;

fn bench_generate() {
    let mut group = harness::group("generate/functional");
    group.sample_size(20);
    for name in ["lion", "dk16", "mark1", "keyb", "dvram"] {
        let table = benchmarks::build(name).expect("registry circuit");
        let uios = derive_uios_with(&table, &UioConfig::with_max_len(table.num_state_vars()));
        group.bench(name, || {
            black_box(generate(&table, &uios, &GenConfig::default()))
        });
    }
}

fn bench_generate_no_transfer() {
    // Table 8's configuration: transfers disabled.
    let mut group = harness::group("generate/no_transfer");
    let table = benchmarks::build("dk16").expect("registry circuit");
    let uios = derive_uios_with(&table, &UioConfig::with_max_len(table.num_state_vars()));
    let config = GenConfig {
        transfer_max_len: 0,
        ..GenConfig::default()
    };
    group.bench("dk16", || black_box(generate(&table, &uios, &config)));
}

fn bench_baseline() {
    let mut group = harness::group("generate/per_transition_baseline");
    let table = benchmarks::build("keyb").expect("registry circuit");
    group.bench("keyb", || black_box(per_transition_baseline(&table)));
}

fn main() {
    bench_generate();
    bench_generate_no_transfer();
    bench_baseline();
}
