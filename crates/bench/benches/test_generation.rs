//! Criterion micro-benchmark: the functional test generation procedure
//! itself (the kernel behind Table 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scanft_core::generate::{generate, per_transition_baseline, GenConfig};
use scanft_fsm::benchmarks;
use scanft_fsm::uio::{derive_uios_with, UioConfig};
use std::hint::black_box;

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate/functional");
    group.sample_size(20);
    for name in ["lion", "dk16", "mark1", "keyb", "dvram"] {
        let table = benchmarks::build(name).expect("registry circuit");
        let uios = derive_uios_with(&table, &UioConfig::with_max_len(table.num_state_vars()));
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(&table, &uios),
            |b, (table, uios)| {
                b.iter(|| black_box(generate(table, uios, &GenConfig::default())));
            },
        );
    }
    group.finish();
}

fn bench_generate_no_transfer(c: &mut Criterion) {
    // Table 8's configuration: transfers disabled.
    let mut group = c.benchmark_group("generate/no_transfer");
    let table = benchmarks::build("dk16").expect("registry circuit");
    let uios = derive_uios_with(&table, &UioConfig::with_max_len(table.num_state_vars()));
    let config = GenConfig {
        transfer_max_len: 0,
        ..GenConfig::default()
    };
    group.bench_function("dk16", |b| {
        b.iter(|| black_box(generate(&table, &uios, &config)));
    });
    group.finish();
}

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate/per_transition_baseline");
    let table = benchmarks::build("keyb").expect("registry circuit");
    group.bench_function("keyb", |b| {
        b.iter(|| black_box(per_transition_baseline(&table)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generate,
    bench_generate_no_transfer,
    bench_baseline
);
criterion_main!(benches);
