//! Micro-benchmark: FSM-to-gates synthesis (cover extraction, exact
//! two-level minimization, mapping).

use scanft_bench::harness;
use scanft_fsm::benchmarks;
use scanft_synth::{cover, minimize, synthesize, Encoding, SynthConfig};
use std::hint::black_box;

fn bench_synthesize() {
    let mut group = harness::group("synth/full_flow");
    group.sample_size(20);
    for name in ["lion", "dk16", "mark1", "opus"] {
        let table = benchmarks::build(name).expect("registry circuit");
        group.bench(name, || {
            black_box(synthesize(black_box(&table), &SynthConfig::default()))
        });
    }
}

fn bench_minimize() {
    let mut group = harness::group("synth/minimize_cover");
    let table = benchmarks::build("mark1").expect("registry circuit");
    let spec = cover::extract(&table, Encoding::Binary);
    // The widest output cover of mark1.
    let widest = spec
        .covers
        .iter()
        .max_by_key(|c| c.cubes.len())
        .expect("mark1 has covers")
        .clone();
    group.bench("mark1/widest_output", || {
        black_box(minimize::minimize_cover(black_box(&widest)))
    });
}

fn bench_encodings() {
    let mut group = harness::group("synth/encodings");
    let table = benchmarks::build("dk16").expect("registry circuit");
    for (label, encoding) in [("binary", Encoding::Binary), ("gray", Encoding::Gray)] {
        let config = SynthConfig {
            encoding,
            ..SynthConfig::default()
        };
        group.bench(label, || black_box(synthesize(&table, &config)));
    }
}

fn main() {
    bench_synthesize();
    bench_minimize();
    bench_encodings();
}
