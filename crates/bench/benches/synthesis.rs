//! Criterion micro-benchmark: FSM-to-gates synthesis (cover extraction,
//! exact two-level minimization, mapping).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scanft_fsm::benchmarks;
use scanft_synth::{cover, minimize, synthesize, Encoding, SynthConfig};
use std::hint::black_box;

fn bench_synthesize(c: &mut Criterion) {
    let mut group = c.benchmark_group("synth/full_flow");
    group.sample_size(20);
    for name in ["lion", "dk16", "mark1", "opus"] {
        let table = benchmarks::build(name).expect("registry circuit");
        group.bench_with_input(BenchmarkId::from_parameter(name), &table, |b, table| {
            b.iter(|| black_box(synthesize(black_box(table), &SynthConfig::default())));
        });
    }
    group.finish();
}

fn bench_minimize(c: &mut Criterion) {
    let mut group = c.benchmark_group("synth/minimize_cover");
    let table = benchmarks::build("mark1").expect("registry circuit");
    let spec = cover::extract(&table, Encoding::Binary);
    // The widest output cover of mark1.
    let widest = spec
        .covers
        .iter()
        .max_by_key(|c| c.cubes.len())
        .expect("mark1 has covers")
        .clone();
    group.bench_function("mark1/widest_output", |b| {
        b.iter(|| black_box(minimize::minimize_cover(black_box(&widest))));
    });
    group.finish();
}

fn bench_encodings(c: &mut Criterion) {
    let mut group = c.benchmark_group("synth/encodings");
    let table = benchmarks::build("dk16").expect("registry circuit");
    for (label, encoding) in [("binary", Encoding::Binary), ("gray", Encoding::Gray)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &encoding, |b, &enc| {
            let config = SynthConfig {
                encoding: enc,
                ..SynthConfig::default()
            };
            b.iter(|| black_box(synthesize(&table, &config)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_synthesize, bench_minimize, bench_encodings);
criterion_main!(benches);
