//! Micro-benchmark: 64-lane fault-parallel scan-test simulation (the
//! kernel behind Tables 3 and 6).

use scanft_bench::harness;
use scanft_core::generate::{generate, GenConfig};
use scanft_fsm::{benchmarks, uio};
use scanft_sim::{campaign, faults};
use scanft_synth::{synthesize, SynthConfig};
use std::hint::black_box;

struct Setup {
    circuit: scanft_synth::SynthesizedCircuit,
    tests: Vec<scanft_sim::ScanTest>,
    stuck: Vec<faults::Fault>,
    bridges: Vec<faults::Fault>,
}

fn setup(name: &str) -> Setup {
    let table = benchmarks::build(name).expect("registry circuit");
    let uios = uio::derive_uios(&table, table.num_state_vars());
    let set = generate(&table, &uios, &GenConfig::default());
    let circuit = synthesize(&table, &SynthConfig::default());
    let tests = set.to_scan_tests(&circuit);
    let stuck = faults::as_fault_list(&faults::enumerate_stuck(circuit.netlist()));
    let bridges =
        faults::bridges_as_fault_list(&faults::enumerate_bridging(circuit.netlist(), 200).faults);
    Setup {
        circuit,
        tests,
        stuck,
        bridges,
    }
}

fn bench_stuck_campaign() {
    let mut group = harness::group("fault_sim/stuck_campaign");
    group.sample_size(20);
    for name in ["lion", "dk16", "ex3"] {
        let s = setup(name);
        group.bench(name, || {
            black_box(campaign::run_decreasing_length(
                s.circuit.netlist(),
                &s.tests,
                &s.stuck,
            ))
        });
    }
}

fn bench_bridging_campaign() {
    let mut group = harness::group("fault_sim/bridging_campaign");
    group.sample_size(20);
    for name in ["lion", "dk16"] {
        let s = setup(name);
        group.bench(name, || {
            black_box(campaign::run_decreasing_length(
                s.circuit.netlist(),
                &s.tests,
                &s.bridges,
            ))
        });
    }
}

fn bench_delay_campaign() {
    let mut group = harness::group("fault_sim/delay_campaign");
    group.sample_size(20);
    for name in ["lion", "dk16"] {
        let s = setup(name);
        let delays = faults::delays_as_fault_list(&faults::enumerate_delay(s.circuit.netlist()));
        group.bench(name, || {
            black_box(campaign::run_decreasing_length(
                s.circuit.netlist(),
                &s.tests,
                &delays,
            ))
        });
    }
}

fn bench_exhaustive_classification() {
    let mut group = harness::group("fault_sim/exhaustive_classify");
    let s = setup("lion");
    group.bench("lion/first_stuck", || {
        black_box(scanft_sim::exhaustive::is_detectable(
            s.circuit.netlist(),
            &s.stuck[0],
            1 << 20,
        ))
    });
}

fn main() {
    bench_stuck_campaign();
    bench_bridging_campaign();
    bench_delay_campaign();
    bench_exhaustive_classification();
}
