//! Micro-benchmark: UIO sequence derivation (the kernel behind Table 4;
//! the paper's dominant cost, up to 5650 s for `dvram`).

use scanft_bench::harness;
use scanft_fsm::uio::{derive_uios_with, UioConfig};
use scanft_fsm::{benchmarks, uio};
use std::hint::black_box;

fn bench_derive_all_states() {
    let mut group = harness::group("uio/derive_all_states");
    group.sample_size(20);
    for name in ["lion", "dk512", "dk16", "mark1", "keyb"] {
        let table = benchmarks::build(name).expect("registry circuit");
        let config = UioConfig::with_max_len(table.num_state_vars());
        group.bench(name, || {
            black_box(derive_uios_with(black_box(&table), &config))
        });
    }
}

fn bench_single_state() {
    let mut group = harness::group("uio/single_state");
    let table = benchmarks::build("dk16").expect("registry circuit");
    let config = UioConfig::with_max_len(table.num_state_vars());
    group.bench("dk16/state0", || {
        black_box(uio::find_uio(black_box(&table), 0, &config))
    });
}

fn bench_length_sweep() {
    // Table 9's shape: derivation cost versus the length bound L.
    let mut group = harness::group("uio/length_sweep_dk512");
    let table = benchmarks::build("dk512").expect("registry circuit");
    for limit in [1usize, 2, 3, 4, 5] {
        let config = UioConfig::with_max_len(limit);
        group.bench(&limit.to_string(), || {
            black_box(derive_uios_with(black_box(&table), &config))
        });
    }
}

fn main() {
    bench_derive_all_states();
    bench_single_state();
    bench_length_sweep();
}
