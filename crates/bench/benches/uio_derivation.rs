//! Criterion micro-benchmark: UIO sequence derivation (the kernel behind
//! Table 4; the paper's dominant cost, up to 5650 s for `dvram`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scanft_fsm::uio::{derive_uios_with, UioConfig};
use scanft_fsm::{benchmarks, uio};
use std::hint::black_box;

fn bench_derive_all_states(c: &mut Criterion) {
    let mut group = c.benchmark_group("uio/derive_all_states");
    group.sample_size(20);
    for name in ["lion", "dk512", "dk16", "mark1", "keyb"] {
        let table = benchmarks::build(name).expect("registry circuit");
        let config = UioConfig::with_max_len(table.num_state_vars());
        group.bench_with_input(BenchmarkId::from_parameter(name), &table, |b, table| {
            b.iter(|| black_box(derive_uios_with(black_box(table), &config)));
        });
    }
    group.finish();
}

fn bench_single_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("uio/single_state");
    let table = benchmarks::build("dk16").expect("registry circuit");
    let config = UioConfig::with_max_len(table.num_state_vars());
    group.bench_function("dk16/state0", |b| {
        b.iter(|| black_box(uio::find_uio(black_box(&table), 0, &config)));
    });
    group.finish();
}

fn bench_length_sweep(c: &mut Criterion) {
    // Table 9's shape: derivation cost versus the length bound L.
    let mut group = c.benchmark_group("uio/length_sweep_dk512");
    let table = benchmarks::build("dk512").expect("registry circuit");
    for limit in [1usize, 2, 3, 4, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(limit), &limit, |b, &limit| {
            let config = UioConfig::with_max_len(limit);
            b.iter(|| black_box(derive_uios_with(black_box(&table), &config)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_derive_all_states,
    bench_single_state,
    bench_length_sweep
);
criterion_main!(benches);
