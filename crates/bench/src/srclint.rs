//! Source-invariant concurrency lints: the static gate behind `race_lint`.
//!
//! The `scanft-race` model checker only proves what the facade sees. One
//! raw `std::sync::Mutex`, one `std::thread::spawn`, one wall-clock read
//! in a replayed path silently re-opens the schedule space the model
//! explores — so those invariants are enforced here, at the source level,
//! as deny-by-default lints reusing the [`scanft_analyze`] diagnostic
//! model. The rules:
//!
//! | code | invariant |
//! |------|-----------|
//! | `raw-std-sync` | sync primitives come from `scanft_race::sync`, never `std::sync` |
//! | `raw-thread-spawn` | threads spawn/sleep/yield via `scanft_race::thread` |
//! | `wall-clock-in-replay` | no `Instant::now`/`SystemTime::now` in files marked `race-lint: deterministic-replay` |
//! | `relaxed-ordering-policy` | `Ordering::Relaxed` only in files marked `race-lint: statistics-counters` |
//! | `lock-poison-expect` | no `.expect`/`.unwrap` on lock or condvar-wait results |
//!
//! # Scope and escape hatches
//!
//! The scanner is a text-level heuristic, deliberately dependency-free
//! (no `syn`): string literals and line comments are scrubbed before
//! matching, `#[cfg(test)]` modules are exempt (tests may race real
//! threads on purpose), and `crates/race` itself is exempt from the
//! facade rules (it *is* the facade). A single line can be waived with a
//! trailing `// race-lint: allow(code-name)` comment; zone markers
//! (`race-lint: deterministic-replay`, `race-lint: statistics-counters`)
//! apply file-wide and live in the module doc of the files they govern.
//! Block comments are not stripped — the workspace style uses line
//! comments exclusively.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use scanft_analyze::{Diagnostic, LintCode, LintLevels, LintReport, Severity};

/// The lint codes this scanner can emit, in report order.
pub const RACE_LINTS: &[LintCode] = &[
    LintCode::RawStdSync,
    LintCode::RawThreadSpawn,
    LintCode::WallClockInReplay,
    LintCode::RelaxedOrderingPolicy,
    LintCode::LockPoisonExpect,
];

/// File-wide marker exempting a statistics-counter file from the
/// `relaxed-ordering-policy` rule.
pub const STATS_ZONE_MARKER: &str = "race-lint: statistics-counters";

/// File-wide marker putting a file under the `wall-clock-in-replay` rule.
pub const REPLAY_ZONE_MARKER: &str = "race-lint: deterministic-replay";

/// Replaces the contents of string and char literals with spaces so
/// pattern matching cannot fire inside literals (and `//` inside a string
/// is not mistaken for a comment). Lifetimes (`'a`) pass through.
fn scrub_literals(line: &str) -> String {
    let chars: Vec<char> = line.chars().collect();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '"' => {
                out.push('"');
                i += 1;
                while i < chars.len() {
                    if chars[i] == '\\' {
                        i += 2;
                    } else if chars[i] == '"' {
                        out.push('"');
                        i += 1;
                        break;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
            }
            '\'' => {
                // Char literal ('x', '\n', '\'') vs lifetime ('a).
                if i + 1 < chars.len() && chars[i + 1] == '\\' {
                    out.push_str("' '");
                    i += 2;
                    while i < chars.len() && chars[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                } else if i + 2 < chars.len() && chars[i + 2] == '\'' {
                    out.push_str("' '");
                    i += 3;
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// Splits a scrubbed line into code (before `//`) and nothing else we
/// need: the comment text is consulted on the *raw* line for waivers.
fn strip_comment(scrubbed: &str) -> &str {
    match scrubbed.find("//") {
        Some(pos) => &scrubbed[..pos],
        None => scrubbed,
    }
}

/// Lint codes waived for one line by a `race-lint: allow(a, b)` comment.
fn line_waivers(raw: &str) -> Vec<LintCode> {
    const KEY: &str = "race-lint: allow(";
    let Some(pos) = raw.find(KEY) else {
        return Vec::new();
    };
    let rest = &raw[pos + KEY.len()..];
    let Some(end) = rest.find(')') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .filter_map(|name| LintCode::parse(name.trim()))
        .collect()
}

/// `.expect(`/`.unwrap(` chained onto a lock acquisition or condvar wait.
fn unwraps_poison(code: &str) -> bool {
    for probe in [".lock()", ".read()", ".write()"] {
        if let Some(pos) = code.find(probe) {
            let after = &code[pos + probe.len()..];
            if after.starts_with(".expect(") || after.starts_with(".unwrap(") {
                return true;
            }
        }
    }
    // Condvar waits consume the guard by value: `.wait(guard)`. A call
    // whose first argument is borrowed (or absent) is some other `wait` —
    // e.g. the HTTP client's poll — and returns an ordinary Result.
    if let Some(pos) = code.find(".wait(") {
        let arg = &code[pos + ".wait(".len()..];
        if !arg.starts_with('&')
            && !arg.starts_with(')')
            && (code.contains(").expect(") || code.contains(").unwrap("))
        {
            return true;
        }
    }
    false
}

/// Scans one file's text and reports every violation.
///
/// `path` labels the diagnostics (`path:line` loci); `crate_name` is the
/// directory name under `crates/` (the facade crate `race` is exempt from
/// the facade-usage rules).
#[must_use]
pub fn lint_source(path: &str, crate_name: &str, text: &str, levels: &LintLevels) -> LintReport {
    let mut report = LintReport::default();
    let facade_crate = crate_name == "race";
    let replay_zone = text.contains(REPLAY_ZONE_MARKER);
    let stats_zone = text.contains(STATS_ZONE_MARKER);

    // Brace-depth tracking for the #[cfg(test)] module heuristic: once the
    // attribute's item opens a brace, everything until the matching close
    // is test code and exempt.
    let mut depth: i64 = 0;
    let mut pending_test_attr = false;
    let mut exempt_above: Option<i64> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let scrubbed = scrub_literals(raw);
        let code = strip_comment(&scrubbed);
        let delta = code.chars().filter(|&c| c == '{').count() as i64
            - code.chars().filter(|&c| c == '}').count() as i64;

        if let Some(floor) = exempt_above {
            depth += delta;
            if depth <= floor {
                exempt_above = None;
            }
            continue;
        }
        if code.contains("#[cfg(test)]") {
            pending_test_attr = true;
        }
        if pending_test_attr {
            if code.contains('{') {
                let floor = depth;
                depth += delta;
                exempt_above = if depth > floor { Some(floor) } else { None };
                pending_test_attr = false;
            } else if code.trim_end().ends_with(';') {
                // `#[cfg(test)] use …;` — gates one braceless item only.
                pending_test_attr = false;
                depth += delta;
            }
            continue;
        }

        let waived = line_waivers(raw);
        let mut emit = |code: LintCode, message: String, suggestion: &str| {
            if waived.contains(&code) {
                return;
            }
            let severity = levels.level(code);
            if severity == Severity::Allow {
                return;
            }
            report.push(Diagnostic {
                severity,
                code,
                locus: format!("{path}:{line_no}"),
                message,
                suggestion: Some(suggestion.to_owned()),
            });
        };

        if !facade_crate && code.contains("std::sync") {
            emit(
                LintCode::RawStdSync,
                "direct `std::sync` use bypasses the scanft-race facade".to_owned(),
                "import the primitive from `scanft_race::sync` instead",
            );
        }
        if !facade_crate && code.contains("std::thread") {
            emit(
                LintCode::RawThreadSpawn,
                "direct `std::thread` use bypasses the scanft-race facade".to_owned(),
                "spawn/sleep/yield via `scanft_race::thread` instead",
            );
        }
        if replay_zone && (code.contains("Instant::now") || code.contains("SystemTime::now")) {
            emit(
                LintCode::WallClockInReplay,
                "wall-clock read inside a deterministic-replay file".to_owned(),
                "replayed paths must not branch on real time; pass timestamps in or derive them from records",
            );
        }
        if !facade_crate && !stats_zone && code.contains("Ordering::Relaxed") {
            emit(
                LintCode::RelaxedOrderingPolicy,
                "`Ordering::Relaxed` outside the statistics-counter zone".to_owned(),
                "use Acquire/Release (or AcqRel) orderings; only counter-only files marked `race-lint: statistics-counters` may relax",
            );
        }
        if unwraps_poison(code) {
            emit(
                LintCode::LockPoisonExpect,
                "lock or condvar-wait result unwrapped; poisoning would cascade".to_owned(),
                "the `scanft_race::sync` Mutex/Condvar never poison — drop the `.expect`/`.unwrap`",
            );
        }

        depth += delta;
    }
    report
}

/// Every `.rs` file under `<crates_root>/*/src`, tagged with its crate
/// directory name, in sorted order (stable report output).
///
/// # Errors
///
/// Propagates filesystem errors from the walk.
pub fn workspace_sources(crates_root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut files = Vec::new();
    for entry in fs::read_dir(crates_root)? {
        let entry = entry?;
        let src = entry.path().join("src");
        if !src.is_dir() {
            continue;
        }
        let crate_name = entry.file_name().to_string_lossy().into_owned();
        collect_rs(&src, &crate_name, &mut files)?;
    }
    files.sort();
    Ok(files.into_iter().map(|(_, n, p)| (n, p)).collect())
}

fn collect_rs(
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<(String, String, PathBuf)>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push((path.display().to_string(), crate_name.to_owned(), path));
        }
    }
    Ok(())
}

/// Lints every source file under `<crates_root>/*/src`; returns the merged
/// report and the number of files scanned.
///
/// # Errors
///
/// Propagates filesystem errors from the walk or a file read.
pub fn lint_workspace(crates_root: &Path, levels: &LintLevels) -> io::Result<(LintReport, usize)> {
    let sources = workspace_sources(crates_root)?;
    let mut report = LintReport::default();
    let count = sources.len();
    for (crate_name, path) in sources {
        let text = fs::read_to_string(&path)?;
        report.merge(lint_source(
            &path.display().to_string(),
            &crate_name,
            &text,
            levels,
        ));
    }
    Ok((report, count))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(crate_name: &str, text: &str) -> LintReport {
        lint_source("test.rs", crate_name, text, &LintLevels::default())
    }

    fn codes(report: &LintReport) -> Vec<LintCode> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn raw_sync_and_spawn_are_denied_outside_the_facade_crate() {
        let text = "use std::sync::Mutex;\nlet h = std::thread::spawn(|| ());\n";
        let report = lint("server", text);
        assert_eq!(
            codes(&report),
            vec![LintCode::RawStdSync, LintCode::RawThreadSpawn]
        );
        assert_eq!(report.num_deny(), 2);
        assert_eq!(report.diagnostics[0].locus, "test.rs:1");
        // The facade crate itself is exempt: it wraps std.
        assert!(lint("race", text).passes());
    }

    #[test]
    fn string_literals_and_comments_do_not_fire() {
        let text = concat!(
            "// a comment naming std::sync::Mutex is fine\n",
            "/// so is a doc comment: std::thread::spawn\n",
            "let pattern = \"std::sync\"; // literal, scrubbed\n",
            "let url = \"https://example.com\"; let x = std::marker::PhantomData::<()>;\n",
        );
        assert!(lint("server", text).passes());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let text = concat!(
            "pub fn real() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    use std::sync::Mutex;\n",
            "    fn helper() { std::thread::spawn(|| ()); }\n",
            "}\n",
        );
        assert!(lint("server", text).passes());
        // …but code after the test module is linted again.
        let trailing = format!("{text}use std::sync::Arc;\n");
        assert_eq!(
            codes(&lint("server", &trailing)),
            vec![LintCode::RawStdSync]
        );
    }

    #[test]
    fn line_waiver_suppresses_exactly_the_named_code() {
        let waived = "use std::sync::Mutex; // race-lint: allow(raw-std-sync)\n";
        assert!(lint("server", waived).passes());
        let wrong = "use std::sync::Mutex; // race-lint: allow(raw-thread-spawn)\n";
        assert_eq!(codes(&lint("server", wrong)), vec![LintCode::RawStdSync]);
    }

    #[test]
    fn wall_clock_only_fires_in_replay_zone_files() {
        let free = "let t = Instant::now();\n";
        assert!(lint("bench", free).passes());
        let zoned = format!("//! race-lint: deterministic-replay\n{free}");
        assert_eq!(
            codes(&lint("bench", &zoned)),
            vec![LintCode::WallClockInReplay]
        );
    }

    #[test]
    fn relaxed_ordering_needs_the_statistics_marker() {
        let bare = "counter.fetch_add(1, Ordering::Relaxed);\n";
        assert_eq!(
            codes(&lint("harness", bare)),
            vec![LintCode::RelaxedOrderingPolicy]
        );
        let marked = format!("//! race-lint: statistics-counters\n{bare}");
        assert!(lint("harness", &marked).passes());
    }

    #[test]
    fn poisoning_unwraps_are_caught() {
        for bad in [
            "let g = state.lock().expect(\"poisoned\");\n",
            "let g = state.lock().unwrap();\n",
            "let g = rw.read().expect(\"poisoned\");\n",
            "inner = cv.wait(inner).expect(\"poisoned\");\n",
        ] {
            assert_eq!(
                codes(&lint("server", bad)),
                vec![LintCode::LockPoisonExpect],
                "{bad}"
            );
        }
        // The facade returns plain guards: no Result, nothing to unwrap.
        assert!(lint("server", "let g = state.lock();\n").passes());
        // Non-condvar waits (borrowed or no argument) are fine to unwrap.
        assert!(lint(
            "bench",
            "let done = client.wait(&id, WAIT).expect(\"wait\");\n"
        )
        .passes());
        assert!(lint("bench", "let status = child.wait().expect(\"child\");\n").passes());
    }

    #[test]
    fn levels_can_downgrade_a_rule() {
        let mut levels = LintLevels::default();
        levels.set(LintCode::RawStdSync, Severity::Warn);
        let report = lint_source("t.rs", "server", "use std::sync::Arc;\n", &levels);
        assert_eq!(report.num_deny(), 0);
        assert_eq!(report.num_warn(), 1);
        levels.set(LintCode::RawStdSync, Severity::Allow);
        let report = lint_source("t.rs", "server", "use std::sync::Arc;\n", &levels);
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn scrubber_handles_char_literals_and_escapes() {
        assert_eq!(scrub_literals("'{' => x"), "' ' => x");
        assert_eq!(scrub_literals("'\\n' => y"), "' ' => y");
        // Lifetimes survive untouched.
        assert_eq!(
            scrub_literals("fn f<'a>(x: &'a str)"),
            "fn f<'a>(x: &'a str)"
        );
        // Unbalanced braces inside strings cannot skew depth tracking.
        let s = scrub_literals("let j = format!(\"{{\\\"k\\\":1\");");
        assert!(!s.contains('{'));
    }
}
