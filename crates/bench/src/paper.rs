//! The paper's published numbers, embedded verbatim for side-by-side
//! comparison in the table-regeneration binaries.
//!
//! Notes on transcription:
//!
//! - Table 7's bridging percentage column in the paper divides by the
//!   *functional-test* cycle count rather than the per-transition baseline
//!   for most rows (e.g. lion: 31/48 = 64.58); the stuck-at column divides
//!   by the baseline. Values are reproduced exactly as printed; our
//!   regenerated tables use the baseline denominator throughout.
//! - Times are HP J210 CPU seconds and are reported for shape only.

/// One circuit's published results across Tables 4–7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Circuit name.
    pub name: &'static str,
    /// Table 4: states with UIO sequences.
    pub t4_unique: usize,
    /// Table 4: maximum UIO length.
    pub t4_mlen: usize,
    /// Table 4: derivation time (HP J210 seconds).
    pub t4_time: f64,
    /// Table 5: number of functional tests.
    pub t5_tests: usize,
    /// Table 5: total test length.
    pub t5_len: usize,
    /// Table 5: percent of transitions tested by length-1 tests.
    pub t5_1len: f64,
    /// Table 5: generation time (HP J210 seconds).
    pub t5_time: f64,
    /// Table 6: effective stuck-at tests / their length / fault counts.
    pub t6_sa: (usize, usize, usize, usize, f64),
    /// Table 6: effective bridging tests / their length / fault counts.
    pub t6_br: (usize, usize, usize, usize, f64),
    /// Table 7: per-transition baseline cycles.
    pub t7_trans: u64,
    /// Table 7: functional-test cycles and percentage.
    pub t7_funct: (u64, f64),
    /// Table 7: stuck-at effective-test cycles and percentage.
    pub t7_sa: (u64, f64),
    /// Table 7: bridging effective-test cycles and percentage.
    pub t7_br: (u64, f64),
}

/// Rows of Tables 4–7, in the paper's order.
pub const PAPER_ROWS: &[PaperRow] = &[
    row(
        "bbara",
        4,
        4,
        11.49,
        202,
        434,
        63.28,
        0.10,
        (29, 133, 138, 138, 100.00),
        (9, 85, 192, 192, 100.00),
        1284,
        (1246, 97.04),
        (253, 19.70),
        (125, 10.03),
    ),
    row(
        "bbsse",
        13,
        3,
        7.64,
        1515,
        2914,
        62.70,
        35.18,
        (36, 765, 238, 238, 100.00),
        (15, 673, 656, 656, 100.00),
        10244,
        (8978, 87.64),
        (913, 8.91),
        (737, 8.21),
    ),
    row(
        "bbtas",
        1,
        3,
        0.08,
        28,
        44,
        75.00,
        0.00,
        (12, 28, 63, 63, 100.00),
        (6, 22, 64, 64, 100.00),
        131,
        (131, 100.00),
        (67, 51.15),
        (43, 32.82),
    ),
    row(
        "beecount",
        5,
        3,
        0.05,
        32,
        153,
        40.62,
        0.04,
        (5, 93, 112, 110, 98.21),
        (2, 83, 166, 166, 100.00),
        259,
        (252, 97.30),
        (111, 42.86),
        (92, 36.51),
    ),
    row(
        "cse",
        15,
        3,
        36.21,
        1436,
        3141,
        59.96,
        60.06,
        (42, 959, 357, 355, 99.44),
        (20, 703, 1604, 1597, 99.56),
        10244,
        (8889, 86.77),
        (1131, 11.04),
        (787, 8.85),
    ),
    row(
        "dk14",
        1,
        1,
        0.08,
        51,
        82,
        64.06,
        0.03,
        (29, 60, 208, 207, 99.52),
        (13, 40, 362, 362, 100.00),
        259,
        (238, 91.89),
        (150, 57.92),
        (82, 34.45),
    ),
    row(
        "dk15",
        3,
        2,
        0.02,
        11,
        76,
        15.62,
        0.01,
        (8, 69, 151, 151, 100.00),
        (2, 40, 140, 140, 100.00),
        98,
        (100, 102.04),
        (87, 88.78),
        (46, 46.00),
    ),
    row(
        "dk16",
        23,
        3,
        4.70,
        63,
        317,
        26.56,
        0.22,
        (30, 266, 532, 530, 99.62),
        (8, 169, 1942, 1942, 100.00),
        773,
        (637, 82.41),
        (421, 54.46),
        (214, 33.59),
    ),
    row(
        "dk17",
        6,
        2,
        0.03,
        20,
        53,
        43.75,
        0.01,
        (10, 43, 128, 128, 100.00),
        (2, 24, 120, 120, 100.00),
        131,
        (116, 88.55),
        (76, 58.02),
        (33, 28.45),
    ),
    row(
        "dk27",
        5,
        3,
        0.01,
        8,
        40,
        31.25,
        0.01,
        (2, 22, 67, 67, 100.00),
        (1, 18, 50, 50, 100.00),
        67,
        (67, 100.00),
        (31, 46.27),
        (24, 35.82),
    ),
    row(
        "dk512",
        6,
        4,
        0.14,
        25,
        58,
        59.38,
        0.01,
        (14, 41, 124, 124, 100.00),
        (2, 17, 136, 136, 100.00),
        164,
        (162, 98.78),
        (101, 61.59),
        (29, 17.90),
    ),
    row(
        "dvram",
        48,
        6,
        5649.94,
        12088,
        33891,
        61.71,
        907.91,
        (18, 696, 425, 425, 100.00),
        (19, 826, 2672, 2672, 100.00),
        114_694,
        (106_425, 92.79),
        (810, 0.71),
        (946, 0.89),
    ),
    row(
        "ex2",
        14,
        4,
        2.36,
        93,
        256,
        53.91,
        0.12,
        (27, 148, 312, 312, 100.00),
        (6, 74, 802, 799, 99.63),
        773,
        (726, 93.92),
        (288, 37.26),
        (109, 15.01),
    ),
    row(
        "ex3",
        10,
        3,
        0.26,
        41,
        130,
        54.69,
        0.04,
        (10, 82, 153, 153, 100.00),
        (1, 52, 242, 241, 99.59),
        324,
        (298, 91.98),
        (126, 38.89),
        (60, 20.13),
    ),
    row(
        "ex4",
        9,
        4,
        18.98,
        384,
        1006,
        55.86,
        0.83,
        (20, 248, 176, 176, 100.00),
        (9, 231, 288, 288, 100.00),
        2564,
        (2546, 99.30),
        (332, 12.95),
        (271, 10.64),
    ),
    row(
        "ex5",
        7,
        3,
        0.08,
        17,
        73,
        21.88,
        0.01,
        (9, 42, 152, 138, 90.79),
        (6, 39, 210, 210, 100.00),
        131,
        (127, 96.95),
        (72, 54.96),
        (60, 47.24),
    ),
    row(
        "ex6",
        8,
        1,
        0.11,
        76,
        501,
        15.23,
        0.63,
        (9, 324, 229, 229, 100.00),
        (6, 310, 660, 658, 99.70),
        1027,
        (732, 71.28),
        (354, 34.47),
        (331, 45.22),
    ),
    row(
        "ex7",
        10,
        3,
        0.29,
        44,
        125,
        57.81,
        0.04,
        (15, 85, 160, 159, 99.38),
        (5, 71, 238, 238, 100.00),
        324,
        (305, 94.14),
        (149, 45.99),
        (95, 31.15),
    ),
    row(
        "fetch",
        24,
        4,
        473.35,
        11347,
        26100,
        55.40,
        1272.69,
        (34, 863, 345, 342, 99.13),
        (44, 1628, 1564, 1564, 100.00),
        98_309,
        (82_840, 84.26),
        (1038, 1.06),
        (1853, 2.24),
    ),
    row(
        "keyb",
        21,
        4,
        266.42,
        3528,
        5312,
        82.35,
        172.71,
        (62, 1161, 470, 470, 100.00),
        (30, 1084, 3194, 3177, 99.47),
        24_581,
        (22_957, 93.39),
        (1476, 6.00),
        (1239, 5.40),
    ),
    row(
        "lion",
        2,
        2,
        0.00,
        9,
        28,
        25.00,
        0.00,
        (4, 21, 40, 40, 100.00),
        (4, 21, 18, 17, 94.44),
        50,
        (48, 96.00),
        (31, 62.00),
        (31, 64.58),
    ),
    row(
        "lion9",
        2,
        2,
        0.01,
        22,
        56,
        46.88,
        0.01,
        (7, 32, 62, 59, 95.16),
        (3, 25, 52, 51, 98.08),
        131,
        (125, 95.42),
        (56, 42.75),
        (37, 29.60),
    ),
    row(
        "log",
        13,
        5,
        639.51,
        11520,
        34560,
        51.42,
        533.81,
        (24, 1141, 313, 312, 99.68),
        (37, 1685, 1618, 1617, 99.94),
        98_309,
        (92_165, 93.75),
        (1266, 1.29),
        (1875, 2.03),
    ),
    row(
        "mark1",
        12,
        4,
        2.82,
        109,
        653,
        35.16,
        0.38,
        (9, 400, 204, 203, 99.51),
        (4, 392, 532, 532, 100.00),
        1284,
        (1093, 85.12),
        (440, 34.27),
        (412, 37.69),
    ),
    row(
        "mc",
        4,
        1,
        0.00,
        9,
        57,
        25.00,
        0.01,
        (3, 51, 73, 73, 100.00),
        (2, 50, 54, 54, 100.00),
        98,
        (77, 78.57),
        (59, 60.20),
        (56, 72.73),
    ),
    row(
        "nucpwr",
        20,
        5,
        1887.44,
        172_032,
        446_464,
        44.53,
        373_906.81,
        (39, 300, 447, 447, 100.00),
        (91, 752, 3238, 3237, 99.97),
        1_572_869,
        (1_306_629, 83.07),
        (500, 0.03),
        (1212, 0.09),
    ),
    row(
        "opus",
        7,
        1,
        2.78,
        378,
        698,
        54.10,
        0.23,
        (22, 97, 181, 181, 100.00),
        (14, 82, 452, 451, 99.78),
        2564,
        (2214, 86.35),
        (189, 7.37),
        (142, 6.41),
    ),
    row(
        "rie",
        28,
        5,
        3042.78,
        11037,
        31457,
        57.50,
        2311.50,
        (42, 1145, 552, 548, 99.28),
        (58, 1876, 4214, 4213, 99.98),
        98_309,
        (86_647, 88.14),
        (1360, 1.38),
        (2171, 2.51),
    ),
    row(
        "shiftreg",
        8,
        3,
        0.01,
        13,
        27,
        75.00,
        0.00,
        (2, 16, 28, 28, 100.00),
        (1, 15, 8, 8, 100.00),
        67,
        (69, 102.99),
        (25, 37.31),
        (21, 30.43),
    ),
    row(
        "tav",
        2,
        2,
        0.07,
        33,
        125,
        25.00,
        0.01,
        (2, 62, 64, 64, 100.00),
        (2, 64, 86, 86, 100.00),
        194,
        (193, 99.48),
        (68, 35.05),
        (70, 36.27),
    ),
    row(
        "train11",
        2,
        3,
        0.11,
        53,
        93,
        65.62,
        0.02,
        (11, 39, 104, 104, 100.00),
        (6, 32, 132, 132, 100.00),
        324,
        (309, 95.37),
        (87, 26.85),
        (60, 19.42),
    ),
];

#[allow(clippy::too_many_arguments)]
const fn row(
    name: &'static str,
    t4_unique: usize,
    t4_mlen: usize,
    t4_time: f64,
    t5_tests: usize,
    t5_len: usize,
    t5_1len: f64,
    t5_time: f64,
    t6_sa: (usize, usize, usize, usize, f64),
    t6_br: (usize, usize, usize, usize, f64),
    t7_trans: u64,
    t7_funct: (u64, f64),
    t7_sa: (u64, f64),
    t7_br: (u64, f64),
) -> PaperRow {
    PaperRow {
        name,
        t4_unique,
        t4_mlen,
        t4_time,
        t5_tests,
        t5_len,
        t5_1len,
        t5_time,
        t6_sa,
        t6_br,
        t7_trans,
        t7_funct,
        t7_sa,
        t7_br,
    }
}

/// Looks up a circuit's paper row.
#[must_use]
pub fn paper_row(name: &str) -> Option<&'static PaperRow> {
    PAPER_ROWS.iter().find(|r| r.name == name)
}

/// Table 8 of the paper: generation without transfer sequences
/// `(circuit, trans, tests, len, 1len, cycles, pct)`.
pub const PAPER_TABLE8: &[(&str, usize, usize, usize, f64, u64, f64)] = &[
    ("bbtas", 32, 28, 44, 75.00, 131, 100.00),
    ("dk15", 32, 23, 46, 59.38, 94, 95.92),
    ("dk27", 16, 12, 26, 62.50, 65, 97.01),
    ("shiftreg", 16, 14, 22, 81.25, 67, 100.00),
];

/// One row of a Table 9 sweep: `(unique, limit, tests, len, 1len, cycles, pct)`.
pub type SweepRow = (usize, usize, usize, usize, f64, u64, f64);

/// Table 9 of the paper: UIO length-limit sweeps per circuit.
pub const PAPER_TABLE9: &[(&str, &[SweepRow])] = &[
    (
        "dk512",
        &[
            (0, 1, 32, 32, 100.00, 164, 100.00),
            (1, 2, 29, 39, 81.25, 159, 96.95),
            (4, 3, 23, 60, 46.88, 156, 95.12),
            (6, 4, 25, 58, 59.38, 162, 98.78),
            (8, 5, 24, 67, 56.25, 167, 101.83),
        ],
    ),
    (
        "ex4",
        &[
            (0, 1, 512, 512, 100.00, 2564, 100.00),
            (5, 2, 400, 800, 56.25, 2404, 93.76),
            (7, 3, 352, 992, 37.50, 2404, 93.76),
            (9, 4, 384, 1006, 55.86, 2546, 99.30),
            (11, 5, 384, 1101, 67.38, 2641, 103.00),
            (13, 6, 384, 1197, 72.85, 2737, 106.75),
            (16, 7, 384, 1197, 72.85, 2737, 106.75),
        ],
    ),
    (
        "mark1",
        &[
            (2, 1, 222, 306, 75.00, 1198, 93.30),
            (6, 2, 123, 610, 35.55, 1106, 86.14),
            (11, 3, 111, 649, 35.55, 1097, 85.44),
            (12, 4, 109, 653, 35.16, 1093, 85.12),
        ],
    ),
    (
        "rie",
        &[
            (3, 1, 13961, 19888, 73.87, 89_698, 91.24),
            (17, 2, 12048, 24544, 59.35, 84_789, 86.25),
            (24, 3, 11036, 30434, 57.49, 85_619, 87.09),
            (25, 4, 11036, 30946, 57.50, 86_131, 87.61),
            (28, 5, 11036, 31458, 57.50, 86_643, 88.13),
            (29, 6, 11036, 31586, 57.50, 86_771, 88.26),
            (30, 7, 10052, 32640, 50.25, 87_405, 88.91),
            (32, 8, 10882, 35079, 61.16, 89_494, 91.03),
        ],
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_all_circuits_in_order() {
        assert_eq!(PAPER_ROWS.len(), scanft_fsm::benchmarks::CIRCUITS.len());
        for (r, c) in PAPER_ROWS.iter().zip(scanft_fsm::benchmarks::CIRCUITS) {
            assert_eq!(r.name, c.name);
        }
    }

    #[test]
    fn trans_cycles_match_formula() {
        // The paper's Table 7 `trans` column is N_SV*(trans+1) + trans.
        for row in PAPER_ROWS {
            let spec = scanft_fsm::benchmarks::find_spec(row.name).unwrap();
            let trans = spec.num_transitions() as u64;
            let expect = spec.num_state_vars as u64 * (trans + 1) + trans;
            assert_eq!(row.t7_trans, expect, "{}", row.name);
        }
    }

    #[test]
    fn table6_effective_cycles_match_table7() {
        // Table 7's s.a. column recomputes from Table 6's tsts/len columns.
        for row in PAPER_ROWS {
            let spec = scanft_fsm::benchmarks::find_spec(row.name).unwrap();
            let sv = spec.num_state_vars as u64;
            let (tsts, len, ..) = row.t6_sa;
            assert_eq!(
                row.t7_sa.0,
                sv * (tsts as u64 + 1) + len as u64,
                "{} stuck-at",
                row.name
            );
            let (tsts, len, ..) = row.t6_br;
            assert_eq!(
                row.t7_br.0,
                sv * (tsts as u64 + 1) + len as u64,
                "{} bridging",
                row.name
            );
        }
    }

    #[test]
    fn lookup_works() {
        assert_eq!(paper_row("lion").unwrap().t5_tests, 9);
        assert!(paper_row("nope").is_none());
    }
}
