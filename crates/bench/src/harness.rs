//! A minimal, dependency-free micro-benchmark harness.
//!
//! The workspace builds fully offline, so the Criterion dev-dependency is
//! replaced by this std-based harness: same group/id structure, automatic
//! iteration-count calibration, and min/median/mean reporting. Samples are
//! also recorded into the [`scanft_obs`] global registry (timer
//! `bench.<group>.<id>`), so `SCANFT_METRICS=file cargo bench` leaves a
//! machine-readable trace next to the human-readable report.
//!
//! # Example
//!
//! ```no_run
//! let mut group = scanft_bench::harness::group("uio/derive_all_states");
//! group.bench("lion", || {
//!     // ... the measured work ...
//! });
//! ```

use std::time::{Duration, Instant};

/// Target wall-clock duration of one sample (many iterations per sample).
const TARGET_SAMPLE: Duration = Duration::from_millis(2);

/// Starts a benchmark group; `name` prefixes every reported id.
#[must_use]
pub fn group(name: &str) -> Group {
    Group {
        name: name.to_owned(),
        sample_size: 20,
    }
}

/// A named collection of benchmarks sharing a sample count.
#[derive(Debug)]
pub struct Group {
    name: String,
    sample_size: usize,
}

impl Group {
    /// Sets the number of samples per benchmark (default 20, minimum 5).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Runs one benchmark: calibrates an iteration count so a sample takes
    /// roughly the internal target duration, collects samples, and prints
    /// statistics.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) {
        // Calibration: grow the iteration count until a sample is long
        // enough to time reliably.
        let mut iters: u64 = 1;
        loop {
            let elapsed = time_iters(&mut f, iters);
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
                break;
            }
            // Aim straight at the target with a 2x cap per step.
            let scale = (TARGET_SAMPLE.as_nanos() as f64 / elapsed.as_nanos().max(1) as f64)
                .clamp(1.2, 2.0);
            iters = ((iters as f64 * scale).ceil() as u64).max(iters + 1);
        }

        let timer = scanft_obs::global().timer(&format!("bench.{}.{id}", self.name));
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let elapsed = time_iters(&mut f, iters);
            timer.record(elapsed);
            per_iter_ns.push(elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(f64::total_cmp);
        let min = per_iter_ns[0];
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        println!(
            "{:<44} time: [min {}, median {}, mean {}] ({} samples x {} iters)",
            format!("{}/{id}", self.name),
            format_ns(min),
            format_ns(median),
            format_ns(mean),
            self.sample_size,
            iters,
        );
    }
}

fn time_iters<R>(f: &mut impl FnMut() -> R, iters: u64) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed()
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut g = group("harness.selftest");
        g.sample_size(5).bench("noop", || 1 + 1);
        let timer = scanft_obs::global().timer("bench.harness.selftest.noop");
        assert!(timer.count() >= 5);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(1.0), "1.0 ns");
        assert_eq!(format_ns(1500.0), "1.50 us");
        assert_eq!(format_ns(2_500_000.0), "2.50 ms");
        assert_eq!(format_ns(3_000_000_000.0), "3.000 s");
    }
}
