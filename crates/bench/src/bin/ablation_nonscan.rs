//! Ablation (beyond the paper's tables): scan versus non-scan functional
//! testing — the paper's concluding claim, measured.
//!
//! "Earlier procedures that did not use scan did not report complete fault
//! coverage of gate-level faults. This points to the effectiveness of
//! scan-based functional tests." For each circuit this binary generates
//! both test styles and compares:
//!
//! - functional transition-fault coverage (non-scan observes only the
//!   primary outputs and can only reach/verify what reset reaches);
//! - gate-level stuck-at coverage on the synthesized implementation.

use scanft_bench::{pct, plan_circuits, Args, Budget};
use scanft_core::generate::{generate, GenConfig};
use scanft_core::nonscan::{generate_nonscan, NonScanConfig};
use scanft_fsm::sta::{self, StaUniverse};
use scanft_fsm::uio::{derive_uios_with, UioConfig};
use scanft_fsm::{benchmarks, StateId};
use scanft_sim::{campaign, faults, ScanTest};
use scanft_synth::{synthesize, SynthConfig};

fn main() {
    let args = Args::parse();
    println!("Ablation: scan-based vs non-scan functional tests");
    println!();
    println!("  circuit  | verified% || sta: scan% | nonscan% || stuck-at: scan% | nonscan%");
    scanft_bench::rule(80);
    for (spec, run) in plan_circuits(&args, Budget::GateLevel) {
        if !run {
            println!("  {:<8} | {:>60}", spec.name, "skipped(budget)");
            continue;
        }
        let table = benchmarks::build(spec.name).expect("registry circuit");
        let uios = derive_uios_with(&table, &UioConfig::with_max_len(table.num_state_vars()));

        // Scan-based tests (the paper's procedure).
        let scan_set = generate(&table, &uios, &GenConfig::default());
        // Non-scan tests (reset-applied, PO-observed).
        let nonscan = generate_nonscan(&table, &uios, &NonScanConfig::default());

        // Functional transition-fault coverage. The Full universe has
        // trans * (states * 2^outputs - 1) faults — switch to sampling
        // before it explodes (e.g. mark1's 16 outputs).
        let full_size = spec.num_transitions()
            * (spec.num_states << spec.num_outputs.min(20)).saturating_sub(1);
        let universe = if full_size <= 4096 {
            StaUniverse::Full
        } else {
            StaUniverse::Sampled(0xD5A7)
        };
        let sta_faults = sta::enumerate(&table, universe);
        let scan_tests: Vec<(StateId, Vec<u32>)> = scan_set
            .tests
            .iter()
            .map(|t| (t.initial_state, t.inputs.clone()))
            .collect();
        let sta_scan = sta::coverage(&table, &scan_tests, &sta_faults);
        let sta_nonscan = sta::coverage_observing(&table, &nonscan.as_tests(0), &sta_faults, false);

        // Gate-level stuck-at coverage.
        let circuit = synthesize(&table, &SynthConfig::default());
        let stuck = faults::as_fault_list(&faults::enumerate_stuck(circuit.netlist()));
        let gate_scan = campaign::run(circuit.netlist(), &scan_set.to_scan_tests(&circuit), &stuck);
        let nonscan_gate_tests: Vec<ScanTest> = nonscan
            .sequences
            .iter()
            .map(|seq| ScanTest::new(circuit.encode_state(0), seq.clone()))
            .collect();
        let order: Vec<usize> = (0..nonscan_gate_tests.len()).collect();
        let gate_nonscan = campaign::run_ordered_observing(
            circuit.netlist(),
            &nonscan_gate_tests,
            &order,
            &stuck,
            false,
        );

        println!(
            "  {:<8} | {:>8} || {:>10} | {:>8} || {:>15} | {:>8}",
            spec.name,
            pct(nonscan.percent_verified(&table)),
            pct(sta_scan.coverage_percent()),
            pct(sta_nonscan.coverage_percent()),
            pct(gate_scan.coverage_percent()),
            pct(gate_nonscan.coverage_percent()),
        );
        assert!(
            sta_scan.detected() >= sta_nonscan.detected(),
            "{}: scan must dominate non-scan on transition faults",
            spec.name
        );
    }
    scanft_bench::rule(80);
    println!("  claim reproduced when the scan columns dominate the non-scan columns;");
    println!("  `verified%` is the fraction of transitions whose next state the");
    println!("  non-scan tests can verify at all (UIO exists and state reachable).");
}
