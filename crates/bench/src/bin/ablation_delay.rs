//! Ablation (beyond the paper's tables): at-speed detection of transition-
//! delay faults.
//!
//! The paper's first stated benefit of chaining transitions is that "the
//! circuit is tested at-speed during the application of test sequences
//! whose length is larger than one. This may contribute to the detection of
//! delay defects that are not detected if each state-transition is tested
//! separately" — claimed, never measured. Here both test sets run against
//! gross transition-delay faults (slow-to-rise/fall on every net): the
//! per-transition baseline applies exactly one at-speed cycle per test and
//! can never launch a transition, so its coverage is **zero by
//! construction**; the chained functional tests launch transitions at every
//! internal cycle.

use scanft_bench::{pct, plan_circuits, Args, Budget};
use scanft_core::generate::{generate, per_transition_baseline, GenConfig};
use scanft_fsm::benchmarks;
use scanft_fsm::uio::{derive_uios_with, UioConfig};
use scanft_sim::{campaign, faults};
use scanft_synth::{synthesize, SynthConfig};

fn main() {
    let args = Args::parse();
    println!("Ablation: transition-delay fault coverage (at-speed benefit of chaining)");
    println!();
    println!("  circuit  | delay faults | funct.det |  funct.% || baseline.det | baseline.%");
    scanft_bench::rule(84);
    let mut sum_funct = 0.0;
    let mut rows = 0usize;
    for (spec, run) in plan_circuits(&args, Budget::GateLevel) {
        if !run {
            println!("  {:<8} | {:>62}", spec.name, "skipped(budget)");
            continue;
        }
        let table = benchmarks::build(spec.name).expect("registry circuit");
        let uios = derive_uios_with(&table, &UioConfig::with_max_len(table.num_state_vars()));
        let set = generate(&table, &uios, &GenConfig::default());
        let circuit = synthesize(&table, &SynthConfig::default());
        let delays = faults::enumerate_delay(circuit.netlist());
        let list = faults::delays_as_fault_list(&delays);

        let funct = campaign::run(circuit.netlist(), &set.to_scan_tests(&circuit), &list);
        let base_set = per_transition_baseline(&table);
        let base = campaign::run(circuit.netlist(), &base_set.to_scan_tests(&circuit), &list);

        sum_funct += funct.coverage_percent();
        rows += 1;
        println!(
            "  {:<8} | {:>12} | {:>9} | {:>7} || {:>12} | {:>9}",
            spec.name,
            list.len(),
            funct.detected(),
            pct(funct.coverage_percent()),
            base.detected(),
            pct(base.coverage_percent()),
        );
        assert_eq!(
            base.detected(),
            0,
            "{}: a length-1 test cannot launch a transition",
            spec.name
        );
    }
    scanft_bench::rule(84);
    if rows > 0 {
        println!(
            "  average functional delay coverage over {rows} circuits: {} (baseline: 0.00)",
            pct(sum_funct / rows as f64)
        );
    }
    println!();
    println!("chained functional tests detect a substantial share of delay defects that");
    println!("one-transition-per-test application misses entirely — the paper's at-speed");
    println!("claim, quantified.");
}
