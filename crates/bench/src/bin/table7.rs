//! Table 7 of the paper: clock cycles for test application.
//!
//! Columns: per-transition baseline (`trans`, matches the paper exactly —
//! it depends only on the published parameters), the functional tests, and
//! the effective tests after stuck-at / bridging simulation. All our
//! percentages are relative to the baseline (the paper's bridging column
//! divides by the functional cycles instead; its printed values are shown
//! verbatim for reference).

use scanft_bench::{paper::paper_row, pct, plan_circuits, Args, Budget};
use scanft_core::cycles::percent_of;
use scanft_core::flow::{run_flow, FlowConfig};
use scanft_fsm::benchmarks;

fn main() {
    let args = Args::parse();
    println!("Table 7: Numbers of clock cycles (N_SV*(N_T+1) + N_PIC)");
    println!();
    println!(
        "  circuit  |   trans ||  funct |      % ||   s.a. |     % || bridg |     % || paper:  funct% |  s.a.% | bridg%"
    );
    scanft_bench::rule(112);
    let mut funct_pcts: Vec<f64> = Vec::new();
    for (spec, run) in plan_circuits(&args, Budget::GateLevel) {
        let p = paper_row(spec.name).expect("paper row exists");
        let gate_ok = run;
        let funct_ok = args.full
            || !args.only.is_empty()
            || scanft_bench::within_budget(spec, Budget::Functional);
        if !funct_ok {
            println!(
                "  {:<8} | {:>7} || {:>42} || {:>14} | {:>6} | {:>6}",
                spec.name,
                p.t7_trans,
                "skipped(budget)",
                pct(p.t7_funct.1),
                pct(p.t7_sa.1),
                pct(p.t7_br.1)
            );
            continue;
        }
        let table = benchmarks::build(spec.name).expect("registry circuit");
        let config = FlowConfig {
            gate_level: gate_ok,
            ..FlowConfig::default()
        };
        let report = run_flow(&table, &config);
        assert_eq!(report.baseline_cycles, p.t7_trans, "{}", spec.name);
        funct_pcts.push(report.functional_percent());
        let (sa_txt, br_txt) = match &report.gate {
            Some(gate) => (
                format!(
                    "{:>6} | {:>5}",
                    gate.stuck.effective_cycles,
                    pct(percent_of(
                        gate.stuck.effective_cycles,
                        report.baseline_cycles
                    ))
                ),
                format!(
                    "{:>5} | {:>6}",
                    gate.bridging.effective_cycles,
                    pct(percent_of(
                        gate.bridging.effective_cycles,
                        report.baseline_cycles
                    ))
                ),
            ),
            None => ("   (functional only)".to_owned(), String::new()),
        };
        println!(
            "  {:<8} | {:>7} || {:>6} | {:>6} || {} || {} || {:>14} | {:>6} | {:>6}",
            spec.name,
            report.baseline_cycles,
            report.functional_cycles,
            pct(report.functional_percent()),
            sa_txt,
            br_txt,
            pct(p.t7_funct.1),
            pct(p.t7_sa.1),
            pct(p.t7_br.1)
        );
    }
    scanft_bench::rule(112);
    if !funct_pcts.is_empty() {
        let avg = funct_pcts.iter().sum::<f64>() / funct_pcts.len() as f64;
        println!(
            "  average functional-test percentage over {} rows: {}  (paper, all 31 rows: 92.09)",
            funct_pcts.len(),
            pct(avg)
        );
    }
}
