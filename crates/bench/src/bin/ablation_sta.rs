//! Ablation (beyond the paper's tables): coverage of **single
//! state-transition faults** by the generated functional tests.
//!
//! Section 2 of the paper claims the chained tests detect these faults with
//! only rare maskings ("faults may affect the unique input-output
//! sequences; however, this is expected to affect the coverage … only
//! rarely") but reports no numbers. This binary measures it: the
//! per-transition baseline detects 100 % by construction; the column to
//! watch is how close the chained functional tests come.

use scanft_bench::{pct, plan_circuits, Args, Budget};
use scanft_core::generate::{generate, per_transition_baseline, GenConfig};
use scanft_fsm::sta::{self, StaUniverse};
use scanft_fsm::uio::{derive_uios_with, UioConfig};
use scanft_fsm::{benchmarks, StateId};

fn main() {
    let args = Args::parse();
    println!("Ablation: single state-transition fault coverage of the functional tests");
    println!("(universe: Full for machines with <= 4096 faults, else Sampled)");
    println!();
    println!("  circuit  | universe |  faults | funct.det |  funct.% | masked || baseline.%");
    scanft_bench::rule(86);
    let mut total_faults = 0usize;
    let mut total_masked = 0usize;
    for (spec, run) in plan_circuits(&args, Budget::Functional) {
        if !run {
            println!("  {:<8} | {:>62}", spec.name, "skipped(budget)");
            continue;
        }
        let table = benchmarks::build(spec.name).expect("registry circuit");
        let uios = derive_uios_with(&table, &UioConfig::with_max_len(table.num_state_vars()));
        let set = generate(&table, &uios, &GenConfig::default());
        let full_size = spec.num_transitions()
            * (spec.num_states << spec.num_outputs.min(20)).saturating_sub(1);
        let (label, universe) = if full_size <= 4096 {
            ("Full", StaUniverse::Full)
        } else {
            ("Sampled", StaUniverse::Sampled(0xD5A7))
        };
        let faults = sta::enumerate(&table, universe);
        let tests: Vec<(StateId, Vec<u32>)> = set
            .tests
            .iter()
            .map(|t| (t.initial_state, t.inputs.clone()))
            .collect();
        let funct = sta::coverage(&table, &tests, &faults);
        let base_tests: Vec<(StateId, Vec<u32>)> = per_transition_baseline(&table)
            .tests
            .iter()
            .map(|t| (t.initial_state, t.inputs.clone()))
            .collect();
        let base = sta::coverage(&table, &base_tests, &faults);
        let masked = faults.len() - funct.detected();
        total_faults += faults.len();
        total_masked += masked;
        println!(
            "  {:<8} | {:>8} | {:>7} | {:>9} | {:>8} | {:>6} || {:>10}",
            spec.name,
            label,
            faults.len(),
            funct.detected(),
            pct(funct.coverage_percent()),
            masked,
            pct(base.coverage_percent()),
        );
        assert_eq!(
            base.detected(),
            faults.len(),
            "{}: the per-transition baseline must detect every transition fault",
            spec.name
        );
    }
    scanft_bench::rule(86);
    println!(
        "  total: {total_masked} of {total_faults} transition faults masked ({}%) — the paper's",
        pct(100.0 * total_masked as f64 / total_faults.max(1) as f64)
    );
    println!("  \"only rarely\" claim, quantified.");
}
