//! Table 3 of the paper: stuck-at fault simulation of the nine `lion`
//! functional tests in decreasing length order, with effectiveness marks.
//!
//! The nine tests and the simulation order (tau_4, tau_1, tau_2, tau_3,
//! tau_0, tau_5..tau_8) reproduce the paper exactly; fault counts are for
//! our gate-level implementation (the paper's netlist had 40 uncollapsed
//! faults, ours carries its own line-fault count — see DESIGN.md on implementation
//! substitution).

use scanft_core::generate::{generate, GenConfig};
use scanft_fsm::uio;
use scanft_sim::{campaign, faults};
use scanft_synth::{synthesize, SynthConfig};

fn main() {
    let lion = scanft_fsm::benchmarks::lion();
    let uios = uio::derive_uios(&lion, lion.num_state_vars());
    let set = generate(&lion, &uios, &GenConfig::default());
    assert_eq!(set.tests.len(), 9, "lion must yield the paper's nine tests");

    let circuit = synthesize(&lion, &SynthConfig::default());
    let scan_tests = set.to_scan_tests(&circuit);
    let stuck = faults::enumerate_stuck(circuit.netlist());
    let list = faults::as_fault_list(&stuck);
    let report = campaign::run_decreasing_length(circuit.netlist(), &scan_tests, &list);
    let rows = campaign::effectiveness_table(&scan_tests, &report);

    // The paper's Table 3 (length, detected, effective) with its order.
    let paper_rows: [(&str, usize, usize, usize); 9] = [
        ("tau_4", 7, 17, 1),
        ("tau_1", 6, 37, 1),
        ("tau_2", 4, 39, 1),
        ("tau_3", 4, 40, 1),
        ("tau_0", 3, 40, 0),
        ("tau_5", 1, 40, 0),
        ("tau_6", 1, 40, 0),
        ("tau_7", 1, 40, 0),
        ("tau_8", 1, 40, 0),
    ];

    println!("Table 3: Stuck-at fault simulation for lion");
    println!(
        "(ours: {} line faults; paper: 40 faults on its own netlist)",
        list.len()
    );
    println!();
    println!("  test  | length | detected | effective ||  paper: len | det | eff");
    scanft_bench::rule(66);
    let mut order_matches = true;
    for (row, paper) in rows.iter().zip(paper_rows) {
        let name = format!("tau_{}", row.test);
        if name != paper.0 || row.length != paper.1 {
            order_matches = false;
        }
        println!(
            "  {name:<5} | {:>6} | {:>8} | {:>9} ||  {:>10} | {:>3} | {:>3}",
            row.length,
            row.cumulative_detected,
            u8::from(row.effective),
            paper.1,
            paper.2,
            paper.3,
        );
    }
    println!();
    let effective = report.effective_tests();
    println!(
        "ours: {} of 9 tests effective, {}/{} faults detected (paper: 4 of 9, 40/40)",
        effective.len(),
        report.detected(),
        list.len()
    );
    println!(
        "simulation order and test lengths match the paper: {}",
        if order_matches { "yes" } else { "NO" }
    );
    assert!(order_matches, "order/lengths deviate from Table 3");
}
