//! Simulation-kernel throughput benchmark: narrow (64-lane, full
//! re-evaluation) versus wide (256-lane, cone-restricted event-driven
//! PPSFP) on suite circuits, emitting `BENCH_sim.json`.
//!
//! For every circuit the same stuck-at campaign — per-transition length-1
//! scan tests with fault dropping — runs on both kernels. Each run is
//! timed over several repetitions (best-of to shave scheduler noise) and
//! reports:
//!
//! * `gate_evals_per_sec` — faulty gate evaluations per second, from the
//!   engines' own counters (the wide kernel evaluates *fewer* gates, not
//!   just wider words — that is the point of PPSFP);
//! * `faults_per_sec` — campaign faults retired per second of simulation,
//!   the end-to-end figure of merit;
//! * `speedup` — wide over narrow `faults_per_sec`.
//!
//! The wide report is compared verdict-for-verdict against the narrow one
//! before anything is timed as a trusted number; a mismatch exits 1
//! immediately. `--check` additionally fails the run if any circuit's wide
//! kernel is slower than its narrow kernel, so CI can gate on regressions.
//!
//! Usage: `kernel_bench [--out FILE] [--circuits a,b,c] [--reps N] [--check]`

use std::time::Instant;

use scanft_sim::campaign;
use scanft_sim::faults::{self, Fault};
use scanft_sim::ScanTest;
use scanft_synth::{synthesize, SynthConfig};

/// Default circuit set: the suite smallest to largest, excluding the
/// five 8-to-13-input machines whose exhaustive transition sets dwarf the
/// simulation being measured.
const DEFAULT_CIRCUITS: &[&str] = &[
    "lion", "mc", "dk27", "bbtas", "shiftreg", "beecount", "dk14", "ex3", "ex5", "dk16", "ex2",
    "bbara", "opus", "dk512", "ex4", "mark1", "ex6", "bbsse", "cse", "keyb", "ex7", "tav",
    "train11", "lion9", "dk15", "dk17",
];

/// Per-transition test sets explode exponentially in the input count
/// (keyb: 4096 length-1 tests); a seeded sample keeps every circuit's
/// measurement in the same ballpark without changing what is measured.
const MAX_TESTS: usize = 512;

struct Measurement {
    seconds: f64,
    gate_evals: u64,
}

struct Row {
    name: String,
    gates: usize,
    faults: usize,
    tests: usize,
    narrow: Measurement,
    wide: Measurement,
}

impl Row {
    fn speedup(&self) -> f64 {
        (self.faults as f64 / self.wide.seconds) / (self.faults as f64 / self.narrow.seconds)
    }
}

fn parse_args() -> (String, Vec<String>, usize, bool) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_sim.json".to_owned();
    let mut circuits: Vec<String> = DEFAULT_CIRCUITS.iter().map(|s| (*s).to_owned()).collect();
    let mut reps = 3usize;
    let mut check = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out FILE").clone();
            }
            "--circuits" => {
                i += 1;
                circuits = args
                    .get(i)
                    .expect("--circuits a,b,c")
                    .split(',')
                    .map(str::to_owned)
                    .collect();
            }
            "--reps" => {
                i += 1;
                reps = args
                    .get(i)
                    .expect("--reps N")
                    .parse()
                    .expect("--reps takes a positive integer");
            }
            "--check" => check = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: kernel_bench [--out FILE] [--circuits a,b,c] [--reps N] [--check]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    assert!(reps > 0, "--reps must be positive");
    (out, circuits, reps, check)
}

/// A single campaign on a 15-gate circuit finishes in microseconds, well
/// inside timer and scheduler noise; each timing rep therefore repeats the
/// run until at least this much wall time has elapsed and reports the
/// mean, so tiny circuits measure as stably as large ones.
const MIN_REP_SECONDS: f64 = 0.01;

/// Best-of-`reps` timing of one campaign run (each rep amortised over
/// `MIN_REP_SECONDS`); gate evals come from the engine counter delta of a
/// single representative run (they are exactly repeatable, unlike wall
/// time).
fn measure(
    reps: usize,
    run: impl Fn() -> campaign::CampaignReport,
) -> (campaign::CampaignReport, Measurement) {
    let gate_evals = scanft_obs::global().counter("sim.kernel.gate_evals");
    let before = gate_evals.get();
    let mut report = run();
    let evals = gate_evals.get() - before;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let mut iters = 0u32;
        loop {
            report = run();
            iters += 1;
            if t.elapsed().as_secs_f64() >= MIN_REP_SECONDS {
                break;
            }
        }
        best = best.min(t.elapsed().as_secs_f64() / f64::from(iters));
    }
    (
        report,
        Measurement {
            seconds: best.max(1e-9),
            gate_evals: evals,
        },
    )
}

fn bench_circuit(name: &str, reps: usize) -> Row {
    let table = scanft_fsm::benchmarks::build(name).expect("suite circuit");
    let circuit = synthesize(&table, &SynthConfig::default());
    let netlist = circuit.netlist();
    let mut tests: Vec<ScanTest> = table
        .transitions()
        .map(|t| ScanTest::new(circuit.encode_state(t.from), vec![t.input]))
        .collect();
    if tests.len() > MAX_TESTS {
        let mut rng = scanft_fsm::rng::SplitMix64::from_name(name);
        for i in 0..MAX_TESTS {
            let j = i + rng.next_below((tests.len() - i) as u64) as usize;
            tests.swap(i, j);
        }
        tests.truncate(MAX_TESTS);
    }
    let order: Vec<usize> = (0..tests.len()).collect();
    let list: Vec<Fault> = faults::as_fault_list(&faults::enumerate_stuck(netlist));

    let (narrow_report, narrow) = measure(reps, || {
        campaign::run_ordered_observing(netlist, &tests, &order, &list, true)
    });
    let (wide_report, wide) = measure(reps, || {
        campaign::run_ordered_wide(netlist, &tests, &order, &list, true)
    });

    // The benchmark is only meaningful if both kernels agree bit-for-bit.
    if wide_report.detecting_test != narrow_report.detecting_test {
        eprintln!("FAIL: {name}: wide kernel verdicts differ from narrow kernel");
        std::process::exit(1);
    }

    Row {
        name: name.to_owned(),
        gates: netlist.num_gates(),
        faults: list.len(),
        tests: tests.len(),
        narrow,
        wide,
    }
}

fn json_measurement(m: &Measurement, faults: usize) -> String {
    format!(
        "{{\"seconds\":{:.6},\"gate_evals\":{},\"gate_evals_per_sec\":{:.0},\"faults_per_sec\":{:.0}}}",
        m.seconds,
        m.gate_evals,
        m.gate_evals as f64 / m.seconds,
        faults as f64 / m.seconds
    )
}

fn main() {
    let (out, circuits, reps, check) = parse_args();
    let mut rows = Vec::new();
    for name in &circuits {
        let row = bench_circuit(name, reps);
        println!(
            "{:<10} {:>5} gates {:>5} faults  narrow {:>12.0} ge/s  wide {:>12.0} ge/s  speedup {:>6.2}x",
            row.name,
            row.gates,
            row.faults,
            row.narrow.gate_evals as f64 / row.narrow.seconds,
            row.wide.gate_evals as f64 / row.wide.seconds,
            row.speedup()
        );
        rows.push(row);
    }

    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\":\"{}\",\"gates\":{},\"faults\":{},\"tests\":{},\"narrow\":{},\"wide\":{},\"speedup\":{:.2}}}",
                r.name,
                r.gates,
                r.faults,
                r.tests,
                json_measurement(&r.narrow, r.faults),
                json_measurement(&r.wide, r.faults),
                r.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"kernel_bench\",\n  \"reps\": {},\n  \"circuits\": [\n{}\n  ]\n}}\n",
        reps,
        body.join(",\n")
    );
    std::fs::write(&out, json).expect("write benchmark JSON");
    println!("wrote {out}");

    if check {
        // On the smallest circuits the two kernels are within a few
        // percent of each other and shared-runner jitter can push either
        // side of 1.0x; a genuine regression (the pre-hybrid worklist hit
        // 0.76x on lion) still trips a 10% tolerance.
        const TOLERANCE: f64 = 0.90;
        let slow: Vec<&Row> = rows.iter().filter(|r| r.speedup() < TOLERANCE).collect();
        if !slow.is_empty() {
            for r in &slow {
                eprintln!(
                    "FAIL: {}: wide kernel slower than narrow ({:.2}x < {TOLERANCE:.2}x)",
                    r.name,
                    r.speedup()
                );
            }
            std::process::exit(1);
        }
        println!("check passed: wide kernel within tolerance of narrow on every circuit");
    }
}
