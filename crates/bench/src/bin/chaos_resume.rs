//! Chaos drill: kill-and-resume a supervised campaign and check the golden
//! report, with a fixed chaos seed so CI reruns are bit-for-bit stable.
//!
//! Two drills run back to back:
//!
//! * `lion` — the paper's walkthrough machine, killed after one batch;
//! * `bbtas` — five batches, killed after two, in strict mode: the fixed
//!   seed must quarantine at least one batch *and* leave at least one
//!   intact journal record, so both the panic-isolation path and the
//!   actual resume path are provably exercised.
//!
//! Each drill:
//!
//! 1. runs the uninterrupted sequential campaign — the golden report;
//! 2. runs the supervised campaign under chaos (injected panics, delays,
//!    torn journal records) with a unit-cap budget that kills the run
//!    partway, journaling completed batches to `--journal FILE` (the
//!    circuit name is appended to the path);
//! 3. verifies the partial report never claims a detection outside its
//!    completed batches (coverage is a sound lower bound);
//! 4. resumes from the surviving journal with chaos off and verifies the
//!    final report equals the golden report exactly.
//!
//! Any violation exits 1, so CI can gate on it; the journal files are left
//! behind as the run artifact. `--overhead` instead measures the journaling
//! cost of a fully journaled run against a bare run (EXPERIMENTS.md tracks
//! the <5% target; the number is informational here because CI timing is
//! noisy).

use scanft_harness::{read_journal_file, Budget, FailurePlan, JournalWriter, StopReason};
use scanft_sim::campaign::{self, SupervisedConfig};
use scanft_sim::faults::{self, Fault};
use scanft_sim::ScanTest;
use scanft_synth::{synthesize, SynthConfig};

// Seed chosen so the strict bbtas drill quarantines exactly one of the
// two claimed batches and the other batch's journal record survives the
// torn-write chaos — neither path goes unexercised.
const CHAOS_SEED: u64 = 8;

struct Setup {
    circuit: scanft_synth::SynthesizedCircuit,
    tests: Vec<ScanTest>,
    order: Vec<usize>,
    faults: Vec<Fault>,
}

fn setup(name: &str) -> Setup {
    let table = scanft_fsm::benchmarks::build(name).expect("registry circuit");
    let circuit = synthesize(&table, &SynthConfig::default());
    let tests: Vec<ScanTest> = table
        .transitions()
        .map(|t| ScanTest::new(circuit.encode_state(t.from), vec![t.input]))
        .collect();
    let order: Vec<usize> = (0..tests.len()).collect();
    let faults = faults::as_fault_list(&faults::enumerate_stuck(circuit.netlist()));
    Setup {
        circuit,
        tests,
        order,
        faults,
    }
}

fn config(label: &str, threads: usize, budget: Budget) -> SupervisedConfig {
    SupervisedConfig {
        num_threads: threads,
        observe_scan_out: true,
        budget,
        label: label.to_owned(),
        kernel: scanft_sim::campaign::Kernel::Narrow,
        arena: None,
    }
}

fn drill(
    circuit: &str,
    kill_after: u64,
    strict: bool,
    journal_path: &str,
    seed: u64,
) -> Result<(), String> {
    scanft_harness::silence_chaos_panics();
    let s = setup(circuit);
    let golden = campaign::run_ordered(s.circuit.netlist(), &s.tests, &s.order, &s.faults);
    println!(
        "[{circuit}] golden: {} faults, {} detected ({:.2}%)",
        golden.num_faults(),
        golden.detected(),
        golden.coverage_percent()
    );

    // Phase 1: chaos + kill. The unit cap stops the run partway, like a
    // SIGKILL between batches; chaos tears journal records and injects
    // panics and delays on top. The panic rate is raised from the default
    // so the fixed seed actually hits a claimed batch.
    let plan = FailurePlan::new(seed).with_panic_rate(1, 2);
    let writer = JournalWriter::create(journal_path)
        .map_err(|e| e.to_string())?
        .with_chaos(plan.clone());
    let first = campaign::run_supervised(
        s.circuit.netlist(),
        &s.tests,
        &s.order,
        &s.faults,
        &config(circuit, 2, Budget::unlimited().with_max_units(kill_after)),
        Some(&writer),
        None,
        Some(&plan),
    )
    .map_err(|e| e.to_string())?;
    println!(
        "[{circuit}] interrupted: {} completed, {} quarantined, {} remaining, stopped: {}",
        first.completed_units.len(),
        first.quarantined.len(),
        first.remaining_units.len(),
        first
            .stopped
            .map_or("-".to_owned(), |reason| reason.to_string()),
    );
    if first.stopped != Some(StopReason::UnitCap) {
        return Err("drill expects the unit cap to stop the first run".into());
    }
    if first.is_complete() {
        return Err("first run unexpectedly completed; the drill drilled nothing".into());
    }
    if strict && first.quarantined.is_empty() {
        return Err(format!(
            "seed {seed:#x} injected no panic before the kill; the quarantine path went unexercised"
        ));
    }
    // Sound degradation: nothing outside a completed batch is detected.
    for (f, d) in first.report.detecting_test.iter().enumerate() {
        if d.is_some() && !first.completed_units.contains(&(f / 64)) {
            return Err(format!("fault {f} detected outside a completed batch"));
        }
    }
    if first.report.detected() > golden.detected() {
        return Err("partial coverage exceeds the golden report".into());
    }

    // Phase 2: restart from the journal file, chaos off.
    let journal = read_journal_file(journal_path).map_err(|e| e.to_string())?;
    println!(
        "[{circuit}] journal: {} intact record(s), {} damaged line(s) skipped",
        journal.records.len(),
        journal.skipped_lines
    );
    if strict && journal.records.is_empty() {
        return Err(format!(
            "seed {seed:#x} left no intact journal record; the resume path went unexercised"
        ));
    }
    let resumed = campaign::run_supervised(
        s.circuit.netlist(),
        &s.tests,
        &s.order,
        &s.faults,
        &config(circuit, 2, Budget::unlimited()),
        None,
        Some(&journal),
        None,
    )
    .map_err(|e| e.to_string())?;
    if !resumed.is_complete() {
        return Err("resume did not complete the campaign".into());
    }
    if resumed.resumed_units.len() != journal.records.len() {
        return Err("resume did not reuse every intact journal record".into());
    }
    let report = resumed.report;
    if report != golden {
        return Err("resumed report differs from the golden report".into());
    }
    println!(
        "[{circuit}] resumed: complete, bit-identical to golden ({} detected, {:.2}%)",
        report.detected(),
        report.coverage_percent()
    );
    Ok(())
}

/// Journaling overhead: fully journaled supervised run vs bare supervised
/// run, best-of-N wall clock, on a mid-size circuit.
fn overhead(journal_path: &str) -> Result<(), String> {
    let s = setup("bbsse");
    let rounds = 5;
    let mut bare = f64::INFINITY;
    let mut journaled = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = std::time::Instant::now();
        campaign::run_supervised(
            s.circuit.netlist(),
            &s.tests,
            &s.order,
            &s.faults,
            &config("bbsse", 1, Budget::unlimited()),
            None,
            None,
            None,
        )
        .map_err(|e| e.to_string())?;
        bare = bare.min(t0.elapsed().as_secs_f64());

        let writer = JournalWriter::create(journal_path).map_err(|e| e.to_string())?;
        let t1 = std::time::Instant::now();
        campaign::run_supervised(
            s.circuit.netlist(),
            &s.tests,
            &s.order,
            &s.faults,
            &config("bbsse", 1, Budget::unlimited()),
            Some(&writer),
            None,
            None,
        )
        .map_err(|e| e.to_string())?;
        journaled = journaled.min(t1.elapsed().as_secs_f64());
    }
    let pct = if bare > 0.0 {
        100.0 * (journaled - bare) / bare
    } else {
        0.0
    };
    println!(
        "journaling overhead on bbsse ({} faults, best of {rounds}): bare {:.4}s, journaled {:.4}s, {pct:+.2}%",
        s.faults.len(),
        bare,
        journaled
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let journal_path = args
        .iter()
        .position(|a| a == "--journal")
        .and_then(|p| args.get(p + 1).cloned())
        .unwrap_or_else(|| "chaos_resume.journal.jsonl".to_owned());
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(CHAOS_SEED);
    let result = if args.iter().any(|a| a == "--overhead") {
        overhead(&journal_path)
    } else {
        // lion (the paper's walkthrough, per the roadmap's CI drill) killed
        // after one of its two batches, then bbtas in strict mode: the
        // fixed seed must quarantine a batch AND leave an intact record.
        drill("lion", 1, false, &format!("{journal_path}.lion"), seed)
            .and_then(|()| drill("bbtas", 2, true, &format!("{journal_path}.bbtas"), seed))
    };
    if let Err(message) = result {
        eprintln!("chaos_resume: FAIL: {message}");
        std::process::exit(1);
    }
    println!("chaos_resume: OK");
}
