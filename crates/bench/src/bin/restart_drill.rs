//! Crash-restart drill for `scanft serve --state-dir` — the durability
//! analogue of `serve_drill`.
//!
//! The parent process spawns this same binary in `--serve` mode (a real
//! child process, so the kill is a real SIGKILL, not a polite shutdown),
//! then:
//!
//! 1. submits `bbtas` with an explicit `Idempotency-Key` and `dk27`
//!    without one, against a server whose delay chaos stretches each work
//!    unit into a wide kill window;
//! 2. waits until the `bbtas` campaign has checkpointed at least one work
//!    unit, then `kill -9`s the server mid-campaign;
//! 3. restarts the server on the same state directory and asserts the WAL
//!    replay re-queued the unfinished jobs;
//! 4. waits for both jobs to complete under their *original* ids and
//!    asserts the recovered journals are byte-identical to an
//!    uninterrupted one-shot reference run;
//! 5. resubmits `bbtas` under the same `Idempotency-Key` and asserts the
//!    original job comes back (200, same id, no re-execution);
//! 6. drains: further submissions bounce with 503, and the child exits 0.
//!
//! If the campaign outruns the kill (nothing was mid-flight), the attempt
//! is retried on a fresh state directory. Exits non-zero on any violated
//! assertion, so CI runs it as the `restart-smoke` gate.

use std::io::BufRead;
use std::time::{Duration, Instant};

use scanft_core::generate::{generate, GenConfig};
use scanft_fsm::uio::{derive_uios_with, UioConfig};
use scanft_fsm::{benchmarks, kiss, StateTable};
use scanft_harness::JournalWriter;
use scanft_server::{Client, ClientError, JobKind, RetryPolicy, Server, ServerConfig};
use scanft_sim::campaign::{self, Kernel, SupervisedConfig};
use scanft_synth::{synthesize, SynthConfig};

const WAIT: Duration = Duration::from_secs(300);

fn string_of(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|p| args.get(p + 1))
        .cloned()
}

/// `--serve` mode: the child. Starts a crash-safe server on an ephemeral
/// port, announces recovery counts and the address on stdout, then blocks
/// until a drain request and exits 0.
fn serve(args: &[String]) -> ! {
    let state_dir = string_of(args, "--state-dir").expect("--state-dir required");
    let journal_dir = string_of(args, "--journal-dir").expect("--journal-dir required");
    scanft_harness::silence_chaos_panics();
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        campaign_threads: 1,
        journal_dir,
        state_dir: Some(state_dir),
        // Delay-only chaos, widened so each work unit takes ~80 ms: the
        // parent's SIGKILL lands mid-campaign, not between campaigns.
        chaos_seed: Some(23),
        chaos_delay_micros: 80_000,
        ..ServerConfig::default()
    })
    .expect("server start");
    let recovery = server.recovery();
    println!(
        "RECOVERY requeued={} terminal={} torn={} records={}",
        recovery.jobs_requeued, recovery.jobs_terminal, recovery.wal_torn, recovery.wal_records
    );
    println!("LISTENING {}", server.addr());
    server.wait_drain_requested();
    server.drain_and_shutdown();
    println!("DRAINED");
    std::process::exit(0);
}

struct Child {
    process: std::process::Child,
    addr: std::net::SocketAddr,
    requeued: u64,
    terminal: u64,
}

/// Spawns the `--serve` child and reads its stdout until the LISTENING
/// line; a thread drains the rest so the pipe never fills.
fn spawn_server(state_dir: &str, journal_dir: &str) -> Child {
    let exe = std::env::current_exe().expect("current_exe");
    let mut process = std::process::Command::new(exe)
        .args([
            "--serve",
            "--state-dir",
            state_dir,
            "--journal-dir",
            journal_dir,
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn server child");
    let stdout = process.stdout.take().expect("child stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let (mut addr, mut requeued, mut terminal) = (None, 0, 0);
    let mut line = String::new();
    while addr.is_none() {
        line.clear();
        if reader.read_line(&mut line).expect("read child stdout") == 0 {
            panic!("server child exited before LISTENING");
        }
        print!("  child: {line}");
        if let Some(rest) = line.strip_prefix("RECOVERY ") {
            let grab = |key: &str| -> u64 {
                rest.split_whitespace()
                    .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0)
            };
            requeued = grab("requeued");
            terminal = grab("terminal");
        }
        if let Some(rest) = line.strip_prefix("LISTENING ") {
            addr = Some(rest.trim().parse().expect("child addr"));
        }
    }
    // Keep draining so the child never blocks on a full pipe.
    scanft_race::thread::spawn(move || {
        let mut rest = String::new();
        while reader.read_line(&mut rest).map(|n| n > 0).unwrap_or(false) {
            rest.clear();
        }
    });
    Child {
        process,
        addr: addr.expect("LISTENING line carries the address"),
        requeued,
        terminal,
    }
}

/// The one-shot reference: the same single-threaded wide-kernel pipeline
/// the server's executor runs, writing `journal_path`. Returns coverage.
fn reference_run(table: &StateTable, journal_path: &str) -> f64 {
    let circuit = synthesize(table, &SynthConfig::default());
    let uios = derive_uios_with(table, &UioConfig::with_max_len(table.num_state_vars()));
    let scan_tests = generate(table, &uios, &GenConfig::default()).to_scan_tests(&circuit);
    let fault_list =
        scanft_sim::faults::as_fault_list(&scanft_sim::faults::enumerate_stuck(circuit.netlist()));
    let order = campaign::decreasing_length_order(&scan_tests);
    let config = SupervisedConfig {
        num_threads: 1,
        observe_scan_out: true,
        budget: scanft_harness::Budget::unlimited(),
        label: table.name().to_owned(),
        kernel: Kernel::Wide,
        arena: None,
    };
    let writer = JournalWriter::create(journal_path).expect("reference journal");
    let partial = campaign::run_supervised(
        circuit.netlist(),
        &scan_tests,
        &order,
        &fault_list,
        &config,
        Some(&writer),
        None,
        None,
    )
    .expect("reference campaign");
    assert!(partial.is_complete(), "reference run must not stop early");
    partial.coverage_lower_bound_percent()
}

fn metric(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.contains(&format!("\"name\":\"{name}\"")))
        .and_then(|l| {
            let marker = "\"value\":";
            let start = l.find(marker)? + marker.len();
            l[start..].trim_end_matches('}').parse().ok()
        })
        .unwrap_or(0)
}

/// One crash/restart attempt. `Err` means the kill window was missed (the
/// campaigns finished before the SIGKILL) — benign, retried on fresh dirs.
fn attempt(round: usize, root: &std::path::Path) -> Result<(), String> {
    let tag = format!("scanft-restart-drill-{}-{round}", std::process::id());
    let state_dir = root.join(format!("{tag}-state"));
    let journal_dir = root.join(format!("{tag}-journals"));
    std::fs::create_dir_all(&journal_dir).expect("journal dir");
    let state_dir = state_dir.to_string_lossy().into_owned();
    let journal_dir = journal_dir.to_string_lossy().into_owned();

    println!("restart_drill round {round}: state in {state_dir}");
    let mut child = spawn_server(&state_dir, &journal_dir);
    assert_eq!(child.requeued, 0, "fresh state dir has nothing to recover");
    let client = Client::new(child.addr).with_retry(RetryPolicy::default().with_seed(round as u64));

    // Submit the two campaigns: bbtas under an explicit sticky key.
    let bbtas = benchmarks::build("bbtas").expect("bbtas");
    let dk27 = benchmarks::build("dk27").expect("dk27");
    let accepted_bbtas = client
        .submit_with_key(
            &kiss::write(&bbtas),
            "bbtas",
            "drill",
            JobKind::Simulate,
            Some("drill-bbtas"),
        )
        .expect("submit bbtas");
    let accepted_dk27 = client
        .submit(&kiss::write(&dk27), "dk27", "drill", JobKind::Simulate)
        .expect("submit dk27");

    // Wait for the first checkpoint of the first campaign, then SIGKILL.
    let journal = client
        .status(&accepted_bbtas.id)
        .expect("status")
        .journal
        .expect("journal path");
    let started = Instant::now();
    loop {
        let lines = std::fs::read_to_string(&journal)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if lines >= 2 {
            break;
        }
        assert!(started.elapsed() < WAIT, "no checkpoint within {WAIT:?}");
        scanft_race::thread::sleep(Duration::from_millis(1));
    }
    child.process.kill().expect("kill -9 the server");
    child.process.wait().expect("reap killed server");
    println!("  killed mid-campaign after the first bbtas checkpoint");

    // Restart on the same state directory: the WAL must re-queue the
    // unfinished jobs (2 minus however many finished before the kill).
    let mut child = spawn_server(&state_dir, &journal_dir);
    if child.requeued == 0 {
        child.process.kill().ok();
        child.process.wait().ok();
        return Err("kill window missed: both campaigns finished first".into());
    }
    println!(
        "  recovered: {} re-queued, {} already terminal",
        child.requeued, child.terminal
    );
    let client = Client::new(child.addr).with_retry(RetryPolicy::default());

    // The jobs finish under their original ids, no resubmission needed.
    let mut failures = 0;
    let mut final_views = Vec::new();
    for (name, id) in [("bbtas", &accepted_bbtas.id), ("dk27", &accepted_dk27.id)] {
        // `Client::wait` is an HTTP poll, not a condvar wait.
        let view = client.wait(id, WAIT).expect("wait after restart"); // race-lint: allow(lock-poison-expect)
        if view.status != "completed" {
            eprintln!(
                "  FAIL {name}: ended `{}` ({:?})",
                view.status, view.message
            );
            failures += 1;
        }
        final_views.push((name, view));
    }

    // Byte-identical journals against the uninterrupted reference.
    for (name, view) in &final_views {
        let table = benchmarks::build(name).expect("benchmark");
        let ref_journal = format!("{journal_dir}/{name}.reference.jsonl");
        let ref_coverage = reference_run(&table, &ref_journal);
        let served = std::fs::read(view.journal.as_deref().expect("journal")).expect("read served");
        let reference = std::fs::read(&ref_journal).expect("read reference");
        let identical = served == reference;
        // The status JSON rounds coverage to 4 decimals; the journal
        // byte-identity above is the exact check.
        let coverage_ok = (view.coverage.expect("coverage") - ref_coverage).abs() < 5e-5;
        println!(
            "  {name:<6} {:>7.2}% vs reference {ref_coverage:>7.2}%  journal {}",
            view.coverage.unwrap_or(0.0),
            if identical { "identical" } else { "DIFFERS" },
        );
        if !identical || !coverage_ok {
            eprintln!(
                "  FAIL {name}: identical={identical} coverage={:?} reference={ref_coverage}",
                view.coverage
            );
            failures += 1;
        }
    }

    // Idempotent resubmission: the sticky key maps to the original job
    // forever — same id back, nothing re-executed.
    let before = client.metrics().expect("metrics");
    let duplicate = client
        .submit_with_key(
            &kiss::write(&bbtas),
            "bbtas",
            "drill",
            JobKind::Simulate,
            Some("drill-bbtas"),
        )
        .expect("duplicate submit");
    let after = client.metrics().expect("metrics");
    if duplicate.id != accepted_bbtas.id {
        eprintln!(
            "  FAIL duplicate returned {} instead of {}",
            duplicate.id, accepted_bbtas.id
        );
        failures += 1;
    }
    if metric(&after, "server.jobs.accepted") != metric(&before, "server.jobs.accepted")
        || metric(&after, "server.jobs.deduped") != metric(&before, "server.jobs.deduped") + 1
    {
        eprintln!("  FAIL duplicate was re-admitted instead of deduped");
        failures += 1;
    }
    println!(
        "  duplicate `drill-bbtas` -> {} (deduped, {} units resumed, {} jobs resumed)",
        duplicate.id,
        metric(&after, "server.recovery.units_resumed"),
        metric(&after, "server.recovery.jobs_resumed"),
    );

    // Graceful drain while a campaign is in flight: readiness flips,
    // submissions bounce 503, the running job still finishes (its
    // terminal state lands in the WAL), and the child exits 0.
    let mc = benchmarks::build("mc").expect("mc");
    let in_flight = client
        .submit(&kiss::write(&mc), "mc", "drill", JobKind::Simulate)
        .expect("submit mc");
    let started = Instant::now();
    loop {
        let view = client.status(&in_flight.id).expect("status mc");
        if view.status == "running" || view.is_terminal() {
            break;
        }
        assert!(started.elapsed() < WAIT, "mc never started");
        scanft_race::thread::sleep(Duration::from_millis(1));
    }
    let plain = Client::new(child.addr); // no retry: 503 must surface
    plain.drain().expect("drain request");
    // The child exits as soon as the in-flight campaign completes; if it
    // beats these probes the connection refusal is the same fact.
    match plain.ready() {
        Ok(false) | Err(ClientError::Io(_)) => {}
        other => {
            eprintln!("  FAIL draining server still ready: {other:?}");
            failures += 1;
        }
    }
    match plain.submit(&kiss::write(&dk27), "dk27", "drill", JobKind::Simulate) {
        Err(ClientError::Api { status: 503, .. }) | Err(ClientError::Io(_)) => {}
        other => {
            eprintln!("  FAIL submission during drain answered {other:?}");
            failures += 1;
        }
    }
    let status = child.process.wait().expect("wait for drained child");
    if !status.success() {
        eprintln!("  FAIL drained server exited {status:?}");
        failures += 1;
    }
    // Durability of the drain itself: the WAL records the in-flight job's
    // terminal state, so the next boot has nothing to re-run.
    let wal = scanft_server::read_wal_file(&format!("{state_dir}/jobs.wal")).expect("wal");
    let state = scanft_server::replay(&wal);
    let mc_job = state
        .jobs
        .iter()
        .find(|j| j.admit.id == in_flight.id)
        .expect("mc admitted in WAL");
    if mc_job.done.is_none() {
        eprintln!("  FAIL drained server exited before finishing the in-flight job");
        failures += 1;
    }
    println!("  drain: 503 on submit, in-flight job finished, child exited cleanly");

    if failures > 0 {
        eprintln!("restart_drill: {failures} assertion(s) failed");
        std::process::exit(1);
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--serve") {
        serve(&args);
    }
    // `--root DIR` pins the state/journal directories somewhere CI can
    // archive; the default is the system temp dir.
    let root = string_of(&args, "--root").map_or_else(std::env::temp_dir, std::path::PathBuf::from);
    std::fs::create_dir_all(&root).expect("drill root dir");
    // The kill races a finite campaign; retry on a fresh state directory
    // when the window is missed, but never mask a real assertion failure
    // (those exit(1) inside `attempt`).
    for round in 1..=5 {
        match attempt(round, &root) {
            Ok(()) => {
                println!("restart_drill: all assertions held");
                return;
            }
            Err(reason) => println!("restart_drill round {round} void: {reason}"),
        }
    }
    eprintln!("restart_drill: kill window missed 5 times — chaos delay too narrow?");
    std::process::exit(1);
}
