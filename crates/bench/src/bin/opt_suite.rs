//! Whole-suite drill for the certificate-emitting optimizer: every
//! in-budget benchmark circuit (see [`DEFAULT_CIRCUITS`]) is optimized,
//! every proof log is replayed by the independent checker, and the
//! optimized campaign is pinned verdict-for-verdict against the oracle —
//! exiting non-zero on any unjustified rewrite or differential mismatch,
//! emitting `BENCH_opt.json`.
//!
//! For each circuit the binary reports the gate-count reduction, the
//! certificate size, and the fault-plan split (provably untestable /
//! fall back to the original / exact on the reduced netlist). With
//! `--measure` it additionally times the wide-kernel stuck-at campaign on
//! the original netlist against the same campaign on the reduced netlist
//! (each with its own enumerated fault universe) and reports the
//! throughput delta the gate reduction buys.
//!
//! `--cert-dir DIR` writes each certificate as `<name>.cert.jsonl` so CI
//! can archive the proof logs. Certificates above `--max-cert-bytes`
//! (default 64 MiB; keyb's exceeds 2 GB) are checked in memory but not
//! written, and every skip is printed — no silent caps.
//!
//! Usage: `opt_suite [--out FILE] [--circuits a,b,c] [--cert-dir DIR]
//! [--max-cert-bytes N] [--measure] [--reps N]`

use std::time::Instant;

use scanft_opt::fault_map::FaultPlan;
use scanft_opt::{campaign as opt_campaign, checker, optimize};
use scanft_sim::faults::{self, Fault};
use scanft_sim::{campaign, ScanTest};
use scanft_synth::{synthesize, SynthConfig};

/// Default circuit set: the same 26 in-budget machines `kernel_bench`
/// measures — the suite minus the five 8-to-13-input circuits (dvram,
/// fetch, log, nucpwr, rie) whose 20k+-gate netlists put the implication
/// closure beyond the netlist-analysis gate budget (`scanft lint` skips
/// them too unless `--full` is passed). They still optimize and check
/// correctly via an explicit `--circuits`; the run just takes tens of
/// minutes per circuit, and the default prints exactly what it skipped.
const DEFAULT_CIRCUITS: &[&str] = &[
    "lion", "mc", "dk27", "bbtas", "shiftreg", "beecount", "dk14", "ex3", "ex5", "dk16", "ex2",
    "bbara", "opus", "dk512", "ex4", "mark1", "ex6", "bbsse", "cse", "keyb", "ex7", "tav",
    "train11", "lion9", "dk15", "dk17",
];

/// Per-transition test sets explode exponentially in the input count; a
/// seeded sample keeps every circuit's differential run in the same
/// ballpark without changing what is pinned (same tests on both routes).
const MAX_TESTS: usize = 512;

/// Amortisation floor per timing rep, mirroring `kernel_bench`.
const MIN_REP_SECONDS: f64 = 0.01;

struct Row {
    name: String,
    gates: usize,
    reduced: usize,
    constants_folded: usize,
    merges: usize,
    dead: usize,
    cert_steps: usize,
    cert_bytes: usize,
    cert_written: bool,
    untestable: usize,
    fallback: usize,
    exact: usize,
    faults: usize,
    tests: usize,
    optimize_secs: f64,
    check_secs: f64,
    /// Wide-kernel campaign `(original_secs, reduced_secs)` when
    /// `--measure` is given.
    timing: Option<(f64, f64)>,
}

impl Row {
    fn removed_pct(&self) -> f64 {
        if self.gates == 0 {
            return 0.0;
        }
        100.0 * (self.gates - self.reduced) as f64 / self.gates as f64
    }

    fn speedup(&self) -> Option<f64> {
        self.timing.map(|(orig, opt)| orig / opt)
    }
}

struct Args {
    out: String,
    circuits: Vec<String>,
    cert_dir: Option<String>,
    max_cert_bytes: usize,
    measure: bool,
    reps: usize,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        out: "BENCH_opt.json".to_owned(),
        circuits: DEFAULT_CIRCUITS.iter().map(|s| (*s).to_owned()).collect(),
        cert_dir: None,
        max_cert_bytes: 64 * 1024 * 1024,
        measure: false,
        reps: 3,
    };
    let mut explicit = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                i += 1;
                args.out = argv.get(i).expect("--out FILE").clone();
            }
            "--circuits" => {
                i += 1;
                explicit = true;
                args.circuits = argv
                    .get(i)
                    .expect("--circuits a,b,c")
                    .split(',')
                    .map(str::to_owned)
                    .collect();
            }
            "--cert-dir" => {
                i += 1;
                args.cert_dir = Some(argv.get(i).expect("--cert-dir DIR").clone());
            }
            "--max-cert-bytes" => {
                i += 1;
                args.max_cert_bytes = argv
                    .get(i)
                    .expect("--max-cert-bytes N")
                    .parse()
                    .expect("--max-cert-bytes takes a byte count");
            }
            "--measure" => args.measure = true,
            "--reps" => {
                i += 1;
                args.reps = argv
                    .get(i)
                    .expect("--reps N")
                    .parse()
                    .expect("--reps takes a positive integer");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: opt_suite [--out FILE] [--circuits a,b,c] [--cert-dir DIR] \
                     [--max-cert-bytes N] [--measure] [--reps N]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    assert!(args.reps > 0, "--reps must be positive");
    if !explicit {
        let skipped: Vec<&str> = scanft_fsm::benchmarks::CIRCUITS
            .iter()
            .map(|s| s.name)
            .filter(|n| !DEFAULT_CIRCUITS.contains(n))
            .collect();
        println!(
            "note: default set skips {} over-budget circuits ({}); pass --circuits to include them",
            skipped.len(),
            skipped.join(", ")
        );
    }
    args
}

/// Best-of-`reps` wall time of one campaign run, each rep amortised over
/// [`MIN_REP_SECONDS`] so tiny circuits measure as stably as large ones.
fn measure(reps: usize, run: impl Fn()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let mut iters = 0u32;
        loop {
            run();
            iters += 1;
            if t.elapsed().as_secs_f64() >= MIN_REP_SECONDS {
                break;
            }
        }
        best = best.min(t.elapsed().as_secs_f64() / f64::from(iters));
    }
    best.max(1e-9)
}

fn drill_circuit(name: &str, args: &Args) -> Row {
    let table = scanft_fsm::benchmarks::build(name).expect("suite circuit");
    let circuit = synthesize(&table, &SynthConfig::default());
    let netlist = circuit.netlist();

    let t = Instant::now();
    let opt = optimize(netlist);
    let optimize_secs = t.elapsed().as_secs_f64();

    // Independent replay of the proof log: every rewrite step must be
    // justified or the whole suite run fails.
    let t = Instant::now();
    match checker::check(netlist, &opt.netlist, &opt.certificate) {
        Ok(report) => assert_eq!(
            report.steps, opt.stats.certificate_steps,
            "{name}: checker replayed a different number of steps"
        ),
        Err(e) => {
            eprintln!("FAIL: {name}: certificate rejected by the independent checker: {e}");
            std::process::exit(1);
        }
    }
    let check_secs = t.elapsed().as_secs_f64();

    let mut cert_written = false;
    if let Some(dir) = &args.cert_dir {
        if opt.certificate.len() <= args.max_cert_bytes {
            std::fs::create_dir_all(dir).expect("create --cert-dir");
            let path = format!("{dir}/{name}.cert.jsonl");
            std::fs::write(&path, &opt.certificate).expect("write certificate");
            cert_written = true;
        } else {
            println!(
                "note: {name}: certificate ({} bytes) exceeds --max-cert-bytes ({}); \
                 checked in memory but not archived",
                opt.certificate.len(),
                args.max_cert_bytes
            );
        }
    }

    // Differential pin: the optimized route must reproduce the oracle's
    // detection report bit-for-bit on a seeded test sample.
    let mut tests: Vec<ScanTest> = table
        .transitions()
        .map(|t| ScanTest::new(circuit.encode_state(t.from), vec![t.input]))
        .collect();
    if tests.len() > MAX_TESTS {
        let mut rng = scanft_fsm::rng::SplitMix64::from_name(name);
        for i in 0..MAX_TESTS {
            let j = i + rng.next_below((tests.len() - i) as u64) as usize;
            tests.swap(i, j);
        }
        tests.truncate(MAX_TESTS);
    }
    let order: Vec<usize> = (0..tests.len()).collect();
    let list: Vec<Fault> = faults::as_fault_list(&faults::enumerate_stuck(netlist));

    let oracle = campaign::run_ordered_observing(netlist, &tests, &order, &list, true);
    let routed = opt_campaign::run_optimized(netlist, &opt, &tests, &order, &list, true);
    if routed.detecting_test != oracle.detecting_test || routed.detected() != oracle.detected() {
        eprintln!("FAIL: {name}: optimized campaign verdicts differ from the oracle");
        std::process::exit(1);
    }

    let plan = FaultPlan::new(netlist, &opt, &list);
    let (untestable, fallback, exact) = plan.counts();

    let timing = args.measure.then(|| {
        let reduced_list: Vec<Fault> =
            faults::as_fault_list(&faults::enumerate_stuck(&opt.netlist));
        let orig = measure(args.reps, || {
            let _ = campaign::run_ordered_wide(netlist, &tests, &order, &list, true);
        });
        let reduced = measure(args.reps, || {
            let _ = campaign::run_ordered_wide(&opt.netlist, &tests, &order, &reduced_list, true);
        });
        (orig, reduced)
    });

    Row {
        name: name.to_owned(),
        gates: netlist.num_gates(),
        reduced: opt.stats.reduced_gates,
        constants_folded: opt.stats.constants_folded,
        merges: opt.stats.merges,
        dead: opt.stats.gates_removed,
        cert_steps: opt.stats.certificate_steps,
        cert_bytes: opt.stats.certificate_bytes,
        cert_written,
        untestable,
        fallback,
        exact,
        faults: list.len(),
        tests: tests.len(),
        optimize_secs,
        check_secs,
        timing,
    }
}

fn main() {
    let args = parse_args();
    let mut rows = Vec::new();
    for name in &args.circuits {
        let row = drill_circuit(name, &args);
        let timing = match row.speedup() {
            Some(s) => format!("  wide kernel {s:>5.2}x"),
            None => String::new(),
        };
        println!(
            "{:<10} {:>5} -> {:>5} gates ({:>5.1}% removed)  cert {:>9} steps {:>11} bytes  \
             faults {:>5}U/{:>5}F/{:>5}E{timing}",
            row.name,
            row.gates,
            row.reduced,
            row.removed_pct(),
            row.cert_steps,
            row.cert_bytes,
            row.untestable,
            row.fallback,
            row.exact,
        );
        rows.push(row);
    }

    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            let timing = match r.timing {
                Some((orig, red)) => format!(
                    ",\"wide_original_secs\":{orig:.6},\"wide_reduced_secs\":{red:.6},\"speedup\":{:.2}",
                    orig / red
                ),
                None => String::new(),
            };
            format!(
                "    {{\"name\":\"{}\",\"gates\":{},\"reduced\":{},\"constants_folded\":{},\
                 \"merges\":{},\"dead\":{},\"cert_steps\":{},\"cert_bytes\":{},\
                 \"cert_written\":{},\"untestable\":{},\"fallback\":{},\"exact\":{},\
                 \"faults\":{},\"tests\":{},\"optimize_secs\":{:.4},\"check_secs\":{:.4}{timing}}}",
                r.name,
                r.gates,
                r.reduced,
                r.constants_folded,
                r.merges,
                r.dead,
                r.cert_steps,
                r.cert_bytes,
                r.cert_written,
                r.untestable,
                r.fallback,
                r.exact,
                r.faults,
                r.tests,
                r.optimize_secs,
                r.check_secs,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"opt_suite\",\n  \"circuits\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&args.out, json).expect("write benchmark JSON");
    println!("wrote {}", args.out);

    let total: usize = rows.iter().map(|r| r.gates).sum();
    let kept: usize = rows.iter().map(|r| r.reduced).sum();
    println!(
        "suite: {} circuits, {total} -> {kept} gates ({:.1}% removed), every certificate \
         validated by the independent checker, every campaign bit-identical to the oracle",
        rows.len(),
        if total == 0 {
            0.0
        } else {
            100.0 * (total - kept) as f64 / total as f64
        }
    );
}
