//! Table 6 of the paper: gate-level stuck-at and bridging fault coverage of
//! the functional tests, with effective-test counts.
//!
//! The claim being reproduced: **all detectable faults of both models are
//! detected** — every fault the functional tests miss is proven
//! combinationally redundant by exhaustive analysis. Absolute fault counts
//! are for our synthesized netlists.

use scanft_bench::{paper::paper_row, pct, plan_circuits, Args, Budget};
use scanft_core::flow::{run_flow, FlowConfig};
use scanft_fsm::benchmarks;

fn main() {
    let args = Args::parse();
    println!("Table 6: Simulation of gate-level faults (functional tests of Table 5)");
    println!();
    println!(
        "  circuit  || s.a.: tsts |  len |  tot |  det |   f.c. | complete || bridg: tsts |  len |  tot |  det |   f.c. | complete || paper f.c.: s.a. | bridg"
    );
    scanft_bench::rule(160);
    let mut all_complete = true;
    let mut masked_total = 0usize;
    for (spec, run) in plan_circuits(&args, Budget::GateLevel) {
        let p = paper_row(spec.name).expect("paper row exists");
        if !run {
            println!(
                "  {:<8} || {:>50} || {:>51} || {:>15} | {:>5}",
                spec.name,
                "skipped(budget)",
                "",
                pct(p.t6_sa.4),
                pct(p.t6_br.4)
            );
            continue;
        }
        let table = benchmarks::build(spec.name).expect("registry circuit");
        let report = run_flow(&table, &FlowConfig::default());
        let gate = report.gate.expect("gate level enabled");
        let sa = &gate.stuck;
        let br = &gate.bridging;
        let sa_complete = sa.complete_detectable_coverage() && sa.unclassified == 0;
        let br_complete = br.complete_detectable_coverage() && br.unclassified == 0;
        let masked = (sa.total_faults - sa.detected - sa.proven_undetectable - sa.unclassified)
            + (br.total_faults - br.detected - br.proven_undetectable - br.unclassified);
        masked_total += masked;
        all_complete &= sa_complete && br_complete;
        println!(
            "  {:<8} || {:>10} | {:>4} | {:>4} | {:>4} | {:>6} | {:>8} || {:>11} | {:>4} | {:>4} | {:>4} | {:>6} | {:>8} || {:>15} | {:>5}",
            spec.name,
            sa.effective_tests,
            sa.effective_length,
            sa.total_faults,
            sa.detected,
            pct(sa.coverage),
            if sa_complete { "yes" } else { "NO" },
            br.effective_tests,
            br.effective_length,
            br.total_faults,
            br.detected,
            pct(br.coverage),
            if br_complete { "yes" } else { "NO" },
            pct(p.t6_sa.4),
            pct(p.t6_br.4)
        );
        if gate.bridge_truncated {
            println!(
                "  {:<8}    note: bridging pairs subsampled ({} of {} structural pairs)",
                "",
                br.total_faults / 2,
                gate.bridge_pairs_total
            );
        }
    }
    println!();
    if all_complete {
        println!("paper's claim (all detectable faults of both models detected): REPRODUCED on every simulated circuit");
    } else {
        println!(
            "paper's claim holds except for {masked_total} fault(s) masked inside chained tests —"
        );
        println!("the masking the paper's Section 2 calls out as possible but rare; the library's");
        println!("FlowConfig::top_up option appends length-1 tests for exactly these and restores");
        println!("complete detectable coverage.");
    }
}
