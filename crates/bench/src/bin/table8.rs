//! Table 8 of the paper: test generation **without transfer sequences**.
//!
//! The paper reports the circuits whose functional-test cycle percentage in
//! Table 7 reached 100% or more; disabling transfers trades chained tests
//! for shorter application time. This binary runs both configurations on
//! the paper's four circuits (plus any circuit whose measured percentage is
//! >= 100 on our suite) and prints the comparison.

use scanft_bench::{paper::PAPER_TABLE8, pct, Args, Budget};
use scanft_core::cycles::{percent_of, test_set_cycles};
use scanft_core::generate::{generate, GenConfig};
use scanft_fsm::benchmarks;
use scanft_fsm::uio::{derive_uios_with, UioConfig};

fn main() {
    let args = Args::parse();

    // Candidate set: the paper's four circuits plus our own >= 100% rows.
    let mut names: Vec<&str> = PAPER_TABLE8.iter().map(|r| r.0).collect();
    for (spec, run) in scanft_bench::plan_circuits(&args, Budget::Functional) {
        if !run || names.contains(&spec.name) {
            continue;
        }
        let table = benchmarks::build(spec.name).expect("registry circuit");
        let uios = derive_uios_with(&table, &UioConfig::with_max_len(table.num_state_vars()));
        let set = generate(&table, &uios, &GenConfig::default());
        let base = scanft_core::generate::per_transition_baseline(&table);
        let sv = table.num_state_vars();
        if percent_of(test_set_cycles(&set, sv), test_set_cycles(&base, sv)) >= 100.0 {
            names.push(spec.name);
        }
    }

    println!("Table 8: Test generation without transfer sequences");
    println!("(paper rows for its four circuits shown on the right)");
    println!();
    println!(
        "  circuit  | trans | tests |  len |  1len | cycles |      % || paper: tests |  len |  1len | cycles |      %"
    );
    scanft_bench::rule(112);
    for name in names {
        if !args.selected(name) {
            continue;
        }
        let table = benchmarks::build(name).expect("known circuit");
        let uios = derive_uios_with(&table, &UioConfig::with_max_len(table.num_state_vars()));
        let set = generate(
            &table,
            &uios,
            &GenConfig {
                transfer_max_len: 0,
                ..GenConfig::default()
            },
        );
        let base = scanft_core::generate::per_transition_baseline(&table);
        let sv = table.num_state_vars();
        let cycles = test_set_cycles(&set, sv);
        let base_cycles = test_set_cycles(&base, sv);
        let paper = PAPER_TABLE8.iter().find(|r| r.0 == name);
        let paper_txt = match paper {
            Some(&(_, _, tests, len, l1, cyc, p)) => format!(
                "{tests:>12} | {len:>4} | {:>5} | {cyc:>6} | {:>6}",
                pct(l1),
                pct(p)
            ),
            None => format!("{:>47}", "(not in the paper's Table 8)"),
        };
        println!(
            "  {:<8} | {:>5} | {:>5} | {:>4} | {:>5} | {:>6} | {:>6} || {paper_txt}",
            name,
            set.num_transitions,
            set.tests.len(),
            set.total_length(),
            pct(set.percent_unit_tested()),
            cycles,
            pct(percent_of(cycles, base_cycles)),
        );
    }
    println!();
    println!("claim: disabling transfers lowers cycles at the cost of more, shorter tests");
}
