//! Ablation (beyond the paper's tables): structural fault collapsing.
//!
//! The paper reports collapsed fault counts for its own netlists (40 for
//! `lion`); our tables use the full uncollapsed line-fault universe. This
//! binary measures the structural-equivalence collapse ratio on our
//! netlists and verifies that simulating representatives only does not
//! change coverage.

use scanft_bench::{pct, plan_circuits, Args, Budget};
use scanft_core::generate::{generate, GenConfig};
use scanft_fsm::benchmarks;
use scanft_fsm::uio::{derive_uios_with, UioConfig};
use scanft_sim::{campaign, collapse, faults};
use scanft_synth::{synthesize, SynthConfig};

fn main() {
    let args = Args::parse();
    println!("Ablation: structural stuck-at fault collapsing");
    println!();
    println!("  circuit  |  faults | classes |  ratio | coverage full | coverage reps | agree");
    scanft_bench::rule(88);
    for (spec, run) in plan_circuits(&args, Budget::GateLevel) {
        if !run {
            println!("  {:<8} | {:>64}", spec.name, "skipped(budget)");
            continue;
        }
        let table = benchmarks::build(spec.name).expect("registry circuit");
        let uios = derive_uios_with(&table, &UioConfig::with_max_len(table.num_state_vars()));
        let set = generate(&table, &uios, &GenConfig::default());
        let circuit = synthesize(&table, &SynthConfig::default());
        let stuck = faults::enumerate_stuck(circuit.netlist());
        let collapsed = collapse::collapse_stuck(circuit.netlist(), &stuck);
        let tests = set.to_scan_tests(&circuit);

        let full = campaign::run(circuit.netlist(), &tests, &faults::as_fault_list(&stuck));
        let reps: Vec<faults::Fault> = collapsed
            .representatives
            .iter()
            .copied()
            .map(faults::Fault::Stuck)
            .collect();
        let rep_report = campaign::run(circuit.netlist(), &tests, &reps);

        // Expanding the representative verdicts must reproduce the full
        // per-fault verdicts (equivalence soundness).
        let rep_flags: Vec<bool> = rep_report
            .detecting_test
            .iter()
            .map(Option::is_some)
            .collect();
        let expanded = collapsed.expand(&rep_flags);
        let agree = expanded
            .iter()
            .zip(&full.detecting_test)
            .all(|(e, d)| *e == d.is_some());

        println!(
            "  {:<8} | {:>7} | {:>7} | {:>6} | {:>13} | {:>13} | {:>5}",
            spec.name,
            stuck.len(),
            collapsed.representatives.len(),
            pct(100.0 * collapsed.ratio()),
            pct(full.coverage_percent()),
            pct(rep_report.coverage_percent()),
            if agree { "yes" } else { "NO" },
        );
        assert!(agree, "{}: collapsing changed a verdict", spec.name);
    }
    scanft_bench::rule(88);
    println!("  `ratio` = classes/faults in percent; `agree` checks every individual");
    println!("  fault verdict after expanding the representative results.");
}
