//! Functional vs complete coverage: the paper's top-up comparison.
//!
//! For every circuit, the functional test set (Table 5 generation) is fault
//! simulated over the collapsed single stuck-at universe; statically
//! untestable faults (infinite SCOAP measures) are pruned; PODEM then
//! targets the surviving faults, each fresh pattern is fault-simulated
//! across all still-pending faults, and every fault ends up detected,
//! proven untestable (statically or by search), or (only on a budget hit)
//! aborted.
//!
//! Two claims are checked: deterministic generation has to add only a
//! handful of patterns on top of the functional tests reaching 100%
//! effective coverage, and the SCOAP-guided backtrace spends no more PODEM
//! decisions than the raw level heuristic (the `dec` columns show both and
//! the delta) with identical coverage.

use scanft_atpg::Heuristic;
use scanft_bench::{pct, plan_circuits, Args, Budget};
use scanft_core::generate::{generate, GenConfig};
use scanft_core::top_up::{top_up, TopUpConfig};
use scanft_fsm::{benchmarks, uio};
use scanft_synth::{synthesize, SynthConfig};

fn main() {
    let args = Args::parse();
    println!(
        "Coverage top-up: functional tests + deterministic ATPG (collapsed stuck-at, static prune)"
    );
    println!();
    println!(
        "  circuit  || faults | static | func det || +pats | atpg det | redund | abort || eff f.c. | complete || dec(level) | dec(scoap) | delta"
    );
    scanft_bench::rule(134);
    let mut all_complete = true;
    let mut coverage_matches = true;
    let mut total_patterns = 0usize;
    let mut total_faults = 0usize;
    let mut total_dec_level = 0u64;
    let mut total_dec_scoap = 0u64;
    for (spec, run) in plan_circuits(&args, Budget::GateLevel) {
        if !run {
            println!("  {:<8} || {:>121}", spec.name, "skipped(budget)");
            continue;
        }
        let table = benchmarks::build(spec.name).expect("registry circuit");
        let uios = uio::derive_uios(&table, table.num_state_vars());
        let set = generate(&table, &uios, &GenConfig::default());
        let circuit = synthesize(&table, &SynthConfig::default());
        let level = top_up(
            &circuit,
            &set,
            &TopUpConfig {
                heuristic: Heuristic::Level,
                ..TopUpConfig::default()
            },
        );
        let outcome = top_up(
            &circuit,
            &set,
            &TopUpConfig {
                heuristic: Heuristic::Scoap,
                ..TopUpConfig::default()
            },
        );
        let report = &outcome.report;
        all_complete &= report.is_complete();
        coverage_matches &=
            (report.effective_coverage_percent() - level.report.effective_coverage_percent()).abs()
                < 1e-9;
        total_patterns += report.atpg_patterns;
        total_faults += report.faults.len();
        total_dec_level += level.report.decisions;
        total_dec_scoap += report.decisions;
        let delta = report.decisions as i64 - level.report.decisions as i64;
        println!(
            "  {:<8} || {:>6} | {:>6} | {:>8} || {:>5} | {:>8} | {:>6} | {:>5} || {:>8} | {:>8} || {:>10} | {:>10} | {:>+5}",
            spec.name,
            report.faults.len(),
            report.statically_untestable(),
            report.detected_functional(),
            report.atpg_patterns,
            report.detected_atpg(),
            report.proven_redundant(),
            report.aborted(),
            pct(report.effective_coverage_percent()),
            if report.is_complete() { "yes" } else { "NO" },
            level.report.decisions,
            report.decisions,
            delta,
        );
    }
    println!();
    println!(
        "{total_patterns} deterministic pattern(s) added across {total_faults} collapsed faults"
    );
    println!(
        "PODEM decisions: {total_dec_level} (level heuristic) vs {total_dec_scoap} (SCOAP), delta {:+}",
        total_dec_scoap as i64 - total_dec_level as i64
    );
    if !coverage_matches {
        println!("claim NOT reproduced: SCOAP-guided search changed effective coverage");
        std::process::exit(1);
    }
    if all_complete {
        println!(
            "claim (100% coverage of testable faults within budget): REPRODUCED on every simulated circuit"
        );
    } else {
        println!("claim NOT reproduced: at least one circuit left faults aborted or undetected");
        std::process::exit(1);
    }
}
