//! Functional vs complete coverage: the paper's top-up comparison.
//!
//! For every circuit, the functional test set (Table 5 generation) is fault
//! simulated over the collapsed single stuck-at universe; statically
//! untestable faults (infinite SCOAP measures or a FIRE-style implication
//! conflict) are pruned; PODEM then targets the surviving faults, each
//! fresh pattern is fault-simulated across all still-pending faults, and
//! every fault ends up detected, proven untestable (statically or by
//! search), or (only on a budget hit) aborted.
//!
//! Three claims are checked and enforced (non-zero exit on failure):
//!
//! 1. deterministic generation adds only a handful of patterns on top of
//!    the functional tests and reaches 100% effective coverage with zero
//!    aborted faults on every circuit;
//! 2. implication-guided PODEM (static learning + dominator requirements)
//!    spends no more backtracks in total than the unguided search, at
//!    identical effective coverage — the `bt` columns show the A/B and the
//!    delta, `nec` the necessary assignments the closure fixed;
//! 3. dominance collapsing (`dom` column) never leaves more classes than
//!    equivalence collapsing (`equ`).

use scanft_bench::{pct, plan_circuits, Args, Budget};
use scanft_core::generate::{generate, GenConfig};
use scanft_core::top_up::{top_up, TopUpConfig};
use scanft_fsm::{benchmarks, uio};
use scanft_sim::collapse::{collapse_stuck, collapse_stuck_with, CollapseConfig};
use scanft_sim::faults;
use scanft_synth::{synthesize, SynthConfig};

fn main() {
    let args = Args::parse();
    println!(
        "Coverage top-up: functional tests + implication-guided ATPG (collapsed stuck-at, static prune)"
    );
    println!();
    println!(
        "  circuit  || faults |  equ  |  dom  | static | func det || +pats | atpg det | redund | abort || eff f.c. | complete || bt(off) | bt(on) | delta |  nec"
    );
    scanft_bench::rule(148);
    let mut all_complete = true;
    let mut zero_aborts = true;
    let mut coverage_matches = true;
    let mut dominance_never_worse = true;
    let mut total_patterns = 0usize;
    let mut total_faults = 0usize;
    let mut total_bt_off = 0u64;
    let mut total_bt_on = 0u64;
    let mut total_necessary = 0u64;
    for (spec, run) in plan_circuits(&args, Budget::GateLevel) {
        if !run {
            println!("  {:<8} || {:>135}", spec.name, "skipped(budget)");
            continue;
        }
        let table = benchmarks::build(spec.name).expect("registry circuit");
        let uios = uio::derive_uios(&table, table.num_state_vars());
        let set = generate(&table, &uios, &GenConfig::default());
        let circuit = synthesize(&table, &SynthConfig::default());

        // Collapse ratios over the full uncollapsed universe: equivalence
        // (what top_up uses) and equivalence + dominance.
        let universe = faults::enumerate_stuck(circuit.netlist());
        let equivalence = collapse_stuck(circuit.netlist(), &universe);
        let dominance = collapse_stuck_with(
            circuit.netlist(),
            &universe,
            &CollapseConfig { dominance: true },
        );
        dominance_never_worse &=
            dominance.representatives.len() <= equivalence.representatives.len();

        let unguided = top_up(
            &circuit,
            &set,
            &TopUpConfig {
                use_implications: false,
                ..TopUpConfig::default()
            },
        );
        let outcome = top_up(&circuit, &set, &TopUpConfig::default());
        let report = &outcome.report;
        all_complete &= report.is_complete() && unguided.report.is_complete();
        zero_aborts &= report.aborted() == 0 && unguided.report.aborted() == 0;
        coverage_matches &= (report.effective_coverage_percent()
            - unguided.report.effective_coverage_percent())
        .abs()
            < 1e-9;
        total_patterns += report.atpg_patterns;
        total_faults += report.faults.len();
        total_bt_off += unguided.report.backtracks;
        total_bt_on += report.backtracks;
        total_necessary += report.implications;
        let delta = report.backtracks as i64 - unguided.report.backtracks as i64;
        println!(
            "  {:<8} || {:>6} | {:>5.3} | {:>5.3} | {:>6} | {:>8} || {:>5} | {:>8} | {:>6} | {:>5} || {:>8} | {:>8} || {:>7} | {:>6} | {:>+5} | {:>4}",
            spec.name,
            report.faults.len(),
            equivalence.ratio(),
            dominance.ratio(),
            report.statically_untestable(),
            report.detected_functional(),
            report.atpg_patterns,
            report.detected_atpg(),
            report.proven_redundant(),
            report.aborted(),
            pct(report.effective_coverage_percent()),
            if report.is_complete() { "yes" } else { "NO" },
            unguided.report.backtracks,
            report.backtracks,
            delta,
            report.implications,
        );
    }
    println!();
    println!(
        "{total_patterns} deterministic pattern(s) added across {total_faults} collapsed faults"
    );
    println!(
        "PODEM backtracks: {total_bt_off} (unguided) vs {total_bt_on} (implication-guided), \
         delta {:+}, {total_necessary} necessary assignments fixed",
        total_bt_on as i64 - total_bt_off as i64
    );
    let mut failed = false;
    if !coverage_matches {
        println!("claim NOT reproduced: implication guidance changed effective coverage");
        failed = true;
    }
    if total_bt_on > total_bt_off {
        println!(
            "claim NOT reproduced: implication guidance increased total backtracks \
             ({total_bt_on} > {total_bt_off})"
        );
        failed = true;
    }
    if !dominance_never_worse {
        println!("claim NOT reproduced: dominance collapsing left more classes than equivalence");
        failed = true;
    }
    if !zero_aborts {
        println!("claim NOT reproduced: at least one fault aborted on a budget hit");
        failed = true;
    }
    if !all_complete {
        println!("claim NOT reproduced: at least one circuit left faults aborted or undetected");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "claims (100% effective coverage, implication guidance never worse, dominance never \
         worse): REPRODUCED on every simulated circuit"
    );
}
