//! Functional vs complete coverage: the paper's top-up comparison.
//!
//! For every circuit, the functional test set (Table 5 generation) is fault
//! simulated over the collapsed single stuck-at universe; PODEM then
//! targets the surviving faults, each fresh pattern is fault-simulated
//! across all still-pending faults, and every fault ends up detected,
//! proven combinationally redundant, or (only on a budget hit) aborted.
//!
//! The claim being reproduced: deterministic generation has to add only a
//! handful of patterns on top of the functional tests, and the combined
//! set reaches 100% coverage of the non-redundant faults.

use scanft_bench::{pct, plan_circuits, Args, Budget};
use scanft_core::generate::{generate, GenConfig};
use scanft_core::top_up::{top_up, TopUpConfig};
use scanft_fsm::{benchmarks, uio};
use scanft_synth::{synthesize, SynthConfig};

fn main() {
    let args = Args::parse();
    println!("Coverage top-up: functional tests + deterministic ATPG (collapsed stuck-at)");
    println!();
    println!(
        "  circuit  || faults | func det | func f.c. || +pats | atpg det | redund | abort || final f.c. | eff f.c. | complete"
    );
    scanft_bench::rule(118);
    let mut all_complete = true;
    let mut total_patterns = 0usize;
    let mut total_faults = 0usize;
    for (spec, run) in plan_circuits(&args, Budget::GateLevel) {
        if !run {
            println!("  {:<8} || {:>105}", spec.name, "skipped(budget)");
            continue;
        }
        let table = benchmarks::build(spec.name).expect("registry circuit");
        let uios = uio::derive_uios(&table, table.num_state_vars());
        let set = generate(&table, &uios, &GenConfig::default());
        let circuit = synthesize(&table, &SynthConfig::default());
        let outcome = top_up(&circuit, &set, &TopUpConfig::default());
        let report = &outcome.report;
        let func_pct = if report.faults.is_empty() {
            100.0
        } else {
            100.0 * report.detected_functional() as f64 / report.faults.len() as f64
        };
        all_complete &= report.is_complete();
        total_patterns += report.atpg_patterns;
        total_faults += report.faults.len();
        println!(
            "  {:<8} || {:>6} | {:>8} | {:>9} || {:>5} | {:>8} | {:>6} | {:>5} || {:>10} | {:>8} | {}",
            spec.name,
            report.faults.len(),
            report.detected_functional(),
            pct(func_pct),
            report.atpg_patterns,
            report.detected_atpg(),
            report.proven_redundant(),
            report.aborted(),
            pct(report.coverage_percent()),
            pct(report.effective_coverage_percent()),
            if report.is_complete() { "yes" } else { "NO" }
        );
    }
    println!();
    println!(
        "{total_patterns} deterministic pattern(s) added across {total_faults} collapsed faults"
    );
    if all_complete {
        println!(
            "claim (100% coverage of non-redundant faults within budget): REPRODUCED on every simulated circuit"
        );
    } else {
        println!("claim NOT reproduced: at least one circuit left faults aborted or undetected");
        std::process::exit(1);
    }
}
