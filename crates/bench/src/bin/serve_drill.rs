//! End-to-end drill for the `scanft serve` daemon — the serving analogue
//! of `chaos_resume`.
//!
//! The script (all against one in-process server with a 3-worker pool,
//! delay-only chaos holding a cancellation window open):
//!
//! 1. three client threads concurrently submit `bbtas`, `dk27` and `mc`;
//! 2. the `bbtas` thread kills its own job mid-flight via `DELETE` and
//!    asserts it lands `cancelled` (retrying the submit/kill race a few
//!    times — the cancel must beat a campaign that only takes tens of
//!    milliseconds);
//! 3. the surviving jobs must complete with coverage *equal* to the
//!    one-shot in-process pipeline (the same code `scanft simulate`
//!    drives) and byte-identical journals;
//! 4. every circuit is resubmitted warm: the artifact cache must hit, the
//!    results must again be byte-identical, and the drill reports cache
//!    hit-rate plus cold/warm submit-to-first-batch latency.
//!
//! Exits non-zero on any violated assertion, so CI can run it as a gate.
//! `--journal-dir DIR` keeps the journals somewhere uploadable.

use std::time::{Duration, Instant};

use scanft_core::generate::{generate, GenConfig};
use scanft_fsm::uio::{derive_uios_with, UioConfig};
use scanft_fsm::{benchmarks, kiss, StateTable};
use scanft_harness::JournalWriter;
use scanft_server::{Client, JobKind, JobView, Server, ServerConfig};
use scanft_sim::campaign::{self, Kernel, SupervisedConfig};
use scanft_synth::{synthesize, SynthConfig};

const WAIT: Duration = Duration::from_secs(300);

fn string_of(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|p| args.get(p + 1))
        .cloned()
}

/// The one-shot reference: exactly the pipeline `scanft simulate` runs
/// (and the server's job executor mirrors), writing `journal_path`.
/// Returns the coverage percent.
fn reference_run(table: &StateTable, journal_path: &str) -> f64 {
    let circuit = synthesize(table, &SynthConfig::default());
    let uios = derive_uios_with(table, &UioConfig::with_max_len(table.num_state_vars()));
    let scan_tests = generate(table, &uios, &GenConfig::default()).to_scan_tests(&circuit);
    let fault_list =
        scanft_sim::faults::as_fault_list(&scanft_sim::faults::enumerate_stuck(circuit.netlist()));
    let order = campaign::decreasing_length_order(&scan_tests);
    let config = SupervisedConfig {
        num_threads: 1,
        observe_scan_out: true,
        budget: scanft_harness::Budget::unlimited(),
        label: table.name().to_owned(),
        kernel: Kernel::Wide,
        arena: None,
    };
    let writer = JournalWriter::create(journal_path).expect("reference journal");
    let partial = campaign::run_supervised(
        circuit.netlist(),
        &scan_tests,
        &order,
        &fault_list,
        &config,
        Some(&writer),
        None,
        None,
    )
    .expect("reference campaign");
    assert!(partial.is_complete(), "reference run must not stop early");
    partial.coverage_lower_bound_percent()
}

/// Submits `table` and waits for a terminal state; returns the final view
/// and the submit-to-first-batch latency (first journal record on disk).
fn submit_and_wait(client: &Client, table: &StateTable) -> (JobView, Duration) {
    let body = kiss::write(table);
    let submitted_at = Instant::now();
    let accepted = client
        .submit(&body, table.name(), "drill", JobKind::Simulate)
        .expect("submit");
    // First batch = journal has the header line plus at least one record.
    let journal = client
        .status(&accepted.id)
        .expect("status")
        .journal
        .expect("journal path");
    let first_batch = loop {
        let lines = std::fs::read_to_string(&journal)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if lines >= 2 {
            break submitted_at.elapsed();
        }
        if submitted_at.elapsed() > WAIT {
            panic!("{}: no batch within {WAIT:?}", table.name());
        }
        scanft_race::thread::sleep(Duration::from_micros(200));
    };
    let finished = client.wait(&accepted.id, WAIT).expect("wait");
    (finished, first_batch)
}

/// Submits the victim and cancels it mid-flight; retries the race (the
/// whole campaign is only tens of milliseconds long) a bounded number of
/// times. Returns the number of attempts used.
fn kill_mid_flight(client: &Client, table: &StateTable) -> usize {
    let body = kiss::write(table);
    for attempt in 1..=10 {
        let accepted = client
            .submit(&body, table.name(), "drill", JobKind::Simulate)
            .expect("submit victim");
        // Wait until the worker actually claims it, then strike.
        let deadline = Instant::now() + WAIT;
        loop {
            let view = client.status(&accepted.id).expect("status victim");
            match view.status.as_str() {
                "queued" => {}
                "running" => {
                    client.cancel(&accepted.id).expect("cancel");
                    break;
                }
                // Terminal before we could aim: lost the race this round.
                _ => break,
            }
            assert!(Instant::now() < deadline, "victim stuck queued");
            scanft_race::thread::sleep(Duration::from_millis(1));
        }
        let finished = client.wait(&accepted.id, WAIT).expect("wait victim");
        match finished.status.as_str() {
            "cancelled" => {
                println!(
                    "  victim {}: cancelled mid-flight on attempt {attempt}",
                    table.name(),
                );
                return attempt;
            }
            "completed" => continue, // campaign outran the DELETE; retry
            other => panic!("victim ended `{other}`: {:?}", finished.message),
        }
    }
    panic!("could not cancel mid-flight in 10 attempts");
}

/// `--measure`: chaos-free latency measurement — submit each circuit cold
/// then warm on an undisturbed server and report submit-to-first-batch
/// latency plus the cache-hit rate (the EXPERIMENTS.md numbers).
fn measure(journal_dir: &str) {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        campaign_threads: 1,
        journal_dir: journal_dir.to_owned(),
        chaos_seed: None,
        ..ServerConfig::default()
    })
    .expect("server start");
    let client = Client::new(server.addr());
    println!(
        "serve_drill --measure: server on {} (no chaos)",
        server.addr()
    );
    println!("\ncircuit   cold first-batch   warm first-batch   warm cache");
    for name in ["bbtas", "dk27", "mc", "dk16", "ex2"] {
        let table = benchmarks::build(name).expect("benchmark");
        let (_, cold) = submit_and_wait(&client, &table);
        let (warm_view, warm) = submit_and_wait(&client, &table);
        println!(
            "{name:<9} {:>12.1}ms   {:>12.1}ms   {}",
            cold.as_secs_f64() * 1e3,
            warm.as_secs_f64() * 1e3,
            warm_view.cache.as_deref().unwrap_or("?"),
        );
    }
    let metrics = client.metrics().expect("metrics");
    for line in metrics.lines().filter(|l| l.contains("server.cache.")) {
        println!("{line}");
    }
    server.shutdown();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let journal_dir = string_of(&args, "--journal-dir").unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("scanft-serve-drill-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    if args.iter().any(|a| a == "--measure") {
        measure(&journal_dir);
        return;
    }

    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 3,
        campaign_threads: 1,
        journal_dir: journal_dir.clone(),
        // Delay-only chaos: stretches each work unit so DELETE has a
        // window to land mid-campaign. Never injects panics or torn
        // writes.
        chaos_seed: Some(23),
        ..ServerConfig::default()
    })
    .expect("server start");
    let client = Client::new(server.addr());
    println!(
        "serve_drill: server on {} (journals in {journal_dir})",
        server.addr()
    );

    let survivors = ["dk27", "mc"];

    // Phase 1: three concurrent client threads; bbtas gets killed.
    let mut handles = Vec::new();
    for name in survivors {
        let client = client.clone();
        handles.push(scanft_race::thread::spawn(move || {
            let table = benchmarks::build(name).expect("benchmark");
            let (view, first_batch) = submit_and_wait(&client, &table);
            (name, view, first_batch)
        }));
    }
    let killer = {
        let client = client.clone();
        let table = benchmarks::build("bbtas").expect("bbtas");
        scanft_race::thread::spawn(move || kill_mid_flight(&client, &table))
    };
    let cold: Vec<(&str, JobView, Duration)> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    killer.join().expect("killer thread");

    // Phase 2: verify the survivors against the one-shot pipeline.
    let mut failures = 0;
    println!("\ncircuit   phase  coverage   reference  journal   first-batch");
    for (name, view, first_batch) in &cold {
        let table = benchmarks::build(name).expect("benchmark");
        let ref_journal = format!("{journal_dir}/{name}.reference.jsonl");
        let ref_coverage = reference_run(&table, &ref_journal);
        let coverage = view.coverage.expect("coverage");
        let served = std::fs::read(view.journal.as_deref().expect("journal")).expect("read served");
        let reference = std::fs::read(&ref_journal).expect("read reference");
        let identical = served == reference;
        let coverage_ok = (coverage - ref_coverage).abs() < 1e-12;
        println!(
            "{name:<9} cold   {coverage:>7.2}%  {ref_coverage:>7.2}%   {}  {:>8.1}ms",
            if identical { "identical" } else { "DIFFERS " },
            first_batch.as_secs_f64() * 1e3,
        );
        if !identical || !coverage_ok || view.status != "completed" {
            failures += 1;
        }
    }

    // Phase 3: warm resubmissions — the cache must hit, results must not
    // change, and bbtas (killed above, artifacts already cached) must now
    // complete.
    let mut warm_names: Vec<&str> = survivors.to_vec();
    warm_names.push("bbtas");
    let mut hits = 0usize;
    for name in &warm_names {
        let table = benchmarks::build(name).expect("benchmark");
        let (view, first_batch) = submit_and_wait(&client, &table);
        let hit = view.cache.as_deref() == Some("hit");
        hits += usize::from(hit);
        let cold_view = cold.iter().find(|(n, _, _)| n == name);
        let consistent = match cold_view {
            Some((_, cold_view, _)) => {
                cold_view.coverage == view.coverage
                    && std::fs::read(view.journal.as_deref().expect("journal")).expect("read warm")
                        == std::fs::read(cold_view.journal.as_deref().expect("journal"))
                            .expect("read cold")
            }
            None => view.status == "completed",
        };
        println!(
            "{name:<9} warm   {:>7.2}%  cache {}   {}  {:>8.1}ms",
            view.coverage.unwrap_or(0.0),
            if hit { "hit " } else { "MISS" },
            if consistent { "identical" } else { "DIFFERS " },
            first_batch.as_secs_f64() * 1e3,
        );
        if !hit || !consistent {
            failures += 1;
        }
        let _ = table;
    }

    // The victim's kill-then-resubmit also proves "second submission
    // served from cache": bbtas built artifacts before dying.
    let metrics = client.metrics().expect("metrics");
    let grab = |name: &str| -> u64 {
        metrics
            .lines()
            .find(|l| l.contains(&format!("\"name\":\"{name}\"")))
            .and_then(|l| {
                let marker = "\"value\":";
                let start = l.find(marker)? + marker.len();
                l[start..].trim_end_matches('}').parse().ok()
            })
            .unwrap_or(0)
    };
    let (cache_hits, cache_misses) = (grab("server.cache.hits"), grab("server.cache.misses"));
    println!(
        "\ncache: {cache_hits} hits / {cache_misses} misses ({:.0}% hit rate), {} warm hits of {}",
        100.0 * cache_hits as f64 / (cache_hits + cache_misses).max(1) as f64,
        hits,
        warm_names.len(),
    );
    println!(
        "jobs: accepted {} completed {} cancelled {} rejected {}",
        grab("server.jobs.accepted"),
        grab("server.jobs.completed"),
        grab("server.jobs.cancelled"),
        grab("server.jobs.rejected"),
    );

    server.shutdown();
    if failures > 0 {
        eprintln!("serve_drill: {failures} assertion(s) failed");
        std::process::exit(1);
    }
    println!("serve_drill: all assertions held");
}
