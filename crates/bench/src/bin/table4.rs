//! Table 4 of the paper: circuit parameters and UIO derivation results.
//!
//! The `pi`, `states` and `sv` columns match the paper exactly (they define
//! the benchmark suite). `unique`, `m.len` and `time` are measured on our
//! machines (synthetic contents; `lion` matches exactly).

use scanft_bench::{paper::paper_row, pct, plan_circuits, Args, Budget};
use scanft_fsm::benchmarks;
use scanft_fsm::uio::{derive_uios_with, UioConfig};

fn main() {
    let args = Args::parse();
    println!("Table 4: Circuit parameters (ours vs paper; pi/states/sv identical)");
    println!();
    println!(
        "  circuit  | pi | states | sv || unique | m.len |   time  || paper: unique | m.len |    time"
    );
    scanft_bench::rule(96);
    for (spec, run) in plan_circuits(&args, Budget::Functional) {
        let p = paper_row(spec.name).expect("paper row exists");
        if !run {
            println!(
                "  {:<8} | {:>2} | {:>6} | {:>2} || {:>22} || {:>13} | {:>5} | {:>7}",
                spec.name,
                spec.num_inputs,
                spec.num_states,
                spec.num_state_vars,
                "skipped(budget)",
                p.t4_unique,
                p.t4_mlen,
                p.t4_time
            );
            continue;
        }
        let table = benchmarks::build(spec.name).expect("registry circuit");
        let config = UioConfig::with_max_len(table.num_state_vars());
        let uios = derive_uios_with(&table, &config);
        let note = if uios.any_budget_exceeded() { "*" } else { " " };
        println!(
            "  {:<8} | {:>2} | {:>6} | {:>2} || {:>5}{note} | {:>5} | {:>7} || {:>13} | {:>5} | {:>7}",
            spec.name,
            spec.num_inputs,
            spec.num_states,
            spec.num_state_vars,
            uios.num_with_uio(),
            uios.max_found_len(),
            pct(uios.elapsed_secs()),
            p.t4_unique,
            p.t4_mlen,
            p.t4_time
        );
    }
    println!();
    println!("* = UIO search hit its node budget for at least one state");
    println!("(paper time column: HP J210 CPU seconds, shape only)");
}
