//! Table 2 of the paper: unique input-output sequences for `lion`.
//!
//! This experiment reproduces **exactly**: state 0 has UIO `(00)` ending in
//! state 0, state 2 has `(00 11)` ending in state 3, states 1 and 3 have
//! none.

use scanft_fsm::{format_input_seq, uio};

fn main() {
    let lion = scanft_fsm::benchmarks::lion();
    let uios = uio::derive_uios(&lion, lion.num_state_vars());

    println!("Table 2: Unique input-output sequences for lion (L = sv = 2)");
    println!();
    println!("  state | unique  | f.stat ||  paper: unique | f.stat");
    scanft_bench::rule(58);
    let paper: [(&str, &str); 4] = [("00", "0"), ("-", "-"), ("00 11", "3"), ("-", "-")];
    let mut ok = true;
    for s in 0..lion.num_states() as u32 {
        let (ours_seq, ours_fin) = match uios.sequence(s) {
            Some(u) => (
                format_input_seq(&u.inputs, lion.num_inputs()),
                u.final_state.to_string(),
            ),
            None => ("-".to_owned(), "-".to_owned()),
        };
        let (p_seq, p_fin) = paper[s as usize];
        if ours_seq != p_seq || ours_fin != p_fin {
            ok = false;
        }
        println!("  {s:>5} | {ours_seq:<7} | {ours_fin:<6} ||  {p_seq:<13} | {p_fin}");
    }
    println!();
    println!(
        "verification vs paper: {}",
        if ok {
            "all rows match exactly"
        } else {
            "MISMATCH"
        }
    );
    assert!(ok, "Table 2 deviates from the paper");
}
