//! Table 9 of the paper: the effect of the UIO length limit.
//!
//! For each of the paper's four sweep circuits (dk512, ex4, mark1, rie) the
//! UIO length limit L is raised from 1 until the number of states with a
//! UIO saturates; each row regenerates the tests and the cycle counts. The
//! shape to reproduce: more UIOs chain more transitions per test (lower
//! `1len`), while overly long UIOs start costing more cycles than scan
//! (percentages creep back up past L ~ sv).

use scanft_bench::{paper::PAPER_TABLE9, pct, Args, Budget};
use scanft_core::cycles::{percent_of, test_set_cycles};
use scanft_core::generate::{generate, per_transition_baseline, GenConfig};
use scanft_fsm::benchmarks;
use scanft_fsm::uio::{derive_uios_with, UioConfig};

fn main() {
    let args = Args::parse();
    println!("Table 9: Results with different UIO length limits (transfer len <= 1)");

    for &(name, paper_rows) in PAPER_TABLE9 {
        if !args.selected(name) {
            continue;
        }
        let spec = benchmarks::find_spec(name).expect("sweep circuit");
        let run = args.full
            || !args.only.is_empty()
            || scanft_bench::within_budget(spec, Budget::Functional);
        println!();
        println!("  ({name})");
        if !run {
            println!("  skipped(budget): pass --full or --only {name}");
            continue;
        }
        let table = benchmarks::build(name).expect("registry circuit");
        let base_cycles = test_set_cycles(&per_transition_baseline(&table), table.num_state_vars());

        println!(
            "  unique | m.len | tests |  len |  1len | cycles |      % || paper: unique | tests | cycles |      %"
        );
        scanft_bench::rule(104);
        let mut prev_unique = usize::MAX;
        let mut limit = 1usize;
        loop {
            let uios = derive_uios_with(&table, &UioConfig::with_max_len(limit));
            let unique = uios.num_with_uio();
            let set = generate(&table, &uios, &GenConfig::default());
            let cycles = test_set_cycles(&set, table.num_state_vars());
            let paper = paper_rows.iter().find(|r| r.1 == limit);
            let paper_txt = match paper {
                Some(&(u, _, tests, _, _, cyc, p)) => {
                    format!("{u:>13} | {tests:>5} | {cyc:>6} | {:>6}", pct(p))
                }
                None => format!("{:>40}", "-"),
            };
            println!(
                "  {unique:>6} | {limit:>5} | {:>5} | {:>4} | {:>5} | {cycles:>6} | {:>6} || {paper_txt}",
                set.tests.len(),
                set.total_length(),
                pct(set.percent_unit_tested()),
                pct(percent_of(cycles, base_cycles)),
            );
            if unique == prev_unique || limit >= table.num_state_vars() + 4 {
                break;
            }
            prev_unique = unique;
            limit += 1;
        }
    }
}
