//! Ablation (beyond the paper's tables): the scan-clock ratio.
//!
//! Section 3 of the paper notes that "in practice, the scan clock may be
//! much slower than the circuit clock, and then it is necessary to multiply
//! the contribution of the scan operations by the ratio of the two clock
//! cycles" — and Section 2 adds that a slow scan clock lets proportionally
//! longer UIO/transfer sequences be used for free. This binary quantifies
//! the first half: how the functional tests' advantage over per-transition
//! testing grows with the scan ratio `M` (their whole point is using fewer
//! scan operations).

use scanft_bench::{pct, plan_circuits, Args, Budget};
use scanft_core::cycles::{clock_cycles_with_scan_ratio, percent_of};
use scanft_core::generate::{generate, GenConfig};
use scanft_fsm::benchmarks;
use scanft_fsm::uio::{derive_uios_with, UioConfig};

const RATIOS: &[u64] = &[1, 2, 4, 8, 16];

fn main() {
    let args = Args::parse();
    println!("Ablation: functional-test cycles as % of the per-transition baseline,");
    println!("for scan clocks M times slower than the circuit clock");
    println!();
    print!("  circuit  |");
    for m in RATIOS {
        print!("   M={m:<3}|");
    }
    println!();
    scanft_bench::rule(12 + 8 * RATIOS.len());
    let mut sums = vec![0.0f64; RATIOS.len()];
    let mut rows = 0usize;
    for (spec, run) in plan_circuits(&args, Budget::Functional) {
        if !run {
            println!("  {:<8} | skipped(budget)", spec.name);
            continue;
        }
        let table = benchmarks::build(spec.name).expect("registry circuit");
        let sv = table.num_state_vars();
        let uios = derive_uios_with(&table, &UioConfig::with_max_len(sv));
        let set = generate(&table, &uios, &GenConfig::default());
        let trans = table.num_transitions();
        print!("  {:<8} |", spec.name);
        for (k, &m) in RATIOS.iter().enumerate() {
            let funct = clock_cycles_with_scan_ratio(sv, set.tests.len(), set.total_length(), m);
            let base = clock_cycles_with_scan_ratio(sv, trans, trans, m);
            let p = percent_of(funct, base);
            sums[k] += p;
            print!(" {:>6} |", pct(p));
        }
        println!();
        rows += 1;
    }
    scanft_bench::rule(12 + 8 * RATIOS.len());
    if rows > 0 {
        print!("  average  |");
        for s in &sums {
            print!(" {:>6} |", pct(s / rows as f64));
        }
        println!();
    }
    println!();
    println!("the slower the scan clock, the larger the win from chaining transitions");
    println!("into fewer tests (scan operations dominate the baseline's cost).");
}
