//! Table 5 of the paper: functional test generation results.
//!
//! The `trans` column matches the paper exactly for every circuit, and the
//! whole `lion` row reproduces verbatim (16 / 9 / 28 / 25.00). Other rows
//! use synthetic table contents; the claims to check are *shape*: fewer
//! tests than transitions, total length below `2 * trans`, and an average
//! `1len` below ~50%.

use scanft_bench::{paper::paper_row, pct, plan_circuits, Args, Budget};
use scanft_core::generate::{generate, GenConfig};
use scanft_fsm::benchmarks;
use scanft_fsm::uio::{derive_uios_with, UioConfig};

fn main() {
    let args = Args::parse();
    println!("Table 5: Functional test generation (UIO len <= sv, transfer len <= 1)");
    println!();
    println!(
        "  circuit  |  trans |  tests |    len |  1len |    time || paper:  tests |    len |  1len"
    );
    scanft_bench::rule(95);
    let mut sum_1len = 0.0;
    let mut rows = 0usize;
    for (spec, run) in plan_circuits(&args, Budget::Functional) {
        let p = paper_row(spec.name).expect("paper row exists");
        if !run {
            println!(
                "  {:<8} | {:>6} | {:>29} || {:>13} | {:>6} | {:>5}",
                spec.name,
                spec.num_transitions(),
                "skipped(budget)",
                p.t5_tests,
                p.t5_len,
                pct(p.t5_1len)
            );
            continue;
        }
        let table = benchmarks::build(spec.name).expect("registry circuit");
        let uios = derive_uios_with(&table, &UioConfig::with_max_len(table.num_state_vars()));
        let set = generate(&table, &uios, &GenConfig::default());
        assert_eq!(set.num_transitions, spec.num_transitions());
        sum_1len += set.percent_unit_tested();
        rows += 1;
        println!(
            "  {:<8} | {:>6} | {:>6} | {:>6} | {:>5} | {:>7} || {:>13} | {:>6} | {:>5}",
            spec.name,
            set.num_transitions,
            set.tests.len(),
            set.total_length(),
            pct(set.percent_unit_tested()),
            pct(set.elapsed_secs),
            p.t5_tests,
            p.t5_len,
            pct(p.t5_1len)
        );
    }
    scanft_bench::rule(95);
    if rows > 0 {
        println!(
            "  average 1len over the {} generated rows: {}  (paper, all 31 rows: 48.59)",
            rows,
            pct(sum_1len / rows as f64)
        );
    }
}
