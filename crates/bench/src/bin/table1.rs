//! Table 1 of the paper: the state table of MCNC benchmark `lion`.
//!
//! The embedded machine is checked cell-by-cell against the published
//! table; this binary prints it in the paper's layout.

fn main() {
    let lion = scanft_fsm::benchmarks::lion();
    println!("Table 1: State table of lion (embedded verbatim from the paper)");
    println!();
    println!("       NS, z for x1x2 =");
    println!("  PS |   00    01    10    11");
    scanft_bench::rule(34);
    for s in 0..lion.num_states() as u32 {
        print!("  {s:>2} |");
        for i in 0..lion.num_input_combos() as u32 {
            let (ns, z) = lion.step(s, i);
            print!("  {ns},{z} ");
        }
        println!();
    }
    println!();

    // Verify against the published entries.
    let expect: [[(u32, u64); 4]; 4] = [
        [(0, 0), (1, 1), (0, 0), (0, 0)],
        [(1, 1), (1, 1), (3, 1), (0, 0)],
        [(2, 1), (2, 1), (3, 1), (3, 1)],
        [(1, 1), (2, 1), (3, 1), (3, 1)],
    ];
    let mut mismatches = 0;
    for s in 0..4u32 {
        for i in 0..4u32 {
            if lion.step(s, i) != expect[s as usize][i as usize] {
                mismatches += 1;
            }
        }
    }
    println!(
        "verification vs paper: {}/16 entries match",
        16 - mismatches
    );
    assert_eq!(mismatches, 0, "embedded lion deviates from Table 1");
}
