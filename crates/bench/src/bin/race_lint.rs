//! `race_lint`: the CI gate for the source-invariant concurrency lints.
//!
//! Walks every `.rs` file under `crates/*/src` (production code only —
//! `tests/`, `benches/` and `#[cfg(test)]` modules are exempt) and runs
//! the [`scanft_bench::srclint`] rules:
//!
//! * `raw-std-sync` / `raw-thread-spawn` — sync and threads go through
//!   the `scanft_race` facade, so the model checker sees every operation;
//! * `wall-clock-in-replay` — files marked `race-lint:
//!   deterministic-replay` must not read real time;
//! * `relaxed-ordering-policy` — `Ordering::Relaxed` only in files marked
//!   `race-lint: statistics-counters`;
//! * `lock-poison-expect` — no `.expect`/`.unwrap` on lock/wait results.
//!
//! All five deny by default: any finding exits 1, so CI fails closed.
//!
//! Usage: `race_lint [--root DIR] [--json] [--level code=severity]...`
//! where `DIR` defaults to `crates` (run from the workspace root),
//! `--json` emits one JSON object per finding (JSONL), and `--level`
//! retunes one lint (e.g. `--level raw-std-sync=warn`).

use std::path::PathBuf;

use scanft_analyze::{LintCode, LintLevels, LintReport, Severity};
use scanft_bench::srclint;

fn usage(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: race_lint [--root DIR] [--json] [--level code=severity]...");
    std::process::exit(2)
}

fn main() {
    let mut json = false;
    let mut root = PathBuf::from("crates");
    let mut levels = LintLevels::default();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => {
                root = PathBuf::from(iter.next().unwrap_or_else(|| usage("--root needs a value")));
            }
            "--level" => {
                let spec = iter
                    .next()
                    .unwrap_or_else(|| usage("--level needs code=severity"));
                let Some((name, level)) = spec.split_once('=') else {
                    usage(&format!("malformed --level {spec}, want code=severity"));
                };
                let code =
                    LintCode::parse(name).unwrap_or_else(|| usage(&format!("unknown lint {name}")));
                let severity = Severity::parse(level)
                    .unwrap_or_else(|| usage(&format!("unknown severity {level}")));
                levels.set(code, severity);
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }

    let (report, files): (LintReport, usize) = srclint::lint_workspace(&root, &levels)
        .unwrap_or_else(|err| {
            eprintln!("race_lint: cannot walk {}: {err}", root.display());
            std::process::exit(2)
        });

    if json {
        print!("{}", report.to_jsonl());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
    }
    eprintln!(
        "race_lint: {files} files scanned, {} deny, {} warn",
        report.num_deny(),
        report.num_warn()
    );
    if !report.passes() {
        std::process::exit(1);
    }
}
