//! Benchmark harness for `scanft`: one binary per table of the paper
//! (`table1` … `table9`) plus the [`harness`]-based micro-benchmarks.
//!
//! Every binary prints the regenerated table side by side with the paper's
//! published values ([`paper`]). Absolute per-circuit values differ where
//! the MCNC state-table *contents* matter (the suite substitutes synthetic
//! machines with the published parameters — see `DESIGN.md`); structural
//! columns (`trans`, cycle baselines) and the `lion` rows match exactly.
//!
//! # Size budgets
//!
//! By default the binaries skip the most expensive circuits (the paper
//! spent up to 4.3 CPU-days on `nucpwr`); skipped rows are printed as
//! `skipped(budget)`, never silently dropped. `--full` removes the budget,
//! `--only a,b,c` restricts to named circuits.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod harness;
pub mod paper;
pub mod srclint;

use scanft_fsm::benchmarks::{CircuitSpec, CIRCUITS};

/// Command-line options shared by the table binaries.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// Remove the size budget.
    pub full: bool,
    /// Restrict to these circuit names (empty = all).
    pub only: Vec<String>,
}

impl Args {
    /// Parses `--full` and `--only a,b,c` from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on unknown flags.
    #[must_use]
    pub fn parse() -> Self {
        let mut args = Args::default();
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--full" => args.full = true,
                "--only" => {
                    let list = iter.next().unwrap_or_else(|| usage("--only needs a value"));
                    args.only = list.split(',').map(str::to_owned).collect();
                }
                other => usage(&format!("unknown flag {other}")),
            }
        }
        args
    }

    /// Whether `name` passes the `--only` filter.
    #[must_use]
    pub fn selected(&self, name: &str) -> bool {
        self.only.is_empty() || self.only.iter().any(|n| n == name)
    }
}

fn usage(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: table<N> [--full] [--only circuit,circuit,...]");
    std::process::exit(2)
}

/// What a table binary wants to do with each circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Functional-level work only (UIO derivation + test generation).
    Functional,
    /// Full gate-level fault simulation.
    GateLevel,
}

/// Whether `spec` fits the default budget for the given work.
///
/// Functional: everything except `nucpwr` (2^18 transitions; the paper
/// spent 4.3 CPU-days on it). Gate level: at most 10 PLA variables and
/// 1024 transitions, keeping the default run under a minute per circuit.
#[must_use]
pub fn within_budget(spec: &CircuitSpec, budget: Budget) -> bool {
    match budget {
        Budget::Functional => spec.num_transitions() <= 16_384,
        Budget::GateLevel => {
            spec.num_inputs + spec.num_state_vars <= 10 && spec.num_transitions() <= 1024
        }
    }
}

/// The circuits a binary should run, with skip markers for the rest:
/// returns `(spec, run)` pairs in the paper's order.
#[must_use]
pub fn plan_circuits(args: &Args, budget: Budget) -> Vec<(&'static CircuitSpec, bool)> {
    CIRCUITS
        .iter()
        .filter(|spec| args.selected(spec.name))
        .map(|spec| {
            let run = args.full || !args.only.is_empty() || within_budget(spec, budget);
            (spec, run)
        })
        .collect()
}

/// Formats a float with two decimals, the paper's table style.
#[must_use]
pub fn pct(value: f64) -> String {
    format!("{value:.2}")
}

/// Prints a rule line matching `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_are_sane() {
        let lion = scanft_fsm::benchmarks::find_spec("lion").unwrap();
        assert!(within_budget(lion, Budget::Functional));
        assert!(within_budget(lion, Budget::GateLevel));
        let nucpwr = scanft_fsm::benchmarks::find_spec("nucpwr").unwrap();
        assert!(!within_budget(nucpwr, Budget::Functional));
        assert!(!within_budget(nucpwr, Budget::GateLevel));
        let bbsse = scanft_fsm::benchmarks::find_spec("bbsse").unwrap();
        assert!(within_budget(bbsse, Budget::Functional));
        assert!(!within_budget(bbsse, Budget::GateLevel));
    }

    #[test]
    fn plan_respects_only_and_full() {
        let args = Args {
            full: false,
            only: vec!["nucpwr".into()],
        };
        let plan = plan_circuits(&args, Budget::Functional);
        assert_eq!(plan.len(), 1);
        // Explicit selection overrides the budget.
        assert!(plan[0].1);

        let all = plan_circuits(&Args::default(), Budget::Functional);
        assert_eq!(all.len(), 31);
        assert_eq!(all.iter().filter(|(_, run)| !run).count(), 1);

        let full = plan_circuits(
            &Args {
                full: true,
                only: vec![],
            },
            Budget::GateLevel,
        );
        assert!(full.iter().all(|(_, run)| *run));
    }

    #[test]
    fn pct_formats_like_the_paper() {
        assert_eq!(pct(96.0), "96.00");
        assert_eq!(pct(48.586), "48.59");
    }
}
