//! Integration test: BLIF round trip of a real synthesized circuit (lives
//! outside the unit tests because it pulls in the synthesis crate).

use scanft_netlist::blif;

#[test]
fn synthesized_circuit_round_trips() {
    let lion = scanft_fsm::benchmarks::lion();
    let circuit = scanft_synth::synthesize(&lion, &scanft_synth::SynthConfig::default());
    let text = blif::write(circuit.netlist(), "lion");
    let parsed = blif::parse(&text).expect("round trip");
    assert_eq!(parsed.num_pis(), 2);
    assert_eq!(parsed.num_ppis(), 2);
    assert_eq!(parsed.pos().len(), 1);
    assert_eq!(parsed.ppos().len(), 2);
    // Behavioural check against the state table through the scan simulator
    // would need scanft-sim; structural + per-gate checks suffice here, and
    // the in-crate round-trip test covers behaviour on a hand netlist.
    assert!(parsed.num_gates() >= circuit.netlist().num_gates());
}

#[test]
fn all_small_benchmarks_export_and_reimport() {
    for name in ["bbtas", "dk15", "dk27", "shiftreg", "mc", "tav"] {
        let table = scanft_fsm::benchmarks::build(name).expect("registry circuit");
        let circuit = scanft_synth::synthesize(&table, &scanft_synth::SynthConfig::default());
        let text = blif::write(circuit.netlist(), name);
        let parsed = blif::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(parsed.num_ppis(), table.num_state_vars(), "{name}");
        assert_eq!(parsed.pos().len(), table.num_outputs(), "{name}");
    }
}
