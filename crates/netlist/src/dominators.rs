use crate::net::Netlist;
use crate::NetId;

/// Sentinel: the virtual exit node every observed net points at.
const EXIT: u32 = u32::MAX;
/// Sentinel: no structural path from this net to any PO/PPO.
const UNREACHABLE: u32 = u32::MAX - 1;

/// Immediate post-dominators of every net with respect to the observation
/// points (POs and PPOs).
///
/// Net `d` post-dominates net `n` when every structural path from `n` to an
/// observed output passes through `d`. The immediate post-dominator is the
/// nearest such net; walking [`PostDominators::idom`] repeatedly yields the
/// full dominator chain ([`PostDominators::chain`]). Because the netlist is
/// a DAG whose net ids are already a topological order, a single reverse
/// sweep with the classic intersection step computes the exact tree — no
/// fixpoint iteration is needed.
///
/// The chain is the structural backbone of two consumers:
///
/// * FIRE-style untestability proofs — a fault effect must cross every
///   dominator gate, so their side inputs must all take non-controlling
///   values;
/// * dominance fault collapsing — a single-fanout net whose immediate
///   post-dominator is its consuming gate's output funnels every test
///   through that gate.
///
/// # Examples
///
/// ```
/// use scanft_netlist::{GateKind, NetlistBuilder, PostDominators};
///
/// # fn main() -> Result<(), scanft_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new(2, 0);
/// let a = b.add_gate(GateKind::Not, &[b.pi(0)])?;
/// let z = b.add_gate(GateKind::And, &[a, b.pi(1)])?;
/// let n = b.finish(vec![z], vec![])?;
/// let dom = PostDominators::new(&n);
/// assert_eq!(dom.idom(a), Some(z)); // every path from `a` crosses `z`
/// assert_eq!(dom.idom(z), None); // observed directly at the PO
/// assert!(dom.is_observed(z));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PostDominators {
    idom: Vec<u32>,
    observed: Vec<bool>,
}

impl PostDominators {
    /// Computes the immediate post-dominator of every net toward the
    /// observed outputs (POs and PPOs) of `netlist`.
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        let n = netlist.num_nets();
        let mut observed = vec![false; n];
        for &po in netlist.pos().iter().chain(netlist.ppos()) {
            observed[po as usize] = true;
        }
        let mut idom = vec![UNREACHABLE; n];
        // Reverse topological order: gate outputs come after their inputs,
        // so every successor of a net is resolved before the net itself.
        for net in (0..n).rev() {
            if observed[net] {
                idom[net] = EXIT;
                continue;
            }
            let mut cur = UNREACHABLE;
            for &g in netlist.fanout(net as NetId) {
                let succ = netlist.gate_output(g as usize);
                if idom[succ as usize] == UNREACHABLE {
                    // Paths dying in an unobservable cone never reach an
                    // output, so they place no constraint on the chain.
                    continue;
                }
                cur = if cur == UNREACHABLE {
                    succ
                } else {
                    intersect(&idom, cur, succ)
                };
            }
            idom[net] = cur;
        }
        PostDominators { idom, observed }
    }

    /// The immediate post-dominator of `net`, or `None` when the chain is
    /// empty — either `net` is observed directly (see
    /// [`PostDominators::is_observed`]) or no path reaches an output (see
    /// [`PostDominators::reaches_output`]).
    #[must_use]
    pub fn idom(&self, net: NetId) -> Option<NetId> {
        match self.idom[net as usize] {
            EXIT | UNREACHABLE => None,
            d => Some(d),
        }
    }

    /// Whether `net` is a PO or PPO (observed with an empty dominator
    /// chain).
    #[must_use]
    pub fn is_observed(&self, net: NetId) -> bool {
        self.observed[net as usize]
    }

    /// Whether at least one structural path leads from `net` to an observed
    /// output.
    #[must_use]
    pub fn reaches_output(&self, net: NetId) -> bool {
        self.idom[net as usize] != UNREACHABLE
    }

    /// The dominator chain of `net`: its immediate post-dominator, that
    /// net's post-dominator, and so on until an observed output is passed.
    ///
    /// The chain is empty when `net` is observed directly or unobservable.
    pub fn chain(&self, net: NetId) -> impl Iterator<Item = NetId> + '_ {
        Chain {
            dom: self,
            cur: net,
        }
    }
}

/// Iterator over a net's post-dominator chain (see
/// [`PostDominators::chain`]).
struct Chain<'a> {
    dom: &'a PostDominators,
    cur: NetId,
}

impl Iterator for Chain<'_> {
    type Item = NetId;

    fn next(&mut self) -> Option<NetId> {
        let next = self.dom.idom(self.cur)?;
        self.cur = next;
        Some(next)
    }
}

/// Nearest common ancestor of `a` and `b` in the post-dominator tree.
///
/// The tree's root is the virtual exit; a net's post-dominator always has a
/// larger id (it lies downstream), so climbing the smaller id walks away
/// from the root's frontier and toward it along `idom`.
fn intersect(idom: &[u32], mut a: u32, mut b: u32) -> u32 {
    while a != b {
        if a == EXIT {
            b = idom[b as usize];
        } else if b == EXIT || a < b {
            a = idom[a as usize];
        } else {
            b = idom[b as usize];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::GateKind;
    use crate::NetlistBuilder;

    #[test]
    fn chain_of_gates_dominates_linearly() {
        let mut b = NetlistBuilder::new(1, 0);
        let g1 = b.add_gate(GateKind::Not, &[0]).unwrap();
        let g2 = b.add_gate(GateKind::Not, &[g1]).unwrap();
        let g3 = b.add_gate(GateKind::Not, &[g2]).unwrap();
        let n = b.finish(vec![g3], vec![]).unwrap();
        let dom = PostDominators::new(&n);
        assert_eq!(dom.idom(0), Some(g1));
        assert_eq!(dom.idom(g1), Some(g2));
        assert_eq!(dom.idom(g2), Some(g3));
        assert_eq!(dom.idom(g3), None);
        assert!(dom.is_observed(g3));
        assert_eq!(dom.chain(0).collect::<Vec<_>>(), vec![g1, g2, g3]);
    }

    #[test]
    fn reconvergent_fanout_dominated_by_the_join() {
        // pi0 fans out to two NOTs that reconverge in an AND.
        let mut b = NetlistBuilder::new(1, 0);
        let left = b.add_gate(GateKind::Not, &[0]).unwrap();
        let right = b.add_gate(GateKind::Buf, &[0]).unwrap();
        let join = b.add_gate(GateKind::And, &[left, right]).unwrap();
        let n = b.finish(vec![join], vec![]).unwrap();
        let dom = PostDominators::new(&n);
        assert_eq!(dom.idom(0), Some(join));
        assert_eq!(dom.idom(left), Some(join));
        assert_eq!(dom.idom(right), Some(join));
    }

    #[test]
    fn fanout_to_two_outputs_has_no_dominator() {
        let mut b = NetlistBuilder::new(2, 0);
        let a = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let z1 = b.add_gate(GateKind::Not, &[a]).unwrap();
        let z2 = b.add_gate(GateKind::Buf, &[a]).unwrap();
        let n = b.finish(vec![z1, z2], vec![]).unwrap();
        let dom = PostDominators::new(&n);
        assert_eq!(dom.idom(a), None);
        assert!(!dom.is_observed(a));
        assert!(dom.reaches_output(a));
        assert_eq!(dom.chain(a).count(), 0);
    }

    #[test]
    fn observed_net_with_fanout_has_empty_chain() {
        // `a` is itself a PO and also feeds `z`: observation at the PO makes
        // the chain empty even though a gate consumes it.
        let mut b = NetlistBuilder::new(2, 0);
        let a = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let z = b.add_gate(GateKind::Not, &[a]).unwrap();
        let n = b.finish(vec![a, z], vec![]).unwrap();
        let dom = PostDominators::new(&n);
        assert_eq!(dom.idom(a), None);
        assert!(dom.is_observed(a));
    }

    #[test]
    fn dangling_cone_is_unreachable() {
        let mut b = NetlistBuilder::new(2, 0);
        let dead = b.add_gate(GateKind::Not, &[0]).unwrap();
        let z = b.add_gate(GateKind::Buf, &[1]).unwrap();
        let n = b.finish(vec![z], vec![]).unwrap();
        let dom = PostDominators::new(&n);
        assert!(!dom.reaches_output(dead));
        assert!(!dom.reaches_output(0));
        assert_eq!(dom.idom(dead), None);
        assert!(dom.reaches_output(1));
    }

    #[test]
    fn ppos_are_observation_points() {
        let mut b = NetlistBuilder::new(1, 1);
        let (x, ps) = (b.pi(0), b.ppi(0));
        let ns = b.add_gate(GateKind::Xor, &[x, ps]).unwrap();
        let n = b.finish(vec![], vec![ns]).unwrap();
        let dom = PostDominators::new(&n);
        assert!(dom.is_observed(ns));
        assert_eq!(dom.idom(x), Some(ns));
        assert_eq!(dom.idom(ps), Some(ns));
    }

    #[test]
    fn diamond_with_side_exit_stops_at_first_common_gate() {
        // pi0 -> {a, b}; a -> join, b -> join; join -> z (PO), and `a` also
        // feeds a second PO directly, so pi0's chain must skip `join`.
        let mut b = NetlistBuilder::new(1, 0);
        let a = b.add_gate(GateKind::Not, &[0]).unwrap();
        let bb = b.add_gate(GateKind::Buf, &[0]).unwrap();
        let join = b.add_gate(GateKind::And, &[a, bb]).unwrap();
        let n = b.finish(vec![join, a], vec![]).unwrap();
        let dom = PostDominators::new(&n);
        // `a` is observed at the second PO, so it has no dominator, and
        // neither does pi0 (one path ends at `a`'s PO, another at `join`).
        assert_eq!(dom.idom(a), None);
        assert_eq!(dom.idom(0), None);
        assert_eq!(dom.idom(bb), Some(join));
    }
}
