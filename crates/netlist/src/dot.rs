use std::fmt::Write as _;

use crate::net::Netlist;

/// Renders the netlist as a Graphviz DOT digraph, for debugging and
/// documentation. PIs and PPIs are boxes, gates are ellipses labelled with
/// their kind, POs/PPOs are marked with double borders.
///
/// # Examples
///
/// ```
/// use scanft_netlist::{GateKind, NetlistBuilder};
///
/// # fn main() -> Result<(), scanft_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new(1, 0);
/// let g = b.add_gate(GateKind::Not, &[b.pi(0)])?;
/// let n = b.finish(vec![g], vec![])?;
/// let dot = scanft_netlist::to_dot(&n, "inverter");
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("NOT"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn to_dot(netlist: &Netlist, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let inputs = netlist.num_pis() + netlist.num_ppis();
    for net in 0..inputs as u32 {
        let _ = writeln!(
            out,
            "  n{net} [shape=box,label=\"{}\"];",
            netlist.net_name(net)
        );
    }
    for (g, gate) in netlist.gates().iter().enumerate() {
        let net = netlist.gate_output(g);
        let emphasized = netlist.pos().contains(&net) || netlist.ppos().contains(&net);
        let peripheries = if emphasized { 2 } else { 1 };
        let _ = writeln!(
            out,
            "  n{net} [shape=ellipse,peripheries={peripheries},label=\"{} {}\"];",
            gate.kind,
            netlist.net_name(net)
        );
        for &input in &gate.inputs {
            let _ = writeln!(out, "  n{input} -> n{net};");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::GateKind;
    use crate::NetlistBuilder;

    #[test]
    fn dot_contains_all_nets_and_edges() {
        let mut b = NetlistBuilder::new(2, 1);
        let a = b.add_gate(GateKind::And, &[0, 1]).unwrap();
        let o = b.add_gate(GateKind::Or, &[a, 2]).unwrap();
        let n = b.finish(vec![o], vec![a]).unwrap();
        let dot = to_dot(&n, "t");
        assert!(dot.contains("n0 [shape=box,label=\"x1\"]"));
        assert!(dot.contains("n2 [shape=box,label=\"y1\"]"));
        assert!(dot.contains("n0 -> n3;"));
        assert!(dot.contains("n3 -> n4;"));
        // Both outputs get double peripheries.
        assert_eq!(dot.matches("peripheries=2").count(), 2);
        assert!(dot.ends_with("}\n"));
    }
}
