//! BLIF (Berkeley Logic Interchange Format) export and import.
//!
//! The scan circuit is exported in its sequential view: present-state lines
//! become `.latch` outputs and next-state lines `.latch` inputs, so the
//! file loads directly into standard logic-synthesis tools. Gates are
//! written as `.names` tables in the canonical single-cover forms (AND as
//! one ON-set row, OR as one-hot rows, NAND/NOR via their complement
//! encodings, XOR as its parity rows).
//!
//! The importer accepts exactly those canonical forms (plus single-literal
//! buffers/inverters), which makes `parse(write(n))` the identity on every
//! netlist this crate produces. Arbitrary `.names` tables are rejected with
//! a clear error rather than silently approximated.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::net::{GateKind, Netlist};
use crate::{NetId, NetlistBuilder, NetlistError};

/// Serializes the netlist to BLIF.
///
/// Net names follow [`Netlist::net_name`] (`x*` inputs, `y*` state lines,
/// `g*` gates); primary outputs are exported as `z1..zn` driven by buffers
/// when necessary, and next-state lines as `ns1..nsk` latched back into
/// `y1..yk`.
#[must_use]
pub fn write(netlist: &Netlist, model: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {model}");
    let inputs: Vec<String> = (0..netlist.num_pis())
        .map(|k| netlist.net_name(netlist.pi(k)))
        .collect();
    let _ = writeln!(out, ".inputs {}", inputs.join(" "));
    let outputs: Vec<String> = (1..=netlist.pos().len()).map(|k| format!("z{k}")).collect();
    let _ = writeln!(out, ".outputs {}", outputs.join(" "));
    for (k, _) in netlist.ppos().iter().enumerate() {
        let _ = writeln!(
            out,
            ".latch ns{} {} re clk 0",
            k + 1,
            netlist.net_name(netlist.ppi(k))
        );
    }
    for (g, gate) in netlist.gates().iter().enumerate() {
        let names: Vec<String> = gate.inputs.iter().map(|&i| netlist.net_name(i)).collect();
        let target = netlist.net_name(netlist.gate_output(g));
        let _ = writeln!(out, ".names {} {}", names.join(" "), target);
        let k = gate.inputs.len();
        match gate.kind {
            GateKind::And => {
                let _ = writeln!(out, "{} 1", "1".repeat(k));
            }
            GateKind::Nand => {
                let _ = writeln!(out, "{} 0", "1".repeat(k));
            }
            GateKind::Or => {
                for p in 0..k {
                    let mut row = vec!['-'; k];
                    row[p] = '1';
                    let _ = writeln!(out, "{} 1", row.iter().collect::<String>());
                }
            }
            GateKind::Nor => {
                let _ = writeln!(out, "{} 1", "0".repeat(k));
            }
            GateKind::Xor => {
                for combo in 0..(1u32 << k) {
                    if combo.count_ones() % 2 == 1 {
                        let row: String = (0..k)
                            .map(|p| if combo >> p & 1 == 1 { '1' } else { '0' })
                            .collect();
                        let _ = writeln!(out, "{row} 1");
                    }
                }
            }
            GateKind::Not => {
                let _ = writeln!(out, "0 1");
            }
            GateKind::Buf => {
                let _ = writeln!(out, "1 1");
            }
        }
    }
    // Output and next-state aliases.
    for (z, &net) in netlist.pos().iter().enumerate() {
        let _ = writeln!(out, ".names {} z{}", netlist.net_name(net), z + 1);
        let _ = writeln!(out, "1 1");
    }
    for (k, &net) in netlist.ppos().iter().enumerate() {
        let _ = writeln!(out, ".names {} ns{}", netlist.net_name(net), k + 1);
        let _ = writeln!(out, "1 1");
    }
    out.push_str(".end\n");
    out
}

/// Parses BLIF produced by [`write()`] (or hand-written in the same canonical
/// forms) back into a [`Netlist`].
///
/// # Errors
///
/// Returns [`NetlistError::BadOutputs`] with a descriptive message for
/// malformed or unsupported constructs (non-canonical `.names` tables,
/// undefined signals, missing sections). Latch reset values and clocking
/// are ignored (the scan model supplies state explicitly).
pub fn parse(text: &str) -> Result<Netlist, NetlistError> {
    let fail = |message: String| NetlistError::BadOutputs { message };

    // First pass: collect sections.
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut latches: Vec<(String, String)> = Vec::new(); // (ns signal, ps signal)
    let mut names_blocks: Vec<(Vec<String>, String, Vec<String>)> = Vec::new();
    {
        let mut current: Option<(Vec<String>, String, Vec<String>)> = None;
        let mut logical_lines: Vec<String> = Vec::new();
        let mut pending = String::new();
        for raw in text.lines() {
            let line = match raw.find('#') {
                Some(p) => &raw[..p],
                None => raw,
            };
            if let Some(stripped) = line.strip_suffix('\\') {
                pending.push_str(stripped);
                pending.push(' ');
                continue;
            }
            pending.push_str(line);
            let full = std::mem::take(&mut pending);
            if !full.trim().is_empty() {
                logical_lines.push(full.trim().to_owned());
            }
        }
        for line in logical_lines {
            let mut parts = line.split_whitespace();
            let head = parts.next().expect("non-empty line");
            if head.starts_with('.') && head != "." {
                if let Some(block) = current.take() {
                    names_blocks.push(block);
                }
            }
            match head {
                ".model" => {}
                ".inputs" => inputs.extend(parts.map(str::to_owned)),
                ".outputs" => outputs.extend(parts.map(str::to_owned)),
                ".latch" => {
                    let ns = parts
                        .next()
                        .ok_or_else(|| fail("`.latch` needs an input".into()))?;
                    let ps = parts
                        .next()
                        .ok_or_else(|| fail("`.latch` needs an output".into()))?;
                    latches.push((ns.to_owned(), ps.to_owned()));
                }
                ".names" => {
                    let signals: Vec<String> = parts.map(str::to_owned).collect();
                    let (target, sources) = signals
                        .split_last()
                        .ok_or_else(|| fail("`.names` needs a target".into()))?;
                    current = Some((sources.to_vec(), target.clone(), Vec::new()));
                }
                ".end" => break,
                other if other.starts_with('.') => {
                    return Err(fail(format!("unsupported directive `{other}`")));
                }
                _ => {
                    // A table row belonging to the open .names block.
                    let block = current
                        .as_mut()
                        .ok_or_else(|| fail(format!("table row `{line}` outside `.names`")))?;
                    block.2.push(line.clone());
                }
            }
        }
        if let Some(block) = current.take() {
            names_blocks.push(block);
        }
    }

    // Signal table: PIs first, then latch outputs (present state).
    let mut builder = NetlistBuilder::new(inputs.len(), latches.len());
    let mut net_of: HashMap<String, NetId> = HashMap::new();
    for (k, name) in inputs.iter().enumerate() {
        net_of.insert(name.clone(), builder.pi(k));
    }
    for (k, (_, ps)) in latches.iter().enumerate() {
        net_of.insert(ps.clone(), builder.ppi(k));
    }

    // Build gates in dependency order (iterate until fixpoint; the blocks
    // written by `write` are already ordered, but hand-written files may
    // not be).
    let mut remaining: Vec<(Vec<String>, String, Vec<String>)> = names_blocks;
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|(sources, target, rows)| {
            if !sources.iter().all(|s| net_of.contains_key(s)) {
                return true; // not ready yet
            }
            let nets: Vec<NetId> = sources.iter().map(|s| net_of[s]).collect();
            match recognize(&nets, rows) {
                Ok((kind, ins)) => {
                    let out = builder
                        .add_gate(kind, &ins)
                        .expect("recognized gates have valid fanin");
                    net_of.insert(target.clone(), out);
                    false
                }
                Err(_) => true, // surfaced after the loop
            }
        });
        if remaining.len() == before {
            let (sources, target, rows) = &remaining[0];
            if sources.iter().all(|s| net_of.contains_key(s)) {
                let nets: Vec<NetId> = sources.iter().map(|s| net_of[s]).collect();
                if let Err(e) = recognize(&nets, rows) {
                    return Err(fail(format!("`.names {target}`: {e}")));
                }
            }
            return Err(fail(format!(
                "undefined signal feeding `.names {target}` (or a combinational cycle)"
            )));
        }
    }

    let pos: Vec<NetId> = outputs
        .iter()
        .map(|name| {
            net_of
                .get(name)
                .copied()
                .ok_or_else(|| fail(format!("undriven primary output `{name}`")))
        })
        .collect::<Result<_, _>>()?;
    let ppos: Vec<NetId> = latches
        .iter()
        .map(|(ns, _)| {
            net_of
                .get(ns)
                .copied()
                .ok_or_else(|| fail(format!("undriven latch input `{ns}`")))
        })
        .collect::<Result<_, _>>()?;
    builder.finish(pos, ppos)
}

/// Recognizes a canonical `.names` table as a gate, or reports why the
/// table is unsupported.
fn recognize(nets: &[NetId], rows: &[String]) -> Result<(GateKind, Vec<NetId>), String> {
    let k = nets.len();
    if rows.is_empty() {
        return Err("constant tables are not supported".into());
    }
    let parsed: Vec<(Vec<char>, char)> = rows
        .iter()
        .map(|row| {
            let mut parts = row.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some(pattern), Some(value), None) if pattern.len() == k => Ok((
                    pattern.chars().collect(),
                    value.chars().next().ok_or("empty output value")?,
                )),
                (Some(value), None, None) if k == 0 && value.len() == 1 => {
                    Ok((Vec::new(), value.chars().next().expect("len checked")))
                }
                _ => Err(format!("malformed table row `{row}`")),
            }
        })
        .collect::<Result<_, _>>()?;

    let all_ones = |p: &[char]| p.iter().all(|&c| c == '1');
    let all_zeros = |p: &[char]| p.iter().all(|&c| c == '0');

    // Single-row forms.
    if parsed.len() == 1 {
        let (pattern, value) = &parsed[0];
        if k == 1 {
            return match (pattern[0], value) {
                ('1', '1') => Ok((GateKind::Buf, nets.to_vec())),
                ('0', '1') => Ok((GateKind::Not, nets.to_vec())),
                _ => Err("unsupported single-input table".into()),
            };
        }
        if all_ones(pattern) && *value == '1' {
            return Ok((GateKind::And, nets.to_vec()));
        }
        if all_ones(pattern) && *value == '0' {
            return Ok((GateKind::Nand, nets.to_vec()));
        }
        if all_zeros(pattern) && *value == '1' {
            return Ok((GateKind::Nor, nets.to_vec()));
        }
    }
    // OR: k one-hot '-' rows with value 1.
    if parsed.len() == k
        && parsed.iter().all(|(p, v)| {
            *v == '1'
                && p.iter().filter(|&&c| c == '1').count() == 1
                && p.iter().filter(|&&c| c == '-').count() == k - 1
        })
    {
        return Ok((GateKind::Or, nets.to_vec()));
    }
    // XOR: all odd-parity full rows with value 1.
    if parsed.len() == 1 << (k - 1)
        && parsed.iter().all(|(p, v)| {
            *v == '1'
                && p.iter().all(|&c| c == '0' || c == '1')
                && p.iter().filter(|&&c| c == '1').count() % 2 == 1
        })
    {
        let mut seen: Vec<Vec<char>> = parsed.iter().map(|(p, _)| p.clone()).collect();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() == 1 << (k - 1) {
            return Ok((GateKind::Xor, nets.to_vec()));
        }
    }
    Err("non-canonical table (not AND/OR/NAND/NOR/NOT/BUF/XOR)".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::GateKind;

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new(2, 1);
        let x1 = b.pi(0);
        let x2 = b.pi(1);
        let y1 = b.ppi(0);
        let a = b.add_gate(GateKind::And, &[x1, x2]).unwrap();
        let o = b.add_gate(GateKind::Or, &[a, y1]).unwrap();
        let n = b.add_gate(GateKind::Not, &[o]).unwrap();
        let xo = b.add_gate(GateKind::Xor, &[x1, y1]).unwrap();
        let nd = b.add_gate(GateKind::Nand, &[x1, x2, y1]).unwrap();
        let nr = b.add_gate(GateKind::Nor, &[a, xo]).unwrap();
        b.finish(vec![n, nr], vec![nd]).unwrap()
    }

    #[test]
    fn write_contains_sections() {
        let text = write(&sample(), "sample");
        assert!(text.starts_with(".model sample"));
        assert!(text.contains(".inputs x1 x2"));
        assert!(text.contains(".outputs z1 z2"));
        assert!(text.contains(".latch ns1 y1"));
        assert!(text.ends_with(".end\n"));
    }

    #[test]
    fn round_trip_preserves_behaviour() {
        let original = sample();
        let text = write(&original, "sample");
        let parsed = parse(&text).expect("canonical BLIF parses");
        assert_eq!(parsed.num_pis(), original.num_pis());
        assert_eq!(parsed.num_ppis(), original.num_ppis());
        assert_eq!(parsed.pos().len(), original.pos().len());
        assert_eq!(parsed.ppos().len(), original.ppos().len());
        // Behavioural equivalence over all (state, input) points.
        for point in 0..(1u32 << 3) {
            let eval = |n: &Netlist| -> (u64, u64) {
                let mut vals = vec![0u64; n.num_nets()];
                for (k, val) in vals.iter_mut().enumerate().take(3) {
                    *val = if point >> k & 1 == 1 { u64::MAX } else { 0 };
                }
                for (g, gate) in n.gates().iter().enumerate() {
                    let ins: Vec<u64> = gate.inputs.iter().map(|&i| vals[i as usize]).collect();
                    vals[n.gate_output(g) as usize] = gate.kind.eval_words(&ins);
                }
                let po = n
                    .pos()
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (z, &net)| acc | (vals[net as usize] & 1) << z);
                let ns = n
                    .ppos()
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (v, &net)| acc | (vals[net as usize] & 1) << v);
                (po, ns)
            };
            assert_eq!(eval(&original), eval(&parsed), "point {point:03b}");
        }
    }

    #[test]
    fn parse_rejects_non_canonical_tables() {
        let text = "\
.model bad
.inputs a b
.outputs f
.names a b f
10 1
01 0
.end
";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("malformed") || err.to_string().contains("non-canonical"));
    }

    #[test]
    fn parse_rejects_undefined_signals() {
        let text = "\
.model bad
.inputs a
.outputs f
.names ghost f
1 1
.end
";
        assert!(parse(text).is_err());
    }

    #[test]
    fn parse_handles_out_of_order_blocks_and_comments() {
        let text = "\
.model ooo  # comment
.inputs a b
.outputs f
# f depends on t, declared later
.names t f
0 1
.names a b t
11 1
.end
";
        let n = parse(text).expect("out-of-order blocks resolve");
        assert_eq!(n.num_gates(), 2); // the AND and the NOT
        assert_eq!(n.pos().len(), 1);
    }

    #[test]
    fn continuation_lines() {
        let text = ".model c\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n";
        let n = parse(text).expect("continuations join");
        assert_eq!(n.num_pis(), 2);
    }
}
