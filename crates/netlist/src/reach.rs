use crate::net::Netlist;
use crate::NetId;

/// Precomputed structural reachability ("is there a path of gates from net
/// `a` to net `b`?").
///
/// Used to enforce the paper's non-feedback condition on bridging-fault
/// pairs: a bridge between `g1` and `g2` is only considered when there is no
/// path from `g1` to `g2` nor from `g2` to `g1`.
///
/// The transitive fanout of every net is stored as a bitset row, so the
/// precomputation is `O(nets^2 / 64)` words — fine for the benchmark-scale
/// netlists this crate targets.
///
/// # Examples
///
/// ```
/// use scanft_netlist::{GateKind, NetlistBuilder, Reachability};
///
/// # fn main() -> Result<(), scanft_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new(2, 0);
/// let a = b.add_gate(GateKind::Not, &[b.pi(0)])?;
/// let c = b.add_gate(GateKind::And, &[a, b.pi(1)])?;
/// let n = b.finish(vec![c], vec![])?;
/// let reach = Reachability::new(&n);
/// assert!(reach.path_exists(a, c));
/// assert!(!reach.path_exists(c, a));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Reachability {
    words_per_row: usize,
    /// `rows[net]` = bitset of nets reachable from `net` (excluding itself
    /// unless a real path loops, which cannot happen in a DAG).
    rows: Vec<u64>,
}

impl Reachability {
    /// Computes reachability for every net of `netlist`.
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        let n = netlist.num_nets();
        let words_per_row = n.div_ceil(64).max(1);
        let mut rows = vec![0u64; n * words_per_row];
        // Walk gates in reverse topological order; a net reaches the output
        // nets of its fanout gates and everything they reach.
        for g in (0..netlist.num_gates()).rev() {
            let out = netlist.gate_output(g) as usize;
            // Collect the row of `out` once to avoid aliasing while writing
            // into input rows.
            let out_row: Vec<u64> = rows[out * words_per_row..(out + 1) * words_per_row].to_vec();
            let inputs = netlist.gates()[g].inputs.clone();
            for input in inputs {
                let row = &mut rows[input as usize * words_per_row..];
                row[out / 64] |= 1 << (out % 64);
                for (w, &bits) in out_row.iter().enumerate() {
                    row[w] |= bits;
                }
            }
        }
        Reachability {
            words_per_row,
            rows,
        }
    }

    /// Whether a structural path of gates leads from `from` to `to`.
    ///
    /// A net does not reach itself (the netlist is a DAG).
    ///
    /// # Panics
    ///
    /// Panics if either net index is out of the netlist this was built for.
    #[must_use]
    pub fn path_exists(&self, from: NetId, to: NetId) -> bool {
        let row = &self.rows
            [from as usize * self.words_per_row..(from as usize + 1) * self.words_per_row];
        row[to as usize / 64] >> (to as usize % 64) & 1 == 1
    }

    /// Whether two nets are structurally independent (no path in either
    /// direction) — condition (3) of the paper's bridging-fault pair
    /// definition.
    #[must_use]
    pub fn independent(&self, a: NetId, b: NetId) -> bool {
        !self.path_exists(a, b) && !self.path_exists(b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::GateKind;
    use crate::NetlistBuilder;

    #[test]
    fn chain_reachability() {
        let mut b = NetlistBuilder::new(1, 0);
        let g1 = b.add_gate(GateKind::Not, &[0]).unwrap();
        let g2 = b.add_gate(GateKind::Not, &[g1]).unwrap();
        let g3 = b.add_gate(GateKind::Not, &[g2]).unwrap();
        let n = b.finish(vec![g3], vec![]).unwrap();
        let r = Reachability::new(&n);
        assert!(r.path_exists(0, g1));
        assert!(r.path_exists(0, g3));
        assert!(r.path_exists(g1, g3));
        assert!(!r.path_exists(g3, g1));
        assert!(!r.path_exists(g1, 0));
        assert!(!r.path_exists(g1, g1));
    }

    #[test]
    fn diamond_and_independence() {
        let mut b = NetlistBuilder::new(2, 0);
        let left = b.add_gate(GateKind::Not, &[0]).unwrap();
        let right = b.add_gate(GateKind::Not, &[1]).unwrap();
        let join = b.add_gate(GateKind::And, &[left, right]).unwrap();
        let n = b.finish(vec![join], vec![]).unwrap();
        let r = Reachability::new(&n);
        assert!(r.independent(left, right));
        assert!(!r.independent(left, join));
        assert!(r.path_exists(0, join));
        assert!(!r.path_exists(0, right));
    }

    #[test]
    fn wide_netlist_crosses_word_boundaries() {
        // More than 64 nets so bitset rows span multiple words.
        let mut b = NetlistBuilder::new(1, 0);
        let mut prev = 0;
        let mut nets = vec![0];
        for _ in 0..100 {
            prev = b.add_gate(GateKind::Not, &[prev]).unwrap();
            nets.push(prev);
        }
        let n = b.finish(vec![prev], vec![]).unwrap();
        let r = Reachability::new(&n);
        for i in 0..nets.len() {
            for j in 0..nets.len() {
                assert_eq!(r.path_exists(nets[i], nets[j]), i < j, "{i} -> {j}");
            }
        }
    }
}
