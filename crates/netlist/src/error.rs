use std::error::Error;
use std::fmt;

use crate::NetId;

/// Error produced while constructing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate referenced a net that does not exist yet.
    UnknownNet {
        /// The offending net index.
        net: NetId,
        /// Number of nets that exist at the point of reference.
        num_nets: usize,
        /// Where the reference occurred, e.g. `input 1 of AND gate g3`.
        reference: String,
    },
    /// A gate was created with an input count its kind does not allow.
    BadFanin {
        /// The gate kind.
        kind: &'static str,
        /// Number of inputs supplied.
        fanin: usize,
        /// Allowed range, e.g. "exactly 1" or "at least 2".
        expected: &'static str,
    },
    /// `finish` was called with an output list of the wrong length or with
    /// an unknown net.
    BadOutputs {
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownNet {
                net,
                num_nets,
                reference,
            } => {
                write!(
                    f,
                    "net {net} does not exist ({num_nets} nets defined; referenced as {reference})"
                )
            }
            NetlistError::BadFanin {
                kind,
                fanin,
                expected,
            } => write!(f, "{kind} gate with {fanin} inputs, expected {expected}"),
            NetlistError::BadOutputs { message } => write!(f, "invalid outputs: {message}"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = NetlistError::UnknownNet {
            net: 9,
            num_nets: 3,
            reference: "input 0 of AND gate g2".into(),
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains("input 0 of AND gate g2"));
        let e = NetlistError::BadFanin {
            kind: "NOT",
            fanin: 2,
            expected: "exactly 1",
        };
        assert!(e.to_string().contains("NOT"));
        let e = NetlistError::BadOutputs {
            message: "empty".into(),
        };
        assert!(e.to_string().contains("empty"));
    }
}
