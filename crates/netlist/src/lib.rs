//! Gate-level netlist substrate for `scanft`.
//!
//! A [`Netlist`] models the combinational logic of a full-scan sequential
//! circuit: primary inputs, pseudo-primary inputs (scan flip-flop outputs,
//! i.e. present-state lines), a DAG of bounded-fanin gates, primary outputs
//! and pseudo-primary outputs (next-state lines captured into the scan
//! flip-flops). The scan chain itself needs no explicit structure — a scan
//! operation is "load the PPIs / observe the PPOs", which is exactly how the
//! paper models test application.
//!
//! The netlist is acyclic **by construction**: a gate may only reference
//! nets that already exist, so gate creation order is a topological order.
//!
//! # Example
//!
//! ```
//! use scanft_netlist::{GateKind, NetlistBuilder};
//!
//! # fn main() -> Result<(), scanft_netlist::NetlistError> {
//! // A 1-bit full-scan toggle cell: ns = ps XOR x, z = ps AND x.
//! let mut b = NetlistBuilder::new(1, 1);
//! let x = b.pi(0);
//! let ps = b.ppi(0);
//! let ns = b.add_gate(GateKind::Xor, &[x, ps])?;
//! let z = b.add_gate(GateKind::And, &[x, ps])?;
//! let netlist = b.finish(vec![z], vec![ns])?;
//! assert_eq!(netlist.num_gates(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod blif;

mod arena;
mod builder;
mod cones;
mod dominators;
mod dot;
mod error;
mod net;
mod reach;

pub use arena::GateArena;
pub use builder::NetlistBuilder;
pub use cones::FaultCone;
pub use dominators::PostDominators;
pub use dot::to_dot;
pub use error::NetlistError;
pub use net::{Gate, GateKind, Netlist, NetlistStats};
pub use reach::Reachability;

/// Index of a net (a line in the circuit). PIs come first, then PPIs, then
/// one net per gate output, in creation order.
pub type NetId = u32;
