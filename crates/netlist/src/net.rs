use std::fmt;

use crate::NetId;

/// Logic function of a gate.
///
/// Multi-input kinds (`And`, `Or`, `Nand`, `Nor`, `Xor`) accept two or more
/// inputs; `Not` and `Buf` take exactly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Logical AND of all inputs.
    And,
    /// Logical OR of all inputs.
    Or,
    /// Complement of the AND of all inputs.
    Nand,
    /// Complement of the OR of all inputs.
    Nor,
    /// Parity (XOR) of all inputs.
    Xor,
    /// Inverter.
    Not,
    /// Non-inverting buffer.
    Buf,
}

impl GateKind {
    /// Evaluates the gate over 64 patterns at once (one per bit lane).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `inputs` is empty.
    #[must_use]
    pub fn eval_words(self, inputs: &[u64]) -> u64 {
        debug_assert!(!inputs.is_empty());
        match self {
            GateKind::And => inputs.iter().fold(u64::MAX, |acc, &v| acc & v),
            GateKind::Or => inputs.iter().fold(0, |acc, &v| acc | v),
            GateKind::Nand => !inputs.iter().fold(u64::MAX, |acc, &v| acc & v),
            GateKind::Nor => !inputs.iter().fold(0, |acc, &v| acc | v),
            GateKind::Xor => inputs.iter().fold(0, |acc, &v| acc ^ v),
            GateKind::Not => !inputs[0],
            GateKind::Buf => inputs[0],
        }
    }

    /// Whether the kind requires exactly one input.
    #[must_use]
    pub fn is_unary(self) -> bool {
        matches!(self, GateKind::Not | GateKind::Buf)
    }

    /// Short uppercase name used in DOT output and diagnostics.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUF",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One gate instance: a kind and its input nets. Its output net id is
/// implicit (`num_pis + num_ppis + gate_index`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Logic function.
    pub kind: GateKind,
    /// Input nets, in pin order.
    pub inputs: Vec<NetId>,
}

/// A combinational netlist with a full-scan boundary.
///
/// Nets are numbered: `0..num_pis` are primary inputs, the next `num_ppis`
/// are pseudo-primary inputs (present-state lines), and each gate adds one
/// output net in creation order, which is guaranteed topological.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    pub(crate) num_pis: usize,
    pub(crate) num_ppis: usize,
    pub(crate) gates: Vec<Gate>,
    pub(crate) pos: Vec<NetId>,
    pub(crate) ppos: Vec<NetId>,
    /// `fanout[net]` = indices of gates reading `net`.
    pub(crate) fanout: Vec<Vec<u32>>,
    /// `level[net]` = longest path (in gates) from any input net.
    pub(crate) level: Vec<u32>,
}

impl Netlist {
    /// Number of primary inputs.
    #[must_use]
    pub fn num_pis(&self) -> usize {
        self.num_pis
    }

    /// Number of pseudo-primary inputs (state variables, `N_SV`).
    #[must_use]
    pub fn num_ppis(&self) -> usize {
        self.num_ppis
    }

    /// Number of gates.
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Total number of nets (PIs + PPIs + gate outputs).
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.num_pis + self.num_ppis + self.gates.len()
    }

    /// Net id of primary input `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= num_pis()`.
    #[must_use]
    pub fn pi(&self, k: usize) -> NetId {
        assert!(k < self.num_pis, "PI {k} out of range");
        k as NetId
    }

    /// Net id of pseudo-primary input (present-state line) `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= num_ppis()`.
    #[must_use]
    pub fn ppi(&self, k: usize) -> NetId {
        assert!(k < self.num_ppis, "PPI {k} out of range");
        (self.num_pis + k) as NetId
    }

    /// Primary-output nets, in output order.
    #[must_use]
    pub fn pos(&self) -> &[NetId] {
        &self.pos
    }

    /// Pseudo-primary-output (next-state) nets, in state-variable order.
    #[must_use]
    pub fn ppos(&self) -> &[NetId] {
        &self.ppos
    }

    /// The gates in topological order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate driving `net`, or `None` for PI/PPI nets.
    #[must_use]
    pub fn driver(&self, net: NetId) -> Option<&Gate> {
        let inputs = self.num_pis + self.num_ppis;
        (net as usize >= inputs).then(|| &self.gates[net as usize - inputs])
    }

    /// Index of the gate driving `net`, or `None` for PI/PPI nets.
    #[must_use]
    pub fn driver_index(&self, net: NetId) -> Option<usize> {
        let inputs = self.num_pis + self.num_ppis;
        (net as usize >= inputs).then(|| net as usize - inputs)
    }

    /// Output net of gate `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    #[must_use]
    pub fn gate_output(&self, g: usize) -> NetId {
        assert!(g < self.gates.len(), "gate {g} out of range");
        (self.num_pis + self.num_ppis + g) as NetId
    }

    /// Indices of the gates that read `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn fanout(&self, net: NetId) -> &[u32] {
        &self.fanout[net as usize]
    }

    /// Logic level of `net`: 0 for inputs, `1 + max(level of gate inputs)`
    /// for gate outputs.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn level(&self, net: NetId) -> u32 {
        self.level[net as usize]
    }

    /// Largest level in the netlist (circuit depth in gates).
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.level.iter().copied().max().unwrap_or(0)
    }

    /// Human-readable name of a net: `x<k>` for PIs, `y<k>` for PPIs,
    /// `g<k>` for gate outputs.
    #[must_use]
    pub fn net_name(&self, net: NetId) -> String {
        let n = net as usize;
        if n < self.num_pis {
            format!("x{}", n + 1)
        } else if n < self.num_pis + self.num_ppis {
            format!("y{}", n - self.num_pis + 1)
        } else {
            format!("g{}", n - self.num_pis - self.num_ppis + 1)
        }
    }

    /// Whether `net` is observable: feeds a PO or PPO directly, or fans out
    /// to at least one gate.
    #[must_use]
    pub fn is_connected(&self, net: NetId) -> bool {
        !self.fanout[net as usize].is_empty() || self.pos.contains(&net) || self.ppos.contains(&net)
    }

    /// Summary statistics (gate counts by kind, depth, net count).
    #[must_use]
    pub fn stats(&self) -> NetlistStats {
        let mut stats = NetlistStats {
            num_pis: self.num_pis,
            num_ppis: self.num_ppis,
            num_pos: self.pos.len(),
            num_gates: self.gates.len(),
            num_nets: self.num_nets(),
            depth: self.depth(),
            ..NetlistStats::default()
        };
        for g in &self.gates {
            match g.kind {
                GateKind::And => stats.num_and += 1,
                GateKind::Or => stats.num_or += 1,
                GateKind::Nand => stats.num_nand += 1,
                GateKind::Nor => stats.num_nor += 1,
                GateKind::Xor => stats.num_xor += 1,
                GateKind::Not => stats.num_not += 1,
                GateKind::Buf => stats.num_buf += 1,
            }
        }
        stats
    }
}

/// Summary statistics of a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)] // field names are self-describing counts
pub struct NetlistStats {
    pub num_pis: usize,
    pub num_ppis: usize,
    pub num_pos: usize,
    pub num_gates: usize,
    pub num_nets: usize,
    pub num_and: usize,
    pub num_or: usize,
    pub num_nand: usize,
    pub num_nor: usize,
    pub num_xor: usize,
    pub num_not: usize,
    pub num_buf: usize,
    pub depth: u32,
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} PIs, {} PPIs, {} POs, {} gates ({} AND, {} OR, {} NAND, {} NOR, {} XOR, {} NOT, {} BUF), depth {}",
            self.num_pis,
            self.num_ppis,
            self.num_pos,
            self.num_gates,
            self.num_and,
            self.num_or,
            self.num_nand,
            self.num_nor,
            self.num_xor,
            self.num_not,
            self.num_buf,
            self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn small() -> Netlist {
        let mut b = NetlistBuilder::new(2, 1);
        let x1 = b.pi(0);
        let x2 = b.pi(1);
        let y1 = b.ppi(0);
        let a = b.add_gate(GateKind::And, &[x1, x2]).unwrap();
        let n = b.add_gate(GateKind::Not, &[y1]).unwrap();
        let o = b.add_gate(GateKind::Or, &[a, n]).unwrap();
        b.finish(vec![o], vec![a]).unwrap()
    }

    #[test]
    fn gate_eval_words_truth_tables() {
        let a = 0b1100u64;
        let b = 0b1010u64;
        assert_eq!(GateKind::And.eval_words(&[a, b]) & 0xF, 0b1000);
        assert_eq!(GateKind::Or.eval_words(&[a, b]) & 0xF, 0b1110);
        assert_eq!(GateKind::Nand.eval_words(&[a, b]) & 0xF, 0b0111);
        assert_eq!(GateKind::Nor.eval_words(&[a, b]) & 0xF, 0b0001);
        assert_eq!(GateKind::Xor.eval_words(&[a, b]) & 0xF, 0b0110);
        assert_eq!(GateKind::Not.eval_words(&[a]) & 0xF, 0b0011);
        assert_eq!(GateKind::Buf.eval_words(&[a]) & 0xF, 0b1100);
    }

    #[test]
    fn three_input_gates() {
        let v = [0b11110000u64, 0b11001100, 0b10101010];
        assert_eq!(GateKind::And.eval_words(&v) & 0xFF, 0b10000000);
        assert_eq!(GateKind::Or.eval_words(&v) & 0xFF, 0b11111110);
        assert_eq!(GateKind::Xor.eval_words(&v) & 0xFF, 0b10010110);
    }

    #[test]
    fn net_numbering_and_names() {
        let n = small();
        assert_eq!(n.num_nets(), 6);
        assert_eq!(n.pi(1), 1);
        assert_eq!(n.ppi(0), 2);
        assert_eq!(n.gate_output(0), 3);
        assert_eq!(n.net_name(0), "x1");
        assert_eq!(n.net_name(2), "y1");
        assert_eq!(n.net_name(3), "g1");
        assert!(n.driver(0).is_none());
        assert_eq!(n.driver(3).unwrap().kind, GateKind::And);
        assert_eq!(n.driver_index(5), Some(2));
    }

    #[test]
    fn fanout_and_levels() {
        let n = small();
        assert_eq!(n.fanout(0), &[0]); // x1 -> AND
        assert_eq!(n.fanout(3), &[2]); // AND -> OR
        assert_eq!(n.level(0), 0);
        assert_eq!(n.level(3), 1);
        assert_eq!(n.level(5), 2);
        assert_eq!(n.depth(), 2);
    }

    #[test]
    fn stats_counts() {
        let s = small().stats();
        assert_eq!(s.num_gates, 3);
        assert_eq!(s.num_and, 1);
        assert_eq!(s.num_or, 1);
        assert_eq!(s.num_not, 1);
        assert_eq!(s.depth, 2);
        let text = s.to_string();
        assert!(text.contains("3 gates"));
    }

    #[test]
    fn connectivity() {
        let n = small();
        assert!(n.is_connected(0));
        assert!(n.is_connected(5)); // PO
        assert!(n.is_connected(3)); // PPO + fanout
    }
}
