use crate::net::{Gate, GateKind, Netlist};
use crate::{NetId, NetlistError};

/// Incremental constructor for a [`Netlist`].
///
/// Gates may only reference already-created nets, which makes the result
/// acyclic by construction and creation order a valid topological order.
///
/// # Examples
///
/// ```
/// use scanft_netlist::{GateKind, NetlistBuilder};
///
/// # fn main() -> Result<(), scanft_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new(2, 0);
/// let sum = b.add_gate(GateKind::Xor, &[b.pi(0), b.pi(1)])?;
/// let carry = b.add_gate(GateKind::And, &[b.pi(0), b.pi(1)])?;
/// let half_adder = b.finish(vec![sum, carry], vec![])?;
/// assert_eq!(half_adder.num_gates(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    num_pis: usize,
    num_ppis: usize,
    gates: Vec<Gate>,
}

impl NetlistBuilder {
    /// Creates a builder for a netlist with the given scan boundary.
    #[must_use]
    pub fn new(num_pis: usize, num_ppis: usize) -> Self {
        NetlistBuilder {
            num_pis,
            num_ppis,
            gates: Vec::new(),
        }
    }

    /// Net id of primary input `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn pi(&self, k: usize) -> NetId {
        assert!(k < self.num_pis, "PI {k} out of range");
        k as NetId
    }

    /// Net id of pseudo-primary input `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn ppi(&self, k: usize) -> NetId {
        assert!(k < self.num_ppis, "PPI {k} out of range");
        (self.num_pis + k) as NetId
    }

    /// Number of nets defined so far.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.num_pis + self.num_ppis + self.gates.len()
    }

    /// Adds a gate and returns its output net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNet`] when an input net does not exist
    /// yet, or [`NetlistError::BadFanin`] when the input count does not suit
    /// the gate kind (unary kinds take exactly one input, the others at
    /// least one; single-input AND/OR act as buffers).
    pub fn add_gate(&mut self, kind: GateKind, inputs: &[NetId]) -> Result<NetId, NetlistError> {
        if kind.is_unary() {
            if inputs.len() != 1 {
                return Err(NetlistError::BadFanin {
                    kind: kind.name(),
                    fanin: inputs.len(),
                    expected: "exactly 1",
                });
            }
        } else if inputs.is_empty() {
            return Err(NetlistError::BadFanin {
                kind: kind.name(),
                fanin: 0,
                expected: "at least 1",
            });
        }
        let defined = self.num_nets();
        for (pin, &net) in inputs.iter().enumerate() {
            if net as usize >= defined {
                return Err(NetlistError::UnknownNet {
                    net,
                    num_nets: defined,
                    reference: format!("input {pin} of {} gate g{}", kind.name(), self.gates.len()),
                });
            }
        }
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
        });
        Ok((defined) as NetId)
    }

    /// Builds a balanced tree of `kind` gates over `inputs`, each gate with
    /// at most `max_fanin` inputs. Returns the root net.
    ///
    /// With a single input, no gate is created for AND/OR (the input net is
    /// returned directly); for NAND/NOR a NOT gate is emitted so inversion
    /// is preserved.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadFanin`] when `inputs` is empty or
    /// `max_fanin < 2`, and propagates [`NetlistError::UnknownNet`].
    pub fn add_tree(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
        max_fanin: usize,
    ) -> Result<NetId, NetlistError> {
        if inputs.is_empty() || max_fanin < 2 {
            return Err(NetlistError::BadFanin {
                kind: kind.name(),
                fanin: inputs.len(),
                expected: "at least 1, with max_fanin >= 2",
            });
        }
        if inputs.len() == 1 {
            return match kind {
                GateKind::And | GateKind::Or | GateKind::Xor | GateKind::Buf => Ok(inputs[0]),
                GateKind::Nand | GateKind::Nor | GateKind::Not => {
                    self.add_gate(GateKind::Not, inputs)
                }
            };
        }
        // Inner levels use the non-inverting counterpart; only the root
        // applies the inversion for NAND/NOR.
        let (inner, root): (GateKind, GateKind) = match kind {
            GateKind::Nand => (GateKind::And, GateKind::Nand),
            GateKind::Nor => (GateKind::Or, GateKind::Nor),
            k => (k, k),
        };
        let mut layer: Vec<NetId> = inputs.to_vec();
        while layer.len() > max_fanin {
            let mut next_layer = Vec::with_capacity(layer.len().div_ceil(max_fanin));
            for chunk in layer.chunks(max_fanin) {
                if chunk.len() == 1 {
                    next_layer.push(chunk[0]);
                } else {
                    next_layer.push(self.add_gate(inner, chunk)?);
                }
            }
            layer = next_layer;
        }
        self.add_gate(root, &layer)
    }

    /// Finishes construction, declaring the primary-output and pseudo-
    /// primary-output (next-state) nets.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadOutputs`] when an output net does not
    /// exist.
    pub fn finish(self, pos: Vec<NetId>, ppos: Vec<NetId>) -> Result<Netlist, NetlistError> {
        let num_nets = self.num_nets();
        for (k, &net) in pos.iter().enumerate() {
            if net as usize >= num_nets {
                return Err(NetlistError::BadOutputs {
                    message: format!(
                        "primary output {k} references net {net}, but only {num_nets} nets exist"
                    ),
                });
            }
        }
        for (k, &net) in ppos.iter().enumerate() {
            if net as usize >= num_nets {
                return Err(NetlistError::BadOutputs {
                    message: format!(
                        "next-state output {k} references net {net}, but only {num_nets} nets exist"
                    ),
                });
            }
        }
        let inputs = self.num_pis + self.num_ppis;
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); num_nets];
        let mut level: Vec<u32> = vec![0; num_nets];
        for (g, gate) in self.gates.iter().enumerate() {
            let mut lvl = 0;
            for &input in &gate.inputs {
                fanout[input as usize].push(g as u32);
                lvl = lvl.max(level[input as usize] + 1);
            }
            level[inputs + g] = lvl;
        }
        let obs = scanft_obs::global();
        obs.counter("netlist.built").inc();
        obs.counter("netlist.gates_built")
            .add(self.gates.len() as u64);
        Ok(Netlist {
            num_pis: self.num_pis,
            num_ppis: self.num_ppis,
            gates: self.gates,
            pos,
            ppos,
            fanout,
            level,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_forward_references() {
        let mut b = NetlistBuilder::new(1, 0);
        let err = b.add_gate(GateKind::And, &[0, 7]).unwrap_err();
        assert_eq!(
            err,
            NetlistError::UnknownNet {
                net: 7,
                num_nets: 1,
                reference: "input 1 of AND gate g0".into(),
            }
        );
    }

    #[test]
    fn rejects_bad_fanin() {
        let mut b = NetlistBuilder::new(2, 0);
        assert!(b.add_gate(GateKind::Not, &[0, 1]).is_err());
        assert!(b.add_gate(GateKind::And, &[]).is_err());
        assert!(b.add_gate(GateKind::Buf, &[]).is_err());
    }

    #[test]
    fn rejects_bad_outputs() {
        let b = NetlistBuilder::new(1, 0);
        assert!(b.finish(vec![5], vec![]).is_err());
    }

    #[test]
    fn tree_respects_max_fanin_and_function() {
        let mut b = NetlistBuilder::new(7, 0);
        let inputs: Vec<NetId> = (0..7).collect();
        let root = b.add_tree(GateKind::And, &inputs, 2).unwrap();
        let n = b.finish(vec![root], vec![]).unwrap();
        for g in n.gates() {
            assert!(g.inputs.len() <= 2);
            assert_eq!(g.kind, GateKind::And);
        }
        // Functional check over all 128 input combinations via eval by hand.
        for pattern in 0u32..128 {
            let mut vals = vec![0u64; n.num_nets()];
            for (k, val) in vals.iter_mut().enumerate().take(7) {
                *val = if pattern >> k & 1 == 1 { u64::MAX } else { 0 };
            }
            for (g, gate) in n.gates().iter().enumerate() {
                let ins: Vec<u64> = gate.inputs.iter().map(|&i| vals[i as usize]).collect();
                vals[n.gate_output(g) as usize] = gate.kind.eval_words(&ins);
            }
            let expect = if pattern == 127 { u64::MAX } else { 0 };
            assert_eq!(vals[root as usize], expect, "pattern {pattern}");
        }
    }

    #[test]
    fn tree_single_input_identity_and_inversion() {
        let mut b = NetlistBuilder::new(1, 0);
        assert_eq!(b.add_tree(GateKind::And, &[0], 4).unwrap(), 0);
        assert_eq!(b.gates.len(), 0);
        let n = b.add_tree(GateKind::Nand, &[0], 4).unwrap();
        assert_eq!(b.gates.len(), 1);
        assert_eq!(b.gates[0].kind, GateKind::Not);
        assert_eq!(n, 1);
    }

    #[test]
    fn nand_tree_inverts_only_root() {
        let mut b = NetlistBuilder::new(5, 0);
        let inputs: Vec<NetId> = (0..5).collect();
        let root = b.add_tree(GateKind::Nand, &inputs, 2).unwrap();
        let n = b.finish(vec![root], vec![]).unwrap();
        let nands = n
            .gates()
            .iter()
            .filter(|g| g.kind == GateKind::Nand)
            .count();
        assert_eq!(nands, 1);
        // Root must be the NAND.
        assert_eq!(n.driver(root).unwrap().kind, GateKind::Nand);
    }

    #[test]
    fn tree_rejects_degenerate_args() {
        let mut b = NetlistBuilder::new(2, 0);
        assert!(b.add_tree(GateKind::And, &[], 2).is_err());
        assert!(b.add_tree(GateKind::And, &[0, 1], 1).is_err());
    }
}
