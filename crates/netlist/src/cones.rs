//! Output cones of influence for event-driven fault simulation.
//!
//! A fault can only perturb the nets in the transitive fanout of its site —
//! its *cone of influence*. The PPSFP kernel (Waicukauski et al.) exploits
//! this: per fault batch, only the gates in the union of the batch's cones
//! are ever re-evaluated; everything outside the union provably carries the
//! fault-free value.
//!
//! For a full-scan circuit the structural fanout is not quite enough: a
//! perturbed pseudo-primary output is captured into a scan flip-flop and
//! re-enters the combinational logic through the matching pseudo-primary
//! input on the next cycle. [`FaultCone::compute`] therefore closes the
//! cone over the scan boundary — whenever next-state line `k` falls inside
//! the cone, present-state line `k`'s fanout is merged in — so the result
//! is sound for multi-cycle scan tests, not just single-cycle patterns.

use crate::arena::GateArena;
use crate::net::Netlist;
use crate::NetId;

/// The union of the output cones of a set of seed nets (and seed gates),
/// closed over the scan boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultCone {
    /// Gate indices that can carry a fault effect, sorted ascending —
    /// which, by the netlist's construction ordering, is also topological.
    pub gates: Vec<u32>,
    /// Per-net membership: `nets[n]` is true when net `n` can differ from
    /// its fault-free value.
    pub nets: Vec<bool>,
}

impl FaultCone {
    /// Computes the cone union for `seed_nets` (fault sites on nets) and
    /// `seed_gates` (gates whose evaluation is directly perturbed, e.g. by
    /// a branch fault on one of their input pins).
    ///
    /// Seed nets themselves are marked perturbable, and the driver gate of
    /// a seed net is included so a kernel that applies the site's forcing
    /// while evaluating the driver revisits it every cycle.
    ///
    /// # Panics
    ///
    /// Panics if a seed references a net or gate out of range.
    #[must_use]
    pub fn compute(
        netlist: &Netlist,
        arena: &GateArena,
        seed_nets: &[NetId],
        seed_gates: &[u32],
    ) -> Self {
        let num_nets = arena.num_nets();
        let mut in_cone_gate = vec![false; arena.num_gates()];
        let mut nets = vec![false; num_nets];
        let mut stack: Vec<NetId> = Vec::new();

        let seed_net = |net: NetId, nets: &mut Vec<bool>, stack: &mut Vec<NetId>| {
            assert!((net as usize) < num_nets, "seed net {net} out of range");
            if !nets[net as usize] {
                nets[net as usize] = true;
                stack.push(net);
            }
        };
        for &net in seed_nets {
            seed_net(net, &mut nets, &mut stack);
            if let Some(g) = netlist.driver_index(net) {
                in_cone_gate[g] = true;
            }
        }
        for &g in seed_gates {
            assert!(
                (g as usize) < arena.num_gates(),
                "seed gate {g} out of range"
            );
            in_cone_gate[g as usize] = true;
            seed_net(arena.gate_output(g as usize), &mut nets, &mut stack);
        }

        // Transitive fanout, re-seeding through the scan boundary until the
        // PPO -> PPI closure reaches a fixpoint (at most num_ppis rounds).
        loop {
            while let Some(net) = stack.pop() {
                for &g in arena.fanouts(net) {
                    let out = arena.gate_output(g as usize);
                    in_cone_gate[g as usize] = true;
                    if !nets[out as usize] {
                        nets[out as usize] = true;
                        stack.push(out);
                    }
                }
            }
            let mut grew = false;
            for k in 0..netlist.num_ppis() {
                let ppo = netlist.ppos()[k];
                let ppi = netlist.ppi(k);
                if nets[ppo as usize] && !nets[ppi as usize] {
                    nets[ppi as usize] = true;
                    stack.push(ppi);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }

        let gates: Vec<u32> = (0..arena.num_gates() as u32)
            .filter(|&g| in_cone_gate[g as usize])
            .collect();
        FaultCone { gates, nets }
    }

    /// Whether net `net` lies inside the cone union.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn contains_net(&self, net: NetId) -> bool {
        self.nets[net as usize]
    }

    /// Number of gates in the cone union.
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::GateKind;
    use crate::NetlistBuilder;

    /// Two independent cones: a = AND(x1, x2) -> PO; o = OR(x3, x4) -> PO.
    fn two_cones() -> Netlist {
        let mut b = NetlistBuilder::new(4, 0);
        let a = b.add_gate(GateKind::And, &[b.pi(0), b.pi(1)]).unwrap();
        let o = b.add_gate(GateKind::Or, &[b.pi(2), b.pi(3)]).unwrap();
        b.finish(vec![a, o], vec![]).unwrap()
    }

    #[test]
    fn cone_stays_inside_its_half() {
        let n = two_cones();
        let arena = GateArena::build(&n);
        let cone = FaultCone::compute(&n, &arena, &[n.pi(0)], &[]);
        assert_eq!(cone.gates, vec![0]);
        assert!(cone.contains_net(n.pi(0)));
        assert!(cone.contains_net(n.gate_output(0)));
        assert!(!cone.contains_net(n.gate_output(1)));
        assert!(!cone.contains_net(n.pi(2)));
    }

    #[test]
    fn seed_net_includes_its_driver_gate() {
        let n = two_cones();
        let arena = GateArena::build(&n);
        // Seeding the AND's *output* net still includes gate 0, so a kernel
        // applying a stem force at the driver revisits it.
        let cone = FaultCone::compute(&n, &arena, &[n.gate_output(0)], &[]);
        assert_eq!(cone.gates, vec![0]);
    }

    #[test]
    fn union_of_seeds_is_the_union_of_cones() {
        let n = two_cones();
        let arena = GateArena::build(&n);
        let cone = FaultCone::compute(&n, &arena, &[n.pi(0), n.pi(3)], &[]);
        assert_eq!(cone.gates, vec![0, 1]);
    }

    #[test]
    fn seed_gate_marks_its_output_perturbable() {
        let n = two_cones();
        let arena = GateArena::build(&n);
        let cone = FaultCone::compute(&n, &arena, &[], &[1]);
        assert_eq!(cone.gates, vec![1]);
        assert!(cone.contains_net(n.gate_output(1)));
        assert!(!cone.contains_net(n.gate_output(0)));
    }

    #[test]
    fn scan_boundary_closure_crosses_cycles() {
        // ns1 = BUF(x); z = BUF(ps1). Structurally x never reaches z, but a
        // fault on x corrupts the captured state and shows at z one cycle
        // later — the closure must pull z's cone in through ps1.
        let mut b = NetlistBuilder::new(1, 1);
        let x = b.pi(0);
        let ps = b.ppi(0);
        let ns = b.add_gate(GateKind::Buf, &[x]).unwrap();
        let z = b.add_gate(GateKind::Buf, &[ps]).unwrap();
        let n = b.finish(vec![z], vec![ns]).unwrap();
        let arena = GateArena::build(&n);
        let cone = FaultCone::compute(&n, &arena, &[x], &[]);
        assert!(cone.contains_net(ps), "closure crosses the scan boundary");
        assert!(cone.contains_net(z));
        assert_eq!(cone.gates, vec![0, 1]);
    }

    #[test]
    fn empty_seed_set_yields_an_empty_cone() {
        let n = two_cones();
        let arena = GateArena::build(&n);
        let cone = FaultCone::compute(&n, &arena, &[], &[]);
        assert!(cone.gates.is_empty());
        assert!(!cone.contains_net(0));
        assert_eq!(cone.num_gates(), 0);
    }
}
