//! Flattened, cache-friendly evaluation arena for a [`Netlist`].
//!
//! [`Netlist`] stores each gate as a `Gate { kind, inputs: Vec<NetId> }`,
//! which is convenient to build but hostile to the simulation hot loop:
//! every gate evaluation chases a separate heap allocation for its fanins,
//! and per-net fanout lists are a `Vec<Vec<u32>>`. A [`GateArena`] flattens
//! both into compressed-sparse-row form — one contiguous fanin array, one
//! contiguous fanout array, `u32` offsets — and groups gate indices into
//! *topological batches* (all gates of one logic level), so a kernel walks
//! a handful of dense arrays in order instead of pointer-hopping.
//!
//! The arena is built once per netlist and shared read-only (typically via
//! `Arc`) by every evaluator and fault engine of a campaign; it holds no
//! mutable state.

use crate::net::{GateKind, Netlist};
use crate::NetId;

/// Compressed-sparse-row view of a netlist's gates, fanins and fanouts.
///
/// Gate `g`'s output net is `num_pis + num_ppis + g`, exactly as in the
/// source [`Netlist`]; the arena adds no renumbering, so values indexed by
/// net id are interchangeable between arena-driven and netlist-driven
/// evaluation.
#[derive(Debug, Clone)]
pub struct GateArena {
    num_pis: usize,
    num_ppis: usize,
    kinds: Vec<GateKind>,
    /// CSR offsets into `fanins`: gate `g` reads `fanins[fanin_start[g] ..
    /// fanin_start[g + 1]]`.
    fanin_start: Vec<u32>,
    fanins: Vec<NetId>,
    /// CSR offsets into `fanouts`: net `n` feeds gates `fanouts[
    /// fanout_start[n] .. fanout_start[n + 1]]`.
    fanout_start: Vec<u32>,
    fanouts: Vec<u32>,
    /// Gate indices stably sorted by logic level — a valid topological
    /// order in which all gates of one level are adjacent.
    schedule: Vec<u32>,
    /// CSR offsets into `schedule`: level `l` spans `schedule[
    /// level_start[l] .. level_start[l + 1]]`.
    level_start: Vec<u32>,
}

impl GateArena {
    /// Flattens `netlist` into an arena.
    #[must_use]
    pub fn build(netlist: &Netlist) -> Self {
        let num_gates = netlist.num_gates();
        let num_nets = netlist.num_nets();

        let mut kinds = Vec::with_capacity(num_gates);
        let mut fanin_start = Vec::with_capacity(num_gates + 1);
        let mut fanins = Vec::new();
        fanin_start.push(0u32);
        for gate in netlist.gates() {
            kinds.push(gate.kind);
            fanins.extend_from_slice(&gate.inputs);
            fanins_len_guard(fanins.len());
            fanin_start.push(fanins.len() as u32);
        }

        let mut fanout_start = Vec::with_capacity(num_nets + 1);
        let mut fanouts = Vec::new();
        fanout_start.push(0u32);
        for net in 0..num_nets {
            fanouts.extend_from_slice(netlist.fanout(net as NetId));
            fanins_len_guard(fanouts.len());
            fanout_start.push(fanouts.len() as u32);
        }

        let depth = netlist.depth() as usize;
        let mut schedule: Vec<u32> = (0..num_gates as u32).collect();
        schedule.sort_by_key(|&g| netlist.level(netlist.gate_output(g as usize)));
        let mut level_start = vec![0u32; depth + 2];
        for &g in &schedule {
            let level = netlist.level(netlist.gate_output(g as usize)) as usize;
            level_start[level + 1] += 1;
        }
        for l in 1..level_start.len() {
            level_start[l] += level_start[l - 1];
        }

        GateArena {
            num_pis: netlist.num_pis(),
            num_ppis: netlist.num_ppis(),
            kinds,
            fanin_start,
            fanins,
            fanout_start,
            fanouts,
            schedule,
            level_start,
        }
    }

    /// Number of gates in the arena.
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.kinds.len()
    }

    /// Total number of nets (PIs + PPIs + gate outputs).
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.num_pis + self.num_ppis + self.kinds.len()
    }

    /// Logic function of gate `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    #[must_use]
    pub fn kind(&self, g: usize) -> GateKind {
        self.kinds[g]
    }

    /// Fanin nets of gate `g`, in pin order (contiguous slice).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    #[must_use]
    pub fn fanins(&self, g: usize) -> &[NetId] {
        &self.fanins[self.fanin_start[g] as usize..self.fanin_start[g + 1] as usize]
    }

    /// Indices of the gates reading `net` (contiguous slice).
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn fanouts(&self, net: NetId) -> &[u32] {
        &self.fanouts
            [self.fanout_start[net as usize] as usize..self.fanout_start[net as usize + 1] as usize]
    }

    /// Output net of gate `g`.
    #[must_use]
    pub fn gate_output(&self, g: usize) -> NetId {
        (self.num_pis + self.num_ppis + g) as NetId
    }

    /// All gate indices in level order (a valid topological order with the
    /// gates of each level adjacent).
    #[must_use]
    pub fn schedule(&self) -> &[u32] {
        &self.schedule
    }

    /// The gate indices of topological batch (logic level) `level`, `1 +
    /// depth` batches in all; PIs/PPIs occupy level 0, so batch 0 is empty
    /// unless the netlist has zero-level gates.
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_levels()`.
    #[must_use]
    pub fn level_batch(&self, level: usize) -> &[u32] {
        &self.schedule[self.level_start[level] as usize..self.level_start[level + 1] as usize]
    }

    /// Number of topological batches (`depth + 1`).
    #[must_use]
    pub fn num_levels(&self) -> usize {
        self.level_start.len() - 1
    }
}

/// The CSR offsets are `u32`; a netlist that overflows them is far outside
/// this crate's benchmark-scale envelope, so fail loudly instead of
/// truncating.
fn fanins_len_guard(len: usize) {
    assert!(
        u32::try_from(len).is_ok(),
        "netlist too large for u32 CSR offsets"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn diamond() -> Netlist {
        // x1, x2, y1; a = AND(x1, x2); n = NOT(y1); o = OR(a, n).
        let mut b = NetlistBuilder::new(2, 1);
        let a = b.add_gate(GateKind::And, &[b.pi(0), b.pi(1)]).unwrap();
        let n = b.add_gate(GateKind::Not, &[b.ppi(0)]).unwrap();
        let o = b.add_gate(GateKind::Or, &[a, n]).unwrap();
        b.finish(vec![o], vec![a]).unwrap()
    }

    #[test]
    fn arena_mirrors_the_netlist() {
        let netlist = diamond();
        let arena = GateArena::build(&netlist);
        assert_eq!(arena.num_gates(), netlist.num_gates());
        assert_eq!(arena.num_nets(), netlist.num_nets());
        for g in 0..netlist.num_gates() {
            assert_eq!(arena.kind(g), netlist.gates()[g].kind, "gate {g}");
            assert_eq!(arena.fanins(g), netlist.gates()[g].inputs.as_slice());
            assert_eq!(arena.gate_output(g), netlist.gate_output(g));
        }
        for net in 0..netlist.num_nets() as NetId {
            assert_eq!(arena.fanouts(net), netlist.fanout(net), "net {net}");
        }
    }

    #[test]
    fn schedule_is_topological_and_level_batched() {
        let netlist = diamond();
        let arena = GateArena::build(&netlist);
        let mut seen = vec![false; arena.num_nets()];
        for slot in seen.iter_mut().take(netlist.num_pis() + netlist.num_ppis()) {
            *slot = true;
        }
        for &g in arena.schedule() {
            for &fanin in arena.fanins(g as usize) {
                assert!(seen[fanin as usize], "gate {g} before its driver");
            }
            seen[arena.gate_output(g as usize) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "schedule covers every gate");

        // Batches partition the schedule and agree with net levels.
        assert_eq!(arena.num_levels() as u32, netlist.depth() + 1);
        let mut total = 0;
        for level in 0..arena.num_levels() {
            for &g in arena.level_batch(level) {
                assert_eq!(
                    netlist.level(netlist.gate_output(g as usize)) as usize,
                    level
                );
                total += 1;
            }
        }
        assert_eq!(total, arena.num_gates());
    }

    #[test]
    fn gateless_netlist_has_an_empty_arena() {
        let b = NetlistBuilder::new(1, 1);
        let pi = b.pi(0);
        let ppi = b.ppi(0);
        let netlist = b.finish(vec![pi], vec![ppi]).unwrap();
        let arena = GateArena::build(&netlist);
        assert_eq!(arena.num_gates(), 0);
        assert_eq!(arena.num_nets(), 2);
        assert!(arena.schedule().is_empty());
        assert!(arena.fanouts(0).is_empty());
    }
}
