//! Deterministic model checking of the harness's concurrency contracts.
//!
//! The dev-dependency on `scanft-race` enables its `model` feature, so
//! every facade sync op inside the checked closures routes through the
//! virtual scheduler, which explores the
//! schedule space exhaustively (bounded) and replays counterexamples.
//!
//! Covered here:
//! - `run_units`: the completed/quarantined/remaining partition is exact
//!   under every interleaving of a cancel with claims and a panic;
//! - `JournalWriter` vs `BufferTailer`: a concurrent poll never yields a
//!   torn record, across all schedules;
//! - the seeded torn-read bug (acceptance): a naive tailer that consumes
//!   past the last newline *is* caught, with a deterministic replay.
#![allow(clippy::unwrap_used)]

use scanft_harness::{run_units, Budget, BufferTailer, CancelToken, JournalRecord, JournalWriter};
use scanft_race::model::{self, ModelConfig};
use scanft_race::sync::{Arc, Mutex};
use scanft_race::thread;

fn cfg() -> ModelConfig {
    ModelConfig::default()
}

/// Small schedule spaces explode fast: run_units spawns real workers under
/// the model, so keep unit counts tiny and cap the DFS.
fn small_cfg() -> ModelConfig {
    ModelConfig {
        max_schedules: 400,
        random_runs: 8,
        ..ModelConfig::default()
    }
}

#[test]
fn cancel_racing_claims_always_partitions_exactly() {
    // A canceller flips the token while two workers claim three units.
    // Whatever the interleaving: every unit lands in exactly one of
    // completed/remaining, and a stop reason is only reported if at least
    // one unit was actually refused.
    let report = model::check_named("harness-cancel-race", &small_cfg(), || {
        let token = CancelToken::new();
        let budget = Budget::unlimited().with_cancel(token.clone());
        let canceller = thread::spawn(move || token.cancel());
        let outcome = run_units(&[0, 1, 2], 2, &budget, None, || (), |(), unit| unit);
        canceller.join().unwrap();
        let mut seen: Vec<usize> = outcome
            .completed
            .iter()
            .map(|&(u, _)| u)
            .chain(outcome.remaining.iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2], "partition must be exact");
        assert!(outcome.quarantined.is_empty());
        if outcome.stopped.is_some() {
            assert!(!outcome.remaining.is_empty() || outcome.completed.len() < 3);
        }
    });
    report.assert_ok();
    assert!(
        report.schedules >= 2,
        "expected >= 2 schedules, got {}",
        report.schedules
    );
}

#[test]
fn quarantine_vs_budget_claims_stay_consistent() {
    // One unit panics; a unit cap of 2 races the claims. In every schedule
    // the cap bounds completed+quarantined, and a quarantined unit is
    // never also counted completed.
    scanft_harness::silence_chaos_panics();
    let report = model::check_named("harness-quarantine-cap", &small_cfg(), || {
        let outcome = run_units(
            &[0, 1, 2],
            2,
            &Budget::unlimited().with_max_units(2),
            None,
            || (),
            |(), unit| {
                assert!(unit != 1, "seeded unit failure");
                unit
            },
        );
        assert!(outcome.completed.len() + outcome.quarantined.len() <= 2);
        let mut all: Vec<usize> = outcome
            .completed
            .iter()
            .map(|&(u, _)| u)
            .chain(outcome.quarantined.iter().map(|f| f.unit))
            .chain(outcome.remaining.iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
    });
    report.assert_ok();
    assert!(report.schedules >= 2);
}

#[test]
fn tailer_never_sees_torn_records_in_any_schedule() {
    // A writer appends two records while a tailer polls concurrently over
    // the shared in-memory buffer. The newline-bounded contract: every
    // polled line parses as a whole record, in order, no duplicates.
    let report = model::check_named("journal-tailer-clean", &cfg(), || {
        let (writer, buffer) = JournalWriter::in_memory();
        let writer = Arc::new(writer);
        let w = Arc::clone(&writer);
        let appender = thread::spawn(move || {
            for unit in 0..2 {
                w.append(&JournalRecord {
                    unit,
                    lanes: vec![Some(7), None],
                })
                .unwrap();
            }
        });
        let mut tailer = BufferTailer::new(buffer);
        let mut seen = Vec::new();
        let (records, skipped) = tailer.poll_records();
        assert_eq!(skipped, 0, "no poll may yield a torn record");
        seen.extend(records);
        appender.join().unwrap();
        let (records, skipped) = tailer.poll_records();
        assert_eq!(skipped, 0);
        seen.extend(records);
        let units: Vec<usize> = seen.iter().map(|r| r.unit).collect();
        assert_eq!(units, vec![0, 1], "all records, in order, exactly once");
    });
    report.assert_ok();
    assert!(report.schedules >= 2);
}

/// The seeded torn-read bug (acceptance criterion): a deliberately naive
/// tailer that consumes *everything* in the buffer — not just up through
/// the last newline — splices torn prefixes into records. The writer
/// below appends each record in two separate locked writes (body, then
/// newline), modeling a torn write in flight; the model checker must find
/// the schedule where the naive tailer reads between the two halves.
#[test]
fn seeded_torn_tailer_bug_is_found_and_replays_deterministically() {
    let body = || {
        let buffer: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let record = "{\"unit\":0,\"lanes\":[3]}\n";
        let writer_buf = Arc::clone(&buffer);
        let writer = thread::spawn(move || {
            // Torn write: the record body lands first, the newline later.
            writer_buf.lock().extend(&record.as_bytes()[..10]);
            writer_buf.lock().extend(&record.as_bytes()[10..]);
        });
        // BUG: consume the whole buffer, newline or not.
        let consumed: Vec<u8> = {
            let buf = buffer.lock();
            buf.clone()
        };
        writer.join().unwrap();
        // A correct tailer never observes a torn prefix; the naive one
        // does in the schedule where it reads between the two writes.
        let text = String::from_utf8_lossy(&consumed);
        assert!(
            text.is_empty() || text.ends_with('\n'),
            "torn read: consumed {:?} without a newline boundary",
            text
        );
    };
    let report = model::check_named("seeded-torn-tailer", &cfg(), body);
    let failure = report.failure.expect("DFS must find the torn read");
    assert!(!failure.deadlock);
    assert!(failure.message.contains("torn read"), "{failure}");

    for _ in 0..2 {
        let replayed = model::replay(&failure.trace, body)
            .failure
            .expect("replay must reproduce the torn read");
        assert_eq!(replayed.message, failure.message);
        assert_eq!(replayed.trace, failure.trace);
    }
}

#[test]
fn records_written_counter_matches_buffer_in_every_schedule() {
    let report = model::check_named("journal-counter-coherence", &cfg(), || {
        let (writer, buffer) = JournalWriter::in_memory();
        let writer = Arc::new(writer);
        let handles: Vec<_> = (0..2)
            .map(|unit| {
                let w = Arc::clone(&writer);
                thread::spawn(move || {
                    w.append(&JournalRecord {
                        unit,
                        lanes: vec![None],
                    })
                    .unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(writer.records_written(), 2);
        let newlines = buffer.lock().iter().filter(|&&b| b == b'\n').count();
        assert_eq!(newlines, 2, "every counted record reached the sink");
    });
    report.assert_ok();
    assert!(report.schedules >= 2);
}
