//! Append-only JSONL checkpoint journals for resumable campaigns.
//!
//! A journal is one header line followed by one line per completed work
//! unit. Each record stores the unit's result lanes (for a fault-simulation
//! batch: the detecting-test position per fault lane, `null` when
//! undetected), so a resumed run can merge finished units without
//! re-simulating them. The format is deliberately line-oriented: a crash —
//! or a chaos-injected torn write — can only damage the line being written,
//! and the reader skips any line that does not parse back into a record,
//! which at worst re-runs that unit.
//!
//! ```text
//! {"journal":"scanft-campaign","version":1,"label":"lion","faults":120,"units":2,"order":18,"lanes_per_unit":64}
//! {"unit":0,"lanes":[3,null,7, ...]}
//! {"unit":1,"lanes":[null,0, ...]}
//! ```
//!
//! Everything is hand-rolled `std`: no serde, in keeping with the
//! workspace's offline, dependency-free policy.
//!
//! race-lint: deterministic-replay — this module is on the journal-replay
//! path: resume must be a pure function of the journal bytes, so nothing
//! here may read a wall clock or other ambient nondeterminism.

use std::io::Write;

use scanft_race::sync::{Arc, AtomicU64, Mutex, Ordering};

use crate::chaos::{CrashPoint, FailurePlan};
use crate::error::ScanftError;

/// Magic value identifying a campaign journal header line.
const MAGIC: &str = "scanft-campaign";
/// Format version, bumped on incompatible record changes.
const VERSION: u64 = 1;

/// The header line of a journal: enough shape information to refuse
/// resuming against the wrong circuit, test set, or fault list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Human-readable campaign label (circuit name or file path).
    pub label: String,
    /// Number of faults in the campaign.
    pub faults: usize,
    /// Number of work units (64-fault batches).
    pub units: usize,
    /// Length of the simulated test order.
    pub order: usize,
    /// Fault lanes per work unit. Campaigns always journal 64-lane units
    /// regardless of the simulation kernel's word width, so a journal
    /// written by one kernel resumes bit-identically under another; the
    /// field is recorded (and checked on resume) to keep that invariant
    /// explicit.
    pub lanes_per_unit: usize,
}

impl JournalHeader {
    fn to_json(&self) -> String {
        format!(
            "{{\"journal\":\"{MAGIC}\",\"version\":{VERSION},\"label\":\"{}\",\"faults\":{},\"units\":{},\"order\":{},\"lanes_per_unit\":{}}}",
            scanft_obs::escape_json_string(&self.label),
            self.faults,
            self.units,
            self.order,
            self.lanes_per_unit,
        )
    }
}

/// One completed work unit: its index and the per-lane results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// The work-unit index (batch number for fault-simulation campaigns).
    pub unit: usize,
    /// Per-lane payload; for campaigns, the detecting-test position or
    /// `None` for an undetected fault.
    pub lanes: Vec<Option<u64>>,
}

impl JournalRecord {
    fn to_json(&self) -> String {
        let mut out = String::with_capacity(24 + 4 * self.lanes.len());
        out.push_str("{\"unit\":");
        out.push_str(&self.unit.to_string());
        out.push_str(",\"lanes\":[");
        for (k, lane) in self.lanes.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            match lane {
                Some(v) => out.push_str(&v.to_string()),
                None => out.push_str("null"),
            }
        }
        out.push_str("]}");
        out
    }
}

/// A parsed journal: the header (if one survived), every intact record, and
/// a count of damaged lines that were skipped.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    /// The header line, when present and intact.
    pub header: Option<JournalHeader>,
    /// Every record that parsed back intact, in file order.
    pub records: Vec<JournalRecord>,
    /// Number of non-empty lines that failed to parse (torn writes).
    pub skipped_lines: usize,
}

impl Journal {
    /// Validates the journal against the shape of the campaign about to be
    /// resumed. Refuses journals without an intact header and journals
    /// whose recorded shape differs from `expected` — resuming against the
    /// wrong circuit would corrupt the merged report.
    pub fn validate(&self, expected: &JournalHeader) -> Result<(), ScanftError> {
        let Some(header) = &self.header else {
            return Err(ScanftError::Journal {
                message: "journal has no intact header line; refusing to resume".into(),
            });
        };
        if header.faults != expected.faults
            || header.units != expected.units
            || header.order != expected.order
            || header.lanes_per_unit != expected.lanes_per_unit
        {
            return Err(ScanftError::Journal {
                message: format!(
                    "journal shape mismatch: journal has {} faults/{} units/order {}/{} lanes per unit, campaign has {}/{}/{}/{}",
                    header.faults, header.units, header.order, header.lanes_per_unit,
                    expected.faults, expected.units, expected.order, expected.lanes_per_unit,
                ),
            });
        }
        Ok(())
    }
}

/// Parses a journal from its textual contents. Never fails: damaged lines
/// are counted in [`Journal::skipped_lines`] and otherwise ignored.
#[must_use]
pub fn read_journal(text: &str) -> Journal {
    let mut journal = Journal::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = parse_header(line) {
            // Last intact header wins; duplicates only arise from manual
            // concatenation and agree anyway once validated.
            journal.header = Some(header);
        } else if let Some(record) = parse_record(line) {
            journal.records.push(record);
        } else {
            journal.skipped_lines += 1;
        }
    }
    journal
}

/// Reads and parses a journal file.
pub fn read_journal_file(path: &str) -> Result<Journal, ScanftError> {
    let text = std::fs::read_to_string(path).map_err(|source| ScanftError::Io {
        path: path.to_owned(),
        source,
    })?;
    Ok(read_journal(&text))
}

fn parse_header(line: &str) -> Option<JournalHeader> {
    if !line.starts_with('{') || !line.ends_with('}') {
        return None;
    }
    if field_str(line, "journal")? != MAGIC || field_u64(line, "version")? != VERSION {
        return None;
    }
    Some(JournalHeader {
        label: field_str(line, "label")?,
        faults: usize::try_from(field_u64(line, "faults")?).ok()?,
        units: usize::try_from(field_u64(line, "units")?).ok()?,
        order: usize::try_from(field_u64(line, "order")?).ok()?,
        // Journals written before the field existed are all 64-lane.
        lanes_per_unit: usize::try_from(field_u64(line, "lanes_per_unit").unwrap_or(64)).ok()?,
    })
}

fn parse_record(line: &str) -> Option<JournalRecord> {
    if !line.starts_with('{') || !line.ends_with("]}") {
        return None;
    }
    let unit = usize::try_from(field_u64(line, "unit")?).ok()?;
    let start = line.find("\"lanes\":[")? + "\"lanes\":[".len();
    let body = &line[start..line.len() - 2];
    let mut lanes = Vec::new();
    if !body.is_empty() {
        for item in body.split(',') {
            match item.trim() {
                "null" => lanes.push(None),
                digits => lanes.push(Some(digits.parse::<u64>().ok()?)),
            }
        }
    }
    Some(JournalRecord { unit, lanes })
}

/// Extracts an unsigned integer field `"key":123` from a single-line JSON
/// object.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pattern = format!("\"{key}\":");
    let start = line.find(&pattern)? + pattern.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Extracts a string field `"key":"value"` (unescaping `\"` and `\\`).
fn field_str(line: &str, key: &str) -> Option<String> {
    let pattern = format!("\"{key}\":\"");
    let start = line.find(&pattern)? + pattern.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
}

enum Sink {
    File(std::io::BufWriter<std::fs::File>),
    Memory(Arc<Mutex<Vec<u8>>>),
}

impl Sink {
    fn write_all_flush(&mut self, bytes: &[u8], fsync: bool) -> std::io::Result<()> {
        match self {
            Sink::File(w) => {
                w.write_all(bytes)?;
                // Flush every record: the journal's whole purpose is to
                // survive the process dying mid-campaign.
                w.flush()?;
                // Flushing reaches the page cache (kill -9 safe); only an
                // fsync survives an OS crash or power loss. Opt-in because
                // it serializes on the disk — the job WAL takes it, the
                // per-unit campaign journals do not.
                if fsync {
                    w.get_ref().sync_data()?;
                }
                Ok(())
            }
            Sink::Memory(buf) => {
                buf.lock().extend(bytes);
                Ok(())
            }
        }
    }
}

struct SinkState {
    sink: Sink,
    /// A chaos-injected crash struck: the "process" is dead and every
    /// later write is silently dropped, exactly as a killed process's
    /// writes would be.
    dead: bool,
}

/// A thread-safe flushed-per-line JSONL writer: the shared durability
/// primitive under the campaign [`JournalWriter`] and the server's job WAL.
///
/// Each line is written and flushed under one lock so concurrent appenders
/// never interleave bytes. The default flush-per-line guarantee covers the
/// *process* dying (the bytes are in the page cache); callers that must
/// also survive an OS crash or power loss — the job WAL — opt into
/// [`JsonlWriter::with_fsync`], which `sync_data`s the file after every
/// line. An attached [`FailurePlan`] can tear individual line writes
/// ([`FailurePlan::truncated_write`]) or kill the writer outright at a
/// [`CrashPoint`] — after which every later write, including "whole" ones,
/// is dropped, modelling the process dying mid-campaign.
pub struct JsonlWriter {
    state: Mutex<SinkState>,
    lines_written: AtomicU64,
    chaos: Option<FailurePlan>,
    fsync: bool,
}

impl std::fmt::Debug for JsonlWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlWriter")
            .field("lines_written", &self.lines_written)
            .field("chaos", &self.chaos)
            .finish_non_exhaustive()
    }
}

impl JsonlWriter {
    /// Creates (truncating) a JSONL file.
    pub fn create(path: &str) -> Result<Self, ScanftError> {
        let file = std::fs::File::create(path).map_err(|source| ScanftError::Io {
            path: path.to_owned(),
            source,
        })?;
        Ok(Self::from_sink(Sink::File(std::io::BufWriter::new(file))))
    }

    /// Opens a JSONL file for appending, creating it if absent.
    pub fn append_to(path: &str) -> Result<Self, ScanftError> {
        let file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)
            .map_err(|source| ScanftError::Io {
                path: path.to_owned(),
                source,
            })?;
        Ok(Self::from_sink(Sink::File(std::io::BufWriter::new(file))))
    }

    /// Creates an in-memory writer plus a handle to its buffer.
    #[must_use]
    pub fn in_memory() -> (Self, Arc<Mutex<Vec<u8>>>) {
        let buffer = Arc::new(Mutex::new(Vec::new()));
        (Self::from_sink(Sink::Memory(Arc::clone(&buffer))), buffer)
    }

    fn from_sink(sink: Sink) -> Self {
        JsonlWriter {
            state: Mutex::new(SinkState { sink, dead: false }),
            lines_written: AtomicU64::new(0),
            chaos: None,
            fsync: false,
        }
    }

    /// Attaches a chaos plan: some subsequent counted line writes may be
    /// torn, and (if the plan has a crash rate) the writer may die.
    #[must_use]
    pub fn with_chaos(mut self, plan: FailurePlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Upgrades the durability guarantee from flush-per-line (survives the
    /// process being killed) to fsync-per-line (survives an OS crash or
    /// power loss). No effect on in-memory sinks.
    #[must_use]
    pub fn with_fsync(mut self) -> Self {
        self.fsync = true;
        self
    }

    /// Writes `line` plus a newline, whole: never torn and never a crash
    /// site, and not counted in [`JsonlWriter::lines_written`]. Used for
    /// header lines, whose loss would orphan the whole file. A dead writer
    /// silently drops the write.
    pub fn write_line_whole(&self, line: &str) -> std::io::Result<()> {
        let mut bytes = line.as_bytes().to_vec();
        bytes.push(b'\n');
        let mut state = self.state.lock();
        if state.dead {
            return Ok(());
        }
        state.sink.write_all_flush(&bytes, self.fsync)
    }

    /// Appends one counted line (plus newline). The attached chaos plan may
    /// tear the write or kill the writer at a [`CrashPoint`]; a dead writer
    /// silently drops the line.
    pub fn write_line(&self, line: &str) -> std::io::Result<()> {
        let mut bytes = line.as_bytes().to_vec();
        bytes.push(b'\n');
        // AcqRel: pairs with the Acquire in `lines_written` so a reader
        // that observes count N also observes the N writes behind it.
        let index = self.lines_written.fetch_add(1, Ordering::AcqRel);
        let mut state = self.state.lock();
        if state.dead {
            return Ok(());
        }
        if let Some(plan) = &self.chaos {
            if let Some(point) = plan.crash_point(index) {
                state.dead = true;
                let cut = match point {
                    // The flush never landed: a deterministic torn prefix
                    // (drawn from the truncation stream when it fires, half
                    // the line otherwise) is all the OS kept.
                    CrashPoint::BeforeFlush => plan
                        .truncated_write(index, bytes.len())
                        .unwrap_or(bytes.len() / 2),
                    // The flush landed; the record is the last durable one.
                    CrashPoint::AfterFlush => bytes.len(),
                };
                return state.sink.write_all_flush(&bytes[..cut], self.fsync);
            }
            if let Some(cut) = plan.truncated_write(index, bytes.len()) {
                return state.sink.write_all_flush(&bytes[..cut], self.fsync);
            }
        }
        state.sink.write_all_flush(&bytes, self.fsync)
    }

    /// Number of counted lines appended so far (torn and post-crash writes
    /// included).
    #[must_use]
    pub fn lines_written(&self) -> u64 {
        self.lines_written.load(Ordering::Acquire)
    }

    /// Whether a chaos-injected crash has killed the writer.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.state.lock().dead
    }
}

/// A thread-safe append-only journal writer.
///
/// Workers append completed units concurrently; each record is written and
/// flushed under one lock so lines never interleave. An attached
/// [`FailurePlan`] makes the writer tear some record writes (for chaos
/// testing); the header is always written whole, so a chaos-damaged journal
/// is still attributable to its campaign.
#[derive(Debug)]
pub struct JournalWriter {
    inner: JsonlWriter,
}

impl JournalWriter {
    /// Creates (truncating) a journal file for a fresh campaign.
    pub fn create(path: &str) -> Result<Self, ScanftError> {
        Ok(JournalWriter {
            inner: JsonlWriter::create(path)?,
        })
    }

    /// Opens a journal file for appending (resume).
    pub fn append_to(path: &str) -> Result<Self, ScanftError> {
        Ok(JournalWriter {
            inner: JsonlWriter::append_to(path)?,
        })
    }

    /// Creates an in-memory journal writer plus a handle to its buffer —
    /// the property tests' way of exercising resume without touching disk.
    #[must_use]
    pub fn in_memory() -> (Self, Arc<Mutex<Vec<u8>>>) {
        let (inner, buffer) = JsonlWriter::in_memory();
        (JournalWriter { inner }, buffer)
    }

    /// Attaches a chaos plan: some subsequent record writes will be torn.
    #[must_use]
    pub fn with_chaos(mut self, plan: FailurePlan) -> Self {
        self.inner = self.inner.with_chaos(plan);
        self
    }

    /// Writes the header line (never torn by chaos).
    pub fn write_header(&self, header: &JournalHeader) -> std::io::Result<()> {
        self.inner.write_line_whole(&header.to_json())
    }

    /// Appends one record, possibly torn by the attached chaos plan.
    pub fn append(&self, record: &JournalRecord) -> std::io::Result<()> {
        self.inner.write_line(&record.to_json())
    }

    /// Number of records appended so far (torn writes included).
    #[must_use]
    pub fn records_written(&self) -> u64 {
        self.inner.lines_written()
    }
}

/// Repairs a journal file crash-damaged by a torn tail: parses it, and if
/// any damaged lines were skipped, rewrites the file as exactly the header
/// plus the intact records (via a temp file + rename so the repair itself
/// cannot tear). Returns the parsed journal either way.
///
/// This is what makes post-crash resume byte-identical to an uninterrupted
/// run: appending after a torn half-record would otherwise leave the
/// garbage prefix in the file forever. Files without an intact header are
/// returned unrepaired — the caller falls back to a fresh run, which
/// truncates the file anyway.
pub fn repair_journal(path: &str) -> Result<Journal, ScanftError> {
    let text = std::fs::read_to_string(path).map_err(|source| ScanftError::Io {
        path: path.to_owned(),
        source,
    })?;
    let journal = read_journal(&text);
    let Some(header) = &journal.header else {
        return Ok(journal);
    };
    let mut clean = header.to_json();
    clean.push('\n');
    for record in &journal.records {
        clean.push_str(&record.to_json());
        clean.push('\n');
    }
    if clean != text {
        let tmp = format!("{path}.repair");
        let io_err = |source| ScanftError::Io {
            path: path.to_owned(),
            source,
        };
        std::fs::write(&tmp, clean.as_bytes()).map_err(io_err)?;
        std::fs::rename(&tmp, path).map_err(io_err)?;
    }
    Ok(journal)
}

/// Renders an in-memory journal buffer as text for [`read_journal`].
#[must_use]
pub fn buffer_contents(buffer: &Arc<Mutex<Vec<u8>>>) -> String {
    String::from_utf8_lossy(&buffer.lock()).into_owned()
}

/// Splits freshly appended journal bytes at the last newline: everything up
/// through it is consumed (returned as whole lines), the torn tail is left
/// for a later poll. Shared by [`JournalTailer`] and [`BufferTailer`] so
/// both followers have identical torn-write behavior.
fn consume_complete_lines(fresh: &[u8]) -> (usize, Vec<String>) {
    let Some(last_newline) = fresh.iter().rposition(|&b| b == b'\n') else {
        return (0, Vec::new());
    };
    let text = String::from_utf8_lossy(&fresh[..=last_newline]);
    (last_newline + 1, text.lines().map(str::to_owned).collect())
}

/// A non-destructive follower for a journal file that is still being
/// written.
///
/// The `scanft serve` events endpoint polls a running campaign's journal;
/// re-reading the whole file per poll is quadratic in campaign length, so
/// the tailer remembers a byte offset and each [`JournalTailer::poll`]
/// reads only what was appended since. Because the writer flushes whole
/// lines under a lock — and a crash or chaos tear can leave at most one
/// unterminated trailing line — the tailer only ever consumes up through
/// the last `\n` it sees: a partially-written record stays buffered in the
/// file until its newline arrives, so a poll never yields a torn prefix of
/// a record that later completes.
#[derive(Debug, Clone)]
pub struct JournalTailer {
    path: String,
    offset: u64,
}

impl JournalTailer {
    /// Starts tailing `path` from the beginning. The file need not exist
    /// yet: polls before creation simply yield nothing.
    #[must_use]
    pub fn new(path: &str) -> Self {
        JournalTailer {
            path: path.to_owned(),
            offset: 0,
        }
    }

    /// Byte offset of the next unread position in the file.
    #[must_use]
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Returns every *complete* line appended since the last poll, newline
    /// terminators stripped. Bytes after the final `\n` are left unread for
    /// a future poll. A missing file yields an empty batch, not an error.
    pub fn poll(&mut self) -> Result<Vec<String>, ScanftError> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = match std::fs::File::open(&self.path) {
            Ok(file) => file,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(source) => {
                return Err(ScanftError::Io {
                    path: self.path.clone(),
                    source,
                })
            }
        };
        let io_err = |source| ScanftError::Io {
            path: self.path.clone(),
            source,
        };
        let len = file.metadata().map_err(io_err)?.len();
        if len <= self.offset {
            // Nothing new (or the file was truncated/recreated shorter —
            // journals are append-only, so treat that as nothing new).
            return Ok(Vec::new());
        }
        file.seek(SeekFrom::Start(self.offset))
            .map_err(|source| ScanftError::Io {
                path: self.path.clone(),
                source,
            })?;
        let mut fresh = Vec::with_capacity(usize::try_from(len - self.offset).unwrap_or(0));
        file.take(len - self.offset)
            .read_to_end(&mut fresh)
            .map_err(|source| ScanftError::Io {
                path: self.path.clone(),
                source,
            })?;
        // Consume only up through the last newline; a torn trailing line
        // stays unread until the writer finishes it.
        let (consumed, lines) = consume_complete_lines(&fresh);
        self.offset += consumed as u64;
        Ok(lines)
    }

    /// Like [`JournalTailer::poll`], but parses each complete line as a
    /// [`JournalRecord`], silently skipping the header and any damaged
    /// lines (counted in the second tuple element).
    pub fn poll_records(&mut self) -> Result<(Vec<JournalRecord>, usize), ScanftError> {
        let mut records = Vec::new();
        let mut skipped = 0;
        for line in self.poll()? {
            let line = line.trim();
            if line.is_empty() || parse_header(line).is_some() {
                continue;
            }
            match parse_record(line) {
                Some(record) => records.push(record),
                None => skipped += 1,
            }
        }
        Ok((records, skipped))
    }
}

/// A non-destructive follower for an in-memory journal buffer (the
/// [`JournalWriter::in_memory`] sink), with the same torn-write contract as
/// [`JournalTailer`]: only complete lines are consumed, a record missing
/// its trailing newline stays invisible until the writer finishes it.
///
/// This is the follower the deterministic model tests race against a
/// writer: the file tailer's semantics, minus the filesystem.
#[derive(Debug, Clone)]
pub struct BufferTailer {
    buffer: Arc<Mutex<Vec<u8>>>,
    offset: usize,
}

impl BufferTailer {
    /// Starts tailing `buffer` from the beginning.
    #[must_use]
    pub fn new(buffer: Arc<Mutex<Vec<u8>>>) -> Self {
        BufferTailer { buffer, offset: 0 }
    }

    /// Byte offset of the next unread position in the buffer.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Returns every *complete* line appended since the last poll, newline
    /// terminators stripped; bytes after the final `\n` stay unread.
    pub fn poll(&mut self) -> Vec<String> {
        let fresh: Vec<u8> = {
            let buf = self.buffer.lock();
            if buf.len() <= self.offset {
                return Vec::new();
            }
            buf[self.offset..].to_vec()
        };
        let (consumed, lines) = consume_complete_lines(&fresh);
        self.offset += consumed;
        lines
    }

    /// Like [`BufferTailer::poll`], but parses each complete line as a
    /// [`JournalRecord`], skipping the header and counting damaged lines.
    pub fn poll_records(&mut self) -> (Vec<JournalRecord>, usize) {
        let mut records = Vec::new();
        let mut skipped = 0;
        for line in self.poll() {
            let line = line.trim();
            if line.is_empty() || parse_header(line).is_some() {
                continue;
            }
            match parse_record(line) {
                Some(record) => records.push(record),
                None => skipped += 1,
            }
        }
        (records, skipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> JournalHeader {
        JournalHeader {
            label: "lion".into(),
            faults: 120,
            units: 2,
            order: 18,
            lanes_per_unit: 64,
        }
    }

    #[test]
    fn round_trip_header_and_records() {
        let (writer, buffer) = JournalWriter::in_memory();
        writer.write_header(&header()).unwrap();
        let r0 = JournalRecord {
            unit: 0,
            lanes: vec![Some(3), None, Some(17)],
        };
        let r1 = JournalRecord {
            unit: 1,
            lanes: vec![None, None],
        };
        writer.append(&r0).unwrap();
        writer.append(&r1).unwrap();
        let journal = read_journal(&buffer_contents(&buffer));
        assert_eq!(journal.header, Some(header()));
        assert_eq!(journal.records, vec![r0, r1]);
        assert_eq!(journal.skipped_lines, 0);
        assert!(journal.validate(&header()).is_ok());
    }

    #[test]
    fn torn_trailing_record_is_skipped_not_fatal() {
        let (writer, buffer) = JournalWriter::in_memory();
        writer.write_header(&header()).unwrap();
        writer
            .append(&JournalRecord {
                unit: 0,
                lanes: vec![Some(1), None],
            })
            .unwrap();
        // Simulate a crash mid-write by hand-truncating the buffer.
        {
            let mut buf = buffer.lock();
            let keep = buf.len();
            buf.extend(b"{\"unit\":1,\"lanes\":[3,nu");
            assert!(buf.len() > keep);
        }
        let journal = read_journal(&buffer_contents(&buffer));
        assert_eq!(journal.records.len(), 1);
        assert_eq!(journal.skipped_lines, 1);
        assert!(journal.validate(&header()).is_ok());
    }

    #[test]
    fn chaos_writer_tears_records_but_never_the_header() {
        let plan = FailurePlan::new(11).with_truncate_rate(1, 1);
        let (writer, buffer) = JournalWriter::in_memory();
        let writer = writer.with_chaos(plan);
        writer.write_header(&header()).unwrap();
        for unit in 0..4 {
            writer
                .append(&JournalRecord {
                    unit,
                    lanes: vec![Some(9); 8],
                })
                .unwrap();
        }
        let journal = read_journal(&buffer_contents(&buffer));
        assert_eq!(journal.header, Some(header()), "header survives chaos");
        assert!(
            journal.records.len() < 4,
            "rate-1/1 truncation must damage some records"
        );
    }

    #[test]
    fn validate_refuses_shape_mismatch_and_missing_header() {
        let (writer, buffer) = JournalWriter::in_memory();
        writer.write_header(&header()).unwrap();
        let journal = read_journal(&buffer_contents(&buffer));
        let mut other = header();
        other.faults = 64;
        assert!(matches!(
            journal.validate(&other),
            Err(ScanftError::Journal { .. })
        ));

        let empty = read_journal("");
        assert!(matches!(
            empty.validate(&header()),
            Err(ScanftError::Journal { .. })
        ));
    }

    #[test]
    fn labels_with_quotes_and_backslashes_round_trip() {
        let tricky = JournalHeader {
            label: "pa\\th \"x\"".into(),
            faults: 1,
            units: 1,
            order: 1,
            lanes_per_unit: 64,
        };
        let (writer, buffer) = JournalWriter::in_memory();
        writer.write_header(&tricky).unwrap();
        let journal = read_journal(&buffer_contents(&buffer));
        assert_eq!(journal.header, Some(tricky));
    }

    #[test]
    fn legacy_header_without_lanes_per_unit_defaults_to_64() {
        // Journals written before the field existed must keep resuming.
        let text = "{\"journal\":\"scanft-campaign\",\"version\":1,\"label\":\"lion\",\"faults\":120,\"units\":2,\"order\":18}\n";
        let journal = read_journal(text);
        assert_eq!(journal.header, Some(header()));
        assert!(journal.validate(&header()).is_ok());
    }

    #[test]
    fn empty_lanes_and_garbage_lines() {
        let text = "\n\nnot json\n{\"unit\":5,\"lanes\":[]}\n{\"unit\":bad}\n";
        let journal = read_journal(text);
        assert_eq!(
            journal.records,
            vec![JournalRecord {
                unit: 5,
                lanes: vec![]
            }]
        );
        assert_eq!(journal.skipped_lines, 2);
    }

    fn temp_path(tag: &str) -> String {
        std::env::temp_dir()
            .join(format!("scanft-{tag}-{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn tailer_yields_only_new_complete_lines() {
        let path = temp_path("tail-basic");
        std::fs::remove_file(&path).ok();
        let mut tailer = JournalTailer::new(&path);
        // Polling before the file exists is not an error.
        assert!(tailer.poll().unwrap().is_empty());

        let writer = JournalWriter::create(&path).unwrap();
        writer.write_header(&header()).unwrap();
        writer
            .append(&JournalRecord {
                unit: 0,
                lanes: vec![Some(3), None],
            })
            .unwrap();
        let lines = tailer.poll().unwrap();
        assert_eq!(lines.len(), 2, "header plus one record");
        assert!(lines[0].contains("scanft-campaign"));

        // No new writes → empty poll, offset unchanged.
        let offset = tailer.offset();
        assert!(tailer.poll().unwrap().is_empty());
        assert_eq!(tailer.offset(), offset);

        writer
            .append(&JournalRecord {
                unit: 1,
                lanes: vec![None],
            })
            .unwrap();
        let (records, skipped) = tailer.poll_records().unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].unit, 1);
        std::fs::remove_file(&path).ok();
    }

    /// The satellite regression: tailing a journal mid-torn-write must
    /// never yield a partial record. A record written without its trailing
    /// newline stays invisible to the tailer until the newline arrives,
    /// at which point the *whole* line is delivered exactly once.
    #[test]
    fn tailer_never_yields_partial_record_mid_torn_write() {
        use std::io::Write as _;
        let path = temp_path("tail-torn");
        std::fs::remove_file(&path).ok();
        let full = "{\"unit\":7,\"lanes\":[3,null,9]}\n";
        let mut tailer = JournalTailer::new(&path);
        {
            let mut file = std::fs::File::create(&path).unwrap();
            // Crash mid-record: only half the line reaches the file.
            file.write_all(&full.as_bytes()[..13]).unwrap();
            file.flush().unwrap();
        }
        assert!(
            tailer.poll().unwrap().is_empty(),
            "an unterminated line must stay unread"
        );
        {
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            file.write_all(&full.as_bytes()[13..]).unwrap();
        }
        let (records, skipped) = tailer.poll_records().unwrap();
        assert_eq!(skipped, 0, "the completed line parses whole");
        assert_eq!(
            records,
            vec![JournalRecord {
                unit: 7,
                lanes: vec![Some(3), None, Some(9)],
            }]
        );
        // Delivered exactly once.
        assert!(tailer.poll().unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    /// A line torn *permanently* (the writer died and a new record follows
    /// it) is delivered as a damaged line and counted, never spliced into
    /// its successor.
    #[test]
    fn tailer_counts_permanently_torn_lines() {
        use std::io::Write as _;
        let path = temp_path("tail-dead");
        std::fs::remove_file(&path).ok();
        let mut tailer = JournalTailer::new(&path);
        {
            let mut file = std::fs::File::create(&path).unwrap();
            file.write_all(b"{\"unit\":0,\"lanes\":[1,nu\n").unwrap();
            file.write_all(b"{\"unit\":1,\"lanes\":[4]}\n").unwrap();
        }
        let (records, skipped) = tailer.poll_records().unwrap();
        assert_eq!(skipped, 1);
        assert_eq!(
            records,
            vec![JournalRecord {
                unit: 1,
                lanes: vec![Some(4)],
            }]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_before_flush_tears_the_line_and_kills_the_writer() {
        // Find a (seed, index-0) BeforeFlush crash so the test is exact.
        let plan = (0..)
            .map(|seed| FailurePlan::new(seed).with_crash_rate(1, 1))
            .find(|p| p.crash_point(0) == Some(CrashPoint::BeforeFlush))
            .unwrap();
        let (writer, buffer) = JsonlWriter::in_memory();
        let writer = writer.with_chaos(plan);
        writer.write_line_whole("{\"header\":true}").unwrap();
        writer
            .write_line("{\"unit\":0,\"lanes\":[1,2,3,4]}")
            .unwrap();
        assert!(writer.is_dead());
        // Every later write — counted or whole — is dropped.
        writer.write_line("{\"unit\":1,\"lanes\":[5]}").unwrap();
        writer.write_line_whole("{\"header\":true}").unwrap();
        let text = buffer_contents(&buffer);
        assert!(text.starts_with("{\"header\":true}\n"));
        let tail = &text["{\"header\":true}\n".len()..];
        assert!(
            tail.len() < "{\"unit\":0,\"lanes\":[1,2,3,4]}\n".len(),
            "crash-before-flush must leave a strict prefix, got {tail:?}"
        );
        assert!(!tail.contains("\"unit\":1"), "post-crash writes dropped");
        assert_eq!(writer.lines_written(), 2, "attempts still counted");
    }

    #[test]
    fn crash_after_flush_keeps_the_line_whole_then_kills() {
        let plan = (0..)
            .map(|seed| FailurePlan::new(seed).with_crash_rate(1, 1))
            .find(|p| p.crash_point(0) == Some(CrashPoint::AfterFlush))
            .unwrap();
        let (writer, buffer) = JsonlWriter::in_memory();
        let writer = writer.with_chaos(plan);
        writer.write_line("{\"unit\":0,\"lanes\":[7]}").unwrap();
        assert!(writer.is_dead());
        writer.write_line("{\"unit\":1,\"lanes\":[8]}").unwrap();
        assert_eq!(buffer_contents(&buffer), "{\"unit\":0,\"lanes\":[7]}\n");
    }

    #[test]
    fn repair_rewrites_torn_tail_to_header_plus_intact_records() {
        let path = temp_path("repair");
        std::fs::remove_file(&path).ok();
        let intact = JournalRecord {
            unit: 0,
            lanes: vec![Some(3), None],
        };
        {
            let writer = JournalWriter::create(&path).unwrap();
            writer.write_header(&header()).unwrap();
            writer.append(&intact).unwrap();
        }
        {
            use std::io::Write as _;
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            file.write_all(b"{\"unit\":1,\"lanes\":[9,nu").unwrap();
        }
        let repaired = repair_journal(&path).unwrap();
        assert_eq!(repaired.skipped_lines, 1);
        assert_eq!(repaired.records, vec![intact.clone()]);
        // The file now round-trips exactly: header + intact records, no
        // garbage tail, so appending resumes byte-identically.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.contains("9,nu"));
        let reread = read_journal(&text);
        assert_eq!(reread.skipped_lines, 0);
        assert_eq!(reread.records, vec![intact]);
        assert_eq!(reread.header, Some(header()));
        // Repairing a clean file is a no-op.
        let again = repair_journal(&path).unwrap();
        assert_eq!(again.skipped_lines, 0);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repair_leaves_headerless_files_alone() {
        let path = temp_path("repair-nohdr");
        std::fs::write(&path, "garbage line\n").unwrap();
        let journal = repair_journal(&path).unwrap();
        assert!(journal.header.is_none());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "garbage line\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_round_trip_with_append() {
        let dir = std::env::temp_dir();
        let path = dir
            .join(format!("scanft-journal-test-{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned();
        {
            let writer = JournalWriter::create(&path).unwrap();
            writer.write_header(&header()).unwrap();
            writer
                .append(&JournalRecord {
                    unit: 0,
                    lanes: vec![None],
                })
                .unwrap();
        }
        {
            let writer = JournalWriter::append_to(&path).unwrap();
            writer
                .append(&JournalRecord {
                    unit: 1,
                    lanes: vec![Some(2)],
                })
                .unwrap();
        }
        let journal = read_journal_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(journal.records.len(), 2);
        assert_eq!(journal.header, Some(header()));
    }
}
