//! Panic-isolating, budget-aware execution of independent work units.
//!
//! [`run_units`] drives a pool of worker threads over a list of unit ids.
//! Each unit executes under [`std::panic::catch_unwind`]: a panicking unit
//! is **quarantined** (recorded with its panic message) instead of killing
//! the worker or the process, and the worker's per-thread state is rebuilt
//! before the next unit so a poisoned engine can never leak into later
//! work. A shared [`BudgetClock`] gates every claim, so a deadline or unit
//! cap stops the fleet promptly and the unclaimed tail is reported as
//! `remaining` — never silently dropped.

use std::panic::{catch_unwind, AssertUnwindSafe};

use scanft_race::sync::{AtomicUsize, Mutex, Ordering};
use scanft_race::thread;

use crate::budget::{Budget, StopReason};
use crate::chaos::{ChaosPanic, FailurePlan};

/// A quarantined unit: it panicked, and here is what the payload said.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitFailure {
    /// The work-unit id that panicked.
    pub unit: usize,
    /// The panic payload, rendered as text.
    pub message: String,
}

/// What happened to every unit of a supervised run.
///
/// The three lists partition the input `units` exactly: every id lands in
/// `completed`, `quarantined`, or `remaining`. All three are sorted by unit
/// id, so the outcome is deterministic no matter how threads interleaved.
#[derive(Debug)]
pub struct WorkOutcome<T> {
    /// Units that ran to completion, with their results.
    pub completed: Vec<(usize, T)>,
    /// Units whose worker panicked.
    pub quarantined: Vec<UnitFailure>,
    /// Units never executed because the budget stopped the run first.
    pub remaining: Vec<usize>,
    /// Why the run stopped early, if it did.
    pub stopped: Option<StopReason>,
}

impl<T> WorkOutcome<T> {
    /// Whether every unit completed: nothing quarantined, nothing left.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.quarantined.is_empty() && self.remaining.is_empty()
    }
}

/// Renders a panic payload as text, recognizing the chaos marker so
/// injected failures are distinguishable from genuine bugs.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(chaos) = payload.downcast_ref::<ChaosPanic>() {
        return format!("chaos-injected panic (unit {})", chaos.unit);
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_owned();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    "non-string panic payload".to_owned()
}

/// Runs `work` over every id in `units` on `num_threads` workers with
/// panic isolation, budget enforcement, and optional chaos injection.
///
/// `init` builds one reusable scratch state per worker (a fault-simulation
/// engine, say); it is rebuilt after any panic so quarantined units cannot
/// corrupt later ones. Unit ids must be unique. Results are keyed by unit
/// id, so the outcome is independent of scheduling whenever all units
/// complete.
///
/// # Panics
///
/// Panics if `num_threads` is zero.
pub fn run_units<S, T, I, F>(
    units: &[usize],
    num_threads: usize,
    budget: &Budget,
    chaos: Option<&FailurePlan>,
    init: I,
    work: F,
) -> WorkOutcome<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    assert!(num_threads > 0, "num_threads must be positive");
    let obs = scanft_obs::global();
    let c_completed = obs.counter("harness.units_completed");
    let c_quarantined = obs.counter("harness.units_quarantined");
    let c_chaos_panics = obs.counter("harness.chaos.panics_injected");
    let c_chaos_delays = obs.counter("harness.chaos.delays_injected");

    let clock = budget.start();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, Result<T, String>)>> = Mutex::new(Vec::new());
    let stopped: Mutex<Option<StopReason>> = Mutex::new(None);

    thread::scope(|scope| {
        for _ in 0..num_threads.min(units.len().max(1)) {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    // AcqRel: claiming index k happens-before any worker
                    // that observes a later index, so the unit list is
                    // dealt out without duplication or gaps.
                    let k = next.fetch_add(1, Ordering::AcqRel);
                    let Some(&unit) = units.get(k) else {
                        break;
                    };
                    if let Err(reason) = clock.try_claim() {
                        stopped.lock().get_or_insert(reason);
                        break;
                    }
                    if let Some(plan) = chaos {
                        if let Some(delay) = plan.delay(unit) {
                            c_chaos_delays.inc();
                            thread::sleep(delay);
                        }
                    }
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        if let Some(plan) = chaos {
                            if plan.should_panic(unit) {
                                c_chaos_panics.inc();
                                std::panic::panic_any(ChaosPanic { unit });
                            }
                        }
                        work(&mut state, unit)
                    }));
                    match outcome {
                        Ok(value) => {
                            results.lock().push((unit, Ok(value)));
                        }
                        Err(payload) => {
                            results
                                .lock()
                                .push((unit, Err(panic_message(payload.as_ref()))));
                            // The panic may have left the scratch state
                            // half-updated; rebuild it from scratch.
                            state = init();
                        }
                    }
                }
            });
        }
    });

    let mut completed = Vec::new();
    let mut quarantined = Vec::new();
    let mut done = vec![false; units.len()];
    let position: std::collections::HashMap<usize, usize> = units
        .iter()
        .enumerate()
        .map(|(pos, &unit)| (unit, pos))
        .collect();
    for (unit, result) in results.into_inner() {
        done[position[&unit]] = true;
        match result {
            Ok(value) => completed.push((unit, value)),
            Err(message) => quarantined.push(UnitFailure { unit, message }),
        }
    }
    completed.sort_by_key(|&(unit, _)| unit);
    quarantined.sort_by_key(|failure| failure.unit);
    let remaining: Vec<usize> = units
        .iter()
        .zip(&done)
        .filter_map(|(&unit, &d)| (!d).then_some(unit))
        .collect();

    c_completed.add(completed.len() as u64);
    c_quarantined.add(quarantined.len() as u64);
    let stopped = stopped.into_inner();
    match stopped {
        Some(StopReason::Cancelled) => obs.counter("harness.cancel_hits").inc(),
        Some(StopReason::Deadline) => obs.counter("harness.deadline_hits").inc(),
        Some(StopReason::UnitCap) => obs.counter("harness.unitcap_hits").inc(),
        None => {}
    }

    WorkOutcome {
        completed,
        quarantined,
        remaining,
        stopped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ids(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn all_units_complete_without_chaos() {
        for threads in [1, 3, 8] {
            let outcome = run_units(
                &ids(20),
                threads,
                &Budget::unlimited(),
                None,
                || 0u32,
                |_, unit| unit * 2,
            );
            assert!(outcome.is_complete());
            assert_eq!(outcome.completed.len(), 20);
            assert!(outcome.stopped.is_none());
            // Keyed by unit id: deterministic regardless of scheduling.
            for &(unit, value) in &outcome.completed {
                assert_eq!(value, unit * 2);
            }
        }
    }

    #[test]
    fn panicking_units_are_quarantined_not_fatal() {
        crate::chaos::silence_chaos_panics();
        let outcome = run_units(
            &ids(10),
            4,
            &Budget::unlimited(),
            None,
            || (),
            |(), unit| {
                assert!(unit != 3 && unit != 7, "boom on unit {unit}");
                unit
            },
        );
        assert_eq!(outcome.completed.len(), 8);
        assert_eq!(outcome.quarantined.len(), 2);
        assert_eq!(outcome.quarantined[0].unit, 3);
        assert_eq!(outcome.quarantined[1].unit, 7);
        assert!(outcome.quarantined[0].message.contains("boom on unit 3"));
        assert!(outcome.remaining.is_empty());
        assert!(!outcome.is_complete());
    }

    #[test]
    fn chaos_panics_quarantine_deterministically() {
        crate::chaos::silence_chaos_panics();
        let plan = FailurePlan::new(99).with_panic_rate(1, 3);
        let expect: Vec<usize> = (0..30).filter(|&u| plan.should_panic(u)).collect();
        assert!(!expect.is_empty(), "seed 99 must inject something");
        for threads in [1, 4] {
            let outcome = run_units(
                &ids(30),
                threads,
                &Budget::unlimited(),
                Some(&plan),
                || (),
                |(), unit| unit,
            );
            let got: Vec<usize> = outcome.quarantined.iter().map(|f| f.unit).collect();
            assert_eq!(got, expect, "threads={threads}");
            assert!(outcome.quarantined[0].message.contains("chaos-injected"));
        }
    }

    #[test]
    fn state_is_rebuilt_after_a_panic() {
        crate::chaos::silence_chaos_panics();
        // Each worker's state counts units since (re)build; a panicking
        // unit poisons the count, so the rebuild must reset it.
        let outcome = run_units(
            &ids(6),
            1,
            &Budget::unlimited(),
            None,
            || 0usize,
            |seen, unit| {
                *seen += 1;
                assert!(unit != 2, "injected failure");
                *seen
            },
        );
        // Unit 3 runs right after the panic on unit 2 with a fresh state.
        let after: Vec<(usize, usize)> = outcome.completed.clone();
        assert_eq!(after, vec![(0, 1), (1, 2), (3, 1), (4, 2), (5, 3)]);
    }

    #[test]
    fn unit_cap_leaves_a_remaining_tail() {
        let outcome = run_units(
            &ids(10),
            1,
            &Budget::unlimited().with_max_units(4),
            None,
            || (),
            |(), unit| unit,
        );
        assert_eq!(outcome.completed.len(), 4);
        assert_eq!(outcome.remaining, vec![4, 5, 6, 7, 8, 9]);
        assert_eq!(outcome.stopped, Some(StopReason::UnitCap));
    }

    /// The vacuous-deadline edge at the supervisor level: a zero-second
    /// budget completes nothing, quarantines nothing, reports every unit
    /// remaining, and returns promptly (no busy loop).
    #[test]
    fn zero_second_deadline_yields_all_remaining() {
        let start = std::time::Instant::now();
        let outcome = run_units(
            &ids(1000),
            4,
            &Budget::unlimited().with_deadline(Duration::ZERO),
            None,
            || (),
            |(), unit| unit,
        );
        assert!(outcome.completed.is_empty());
        assert!(outcome.quarantined.is_empty());
        assert_eq!(outcome.remaining, ids(1000));
        assert_eq!(outcome.stopped, Some(StopReason::Deadline));
        assert!(start.elapsed() < Duration::from_secs(5), "no busy loop");
    }

    #[test]
    fn partition_is_exact_under_mixed_failures() {
        crate::chaos::silence_chaos_panics();
        let plan = FailurePlan::new(5).with_panic_rate(1, 4);
        let outcome = run_units(
            &ids(64),
            3,
            &Budget::unlimited().with_max_units(40),
            Some(&plan),
            || (),
            |(), unit| unit,
        );
        let mut all: Vec<usize> = outcome
            .completed
            .iter()
            .map(|&(u, _)| u)
            .chain(outcome.quarantined.iter().map(|f| f.unit))
            .chain(outcome.remaining.iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, ids(64), "every unit lands in exactly one bucket");
        assert_eq!(
            outcome.completed.len() + outcome.quarantined.len(),
            40,
            "claims stop exactly at the cap"
        );
    }

    #[test]
    fn empty_units_short_circuit() {
        let outcome = run_units(&[], 4, &Budget::unlimited(), None, || (), |(), unit| unit);
        assert!(outcome.is_complete());
        assert!(outcome.completed.is_empty());
        assert!(outcome.stopped.is_none());
    }
}
