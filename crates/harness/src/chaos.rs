//! Deterministic failure injection for testing every recovery path.
//!
//! A [`FailurePlan`] is a pure function from a seed and a unit index to a
//! set of injected faults: worker panics, artificial delays, and truncated
//! journal writes. Determinism matters twice over: the same seed reproduces
//! the same failures regardless of thread scheduling (each decision depends
//! only on `(seed, domain, index)`), and CI can pin a seed and assert the
//! exact recovery behaviour forever.
//!
//! Injected panics carry a [`ChaosPanic`] payload so the supervisor can
//! label them distinctly from genuine worker bugs, and so
//! [`silence_chaos_panics`] can keep the default panic hook from spamming
//! test output with intentional failures.

use std::time::Duration;

use scanft_fsm::rng::SplitMix64;

/// Domain tags keep the panic/delay/truncation decision streams of one seed
/// statistically independent of each other.
const DOMAIN_PANIC: u64 = 0x70616e69_63000000; // "panic"
const DOMAIN_DELAY: u64 = 0x64656c61_79000000; // "delay"
const DOMAIN_TRUNC: u64 = 0x7472756e_63000000; // "trunc"
const DOMAIN_CRASH: u64 = 0x63726173_68000000; // "crash"

/// Where, relative to a record's flush, an injected process death strikes.
///
/// A journal/WAL writer consulting its [`FailurePlan`] simulates the death:
/// `BeforeFlush` leaves a torn prefix of the record (the bytes the OS
/// happened to have when the process died), `AfterFlush` leaves the record
/// whole — and in both cases the writer goes permanently dead, dropping
/// every later write, exactly as a killed process would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// The process dies before the record's flush lands: the record
    /// reaches the file torn (a strict prefix).
    BeforeFlush,
    /// The process dies just after the flush: the record is durable, but
    /// nothing after it ever will be.
    AfterFlush,
}

/// Payload of a chaos-injected panic: the work unit it was injected into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPanic {
    /// The work unit the panic was injected into.
    pub unit: usize,
}

/// A seeded, deterministic plan of failures to inject into a supervised
/// run.
///
/// # Examples
///
/// ```
/// use scanft_harness::FailurePlan;
///
/// let plan = FailurePlan::new(7);
/// // Decisions are a pure function of (seed, unit): always reproducible.
/// assert_eq!(plan.should_panic(3), FailurePlan::new(7).should_panic(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailurePlan {
    seed: u64,
    panic_rate: (u64, u64),
    delay_rate: (u64, u64),
    max_delay_micros: u64,
    truncate_rate: (u64, u64),
    crash_rate: (u64, u64),
}

impl FailurePlan {
    /// A plan with the default rates: panic 1-in-8 units, delay 1-in-4
    /// units by up to 500 µs, truncate 1-in-4 journal records.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FailurePlan {
            seed,
            panic_rate: (1, 8),
            delay_rate: (1, 4),
            max_delay_micros: 500,
            truncate_rate: (1, 4),
            crash_rate: (0, 1),
        }
    }

    /// Overrides the panic probability to `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    #[must_use]
    pub fn with_panic_rate(mut self, num: u64, den: u64) -> Self {
        assert!(den > 0, "denominator must be positive");
        self.panic_rate = (num, den);
        self
    }

    /// Overrides the delay probability to `num / den` with delays up to
    /// `max_micros` microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    #[must_use]
    pub fn with_delay_rate(mut self, num: u64, den: u64, max_micros: u64) -> Self {
        assert!(den > 0, "denominator must be positive");
        self.delay_rate = (num, den);
        self.max_delay_micros = max_micros;
        self
    }

    /// Overrides the journal-truncation probability to `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    #[must_use]
    pub fn with_truncate_rate(mut self, num: u64, den: u64) -> Self {
        assert!(den > 0, "denominator must be positive");
        self.truncate_rate = (num, den);
        self
    }

    /// Overrides the process-crash probability to `num / den` per record.
    ///
    /// Crashes default to off (`0 / 1`): unlike torn writes, an injected
    /// crash kills the writer permanently, so plans must opt in.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    #[must_use]
    pub fn with_crash_rate(mut self, num: u64, den: u64) -> Self {
        assert!(den > 0, "denominator must be positive");
        self.crash_rate = (num, den);
        self
    }

    /// The seed the plan was built from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn rng(&self, domain: u64, index: u64) -> SplitMix64 {
        let mut rng = SplitMix64::new(self.seed ^ domain);
        // Burn one output mixed with the index so consecutive indices do
        // not walk the same underlying SplitMix64 stream.
        let salt = rng.next_u64() ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        SplitMix64::new(salt)
    }

    /// Whether the worker processing `unit` should panic.
    #[must_use]
    pub fn should_panic(&self, unit: usize) -> bool {
        let (num, den) = self.panic_rate;
        num > 0 && self.rng(DOMAIN_PANIC, unit as u64).chance(num, den)
    }

    /// An artificial delay to impose before processing `unit`, if any.
    #[must_use]
    pub fn delay(&self, unit: usize) -> Option<Duration> {
        let (num, den) = self.delay_rate;
        if num == 0 || self.max_delay_micros == 0 {
            return None;
        }
        let mut rng = self.rng(DOMAIN_DELAY, unit as u64);
        rng.chance(num, den)
            .then(|| Duration::from_micros(rng.next_below(self.max_delay_micros) + 1))
    }

    /// How many bytes of the `record_index`-th journal record (of `len`
    /// bytes including the newline) should actually reach the sink:
    /// `Some(prefix)` with `prefix < len` models a torn write, `None`
    /// writes the record whole.
    #[must_use]
    pub fn truncated_write(&self, record_index: u64, len: usize) -> Option<usize> {
        let (num, den) = self.truncate_rate;
        if num == 0 || len == 0 {
            return None;
        }
        let mut rng = self.rng(DOMAIN_TRUNC, record_index);
        rng.chance(num, den)
            .then(|| rng.next_below(len as u64) as usize)
    }

    /// Whether the process should "die" while writing the
    /// `record_index`-th record, and if so at which [`CrashPoint`].
    ///
    /// The point is drawn from the same seeded stream as the decision, so a
    /// given `(seed, index)` always crashes the same way.
    #[must_use]
    pub fn crash_point(&self, record_index: u64) -> Option<CrashPoint> {
        let (num, den) = self.crash_rate;
        if num == 0 {
            return None;
        }
        let mut rng = self.rng(DOMAIN_CRASH, record_index);
        rng.chance(num, den).then(|| {
            if rng.chance(1, 2) {
                CrashPoint::BeforeFlush
            } else {
                CrashPoint::AfterFlush
            }
        })
    }
}

/// Installs (once per process) a panic hook that swallows panics carrying a
/// [`ChaosPanic`] payload and forwards everything else to the previous
/// hook. Call from tests and chaos drivers so intentional failures do not
/// flood stderr; genuine panics still print as usual.
pub fn silence_chaos_panics() {
    static ONCE: scanft_race::sync::Once = scanft_race::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ChaosPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed_and_unit() {
        let a = FailurePlan::new(42);
        let b = FailurePlan::new(42);
        for unit in 0..200 {
            assert_eq!(a.should_panic(unit), b.should_panic(unit));
            assert_eq!(a.delay(unit), b.delay(unit));
            assert_eq!(
                a.truncated_write(unit as u64, 100),
                b.truncated_write(unit as u64, 100)
            );
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = FailurePlan::new(1).with_panic_rate(1, 2);
        let b = FailurePlan::new(2).with_panic_rate(1, 2);
        assert!((0..64).any(|u| a.should_panic(u) != b.should_panic(u)));
    }

    #[test]
    fn default_rates_fire_but_not_always() {
        let plan = FailurePlan::new(1234);
        let panics = (0..800).filter(|&u| plan.should_panic(u)).count();
        // 1-in-8 over 800 units: well within [20, 300] with overwhelming
        // probability, and the bound is deterministic anyway.
        assert!(panics > 20 && panics < 300, "{panics} panics");
        let delays = (0..800).filter(|&u| plan.delay(u).is_some()).count();
        assert!(delays > 80 && delays < 400, "{delays} delays");
    }

    #[test]
    fn zero_rates_never_fire() {
        let plan = FailurePlan::new(9)
            .with_panic_rate(0, 1)
            .with_delay_rate(0, 1, 0)
            .with_truncate_rate(0, 1);
        for unit in 0..100 {
            assert!(!plan.should_panic(unit));
            assert!(plan.delay(unit).is_none());
            assert!(plan.truncated_write(unit as u64, 50).is_none());
        }
    }

    #[test]
    fn truncated_write_is_a_strict_prefix() {
        let plan = FailurePlan::new(5).with_truncate_rate(1, 1);
        for index in 0..100 {
            let len = 80;
            let cut = plan.truncated_write(index, len);
            let cut = cut.expect("rate 1/1 always truncates");
            assert!(cut < len);
        }
        assert!(
            plan.truncated_write(0, 0).is_none(),
            "empty record untouched"
        );
    }

    #[test]
    fn crashes_default_off_and_are_deterministic_when_enabled() {
        let quiet = FailurePlan::new(3);
        assert!((0..200).all(|i| quiet.crash_point(i).is_none()));

        let noisy = FailurePlan::new(3).with_crash_rate(1, 4);
        let again = FailurePlan::new(3).with_crash_rate(1, 4);
        let fired = (0..400).filter(|&i| noisy.crash_point(i).is_some()).count();
        assert!(fired > 40 && fired < 250, "{fired} crashes");
        for i in 0..400 {
            assert_eq!(noisy.crash_point(i), again.crash_point(i));
        }
        // Both points appear somewhere in the stream.
        let points: Vec<_> = (0..400).filter_map(|i| noisy.crash_point(i)).collect();
        assert!(points.contains(&CrashPoint::BeforeFlush));
        assert!(points.contains(&CrashPoint::AfterFlush));
    }

    #[test]
    fn delays_respect_the_cap() {
        let plan = FailurePlan::new(77).with_delay_rate(1, 1, 200);
        for unit in 0..100 {
            let d = plan.delay(unit).expect("rate 1/1 always delays");
            assert!(d >= Duration::from_micros(1));
            assert!(d <= Duration::from_micros(200));
        }
    }
}
