//! Wall-clock and work-unit budgets for long-running campaigns.
//!
//! A [`Budget`] is a passive description — an optional wall-clock deadline
//! and an optional cap on the number of work units — that costs nothing
//! until [`Budget::start`] turns it into a running [`BudgetClock`]. The
//! clock is shared by every worker of a supervised run: each worker claims
//! its next unit through [`BudgetClock::try_claim`], which refuses with a
//! [`StopReason`] the moment either limit is reached, so an exhausted
//! budget can never spin a worker in a busy loop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Why a budgeted run stopped before finishing all of its work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The work-unit cap was reached.
    UnitCap,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Deadline => write!(f, "wall-clock deadline"),
            StopReason::UnitCap => write!(f, "work-unit cap"),
        }
    }
}

/// A wall-clock deadline plus a work-unit cap, either of which may be
/// absent. The default budget is unlimited.
///
/// What a "unit" means is up to the consumer: the fault-simulation
/// supervisor counts 64-fault batches, PODEM counts decisions, and the
/// coverage top-up counts ATPG target faults.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use scanft_harness::Budget;
///
/// let budget = Budget::unlimited()
///     .with_deadline(Duration::from_secs(30))
///     .with_max_units(1000);
/// let clock = budget.start();
/// assert!(clock.try_claim().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Wall-clock allowance, measured from [`Budget::start`].
    pub deadline: Option<Duration>,
    /// Maximum number of work units to claim.
    pub max_units: Option<u64>,
}

impl Budget {
    /// A budget with no limits.
    #[must_use]
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Sets the wall-clock allowance.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the work-unit cap.
    #[must_use]
    pub fn with_max_units(mut self, max_units: u64) -> Self {
        self.max_units = Some(max_units);
        self
    }

    /// Whether neither limit is set.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_units.is_none()
    }

    /// Starts the clock: the deadline is measured from this call.
    #[must_use]
    pub fn start(&self) -> BudgetClock {
        BudgetClock {
            deadline_at: self.deadline.map(|d| Instant::now() + d),
            max_units: self.max_units,
            claimed: AtomicU64::new(0),
        }
    }
}

/// A running [`Budget`]: thread-safe, shared by reference across workers.
#[derive(Debug)]
pub struct BudgetClock {
    deadline_at: Option<Instant>,
    max_units: Option<u64>,
    claimed: AtomicU64,
}

impl BudgetClock {
    /// Claims one work unit, or reports why no more may start.
    ///
    /// The deadline is checked first (a zero-duration deadline therefore
    /// refuses the very first claim), then the unit cap. A refused claim
    /// does not consume a unit.
    pub fn try_claim(&self) -> Result<(), StopReason> {
        if let Some(reason) = self.stop_reason() {
            return Err(reason);
        }
        if let Some(max) = self.max_units {
            // fetch_update keeps concurrent claims from overshooting the cap.
            if self
                .claimed
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                    (n < max).then_some(n + 1)
                })
                .is_err()
            {
                return Err(StopReason::UnitCap);
            }
        } else {
            self.claimed.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Whether the budget already forbids further work, without claiming.
    #[must_use]
    pub fn stop_reason(&self) -> Option<StopReason> {
        if let Some(at) = self.deadline_at {
            if Instant::now() >= at {
                return Some(StopReason::Deadline);
            }
        }
        if let Some(max) = self.max_units {
            if self.claimed.load(Ordering::Relaxed) >= max {
                return Some(StopReason::UnitCap);
            }
        }
        None
    }

    /// Wall-clock time left before the deadline (`None` when unlimited,
    /// zero once the deadline has passed).
    #[must_use]
    pub fn remaining_time(&self) -> Option<Duration> {
        self.deadline_at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Number of units claimed so far.
    #[must_use]
    pub fn claimed(&self) -> u64 {
        self.claimed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_claims() {
        let clock = Budget::unlimited().start();
        for _ in 0..10_000 {
            assert!(clock.try_claim().is_ok());
        }
        assert_eq!(clock.claimed(), 10_000);
        assert!(clock.stop_reason().is_none());
        assert!(clock.remaining_time().is_none());
    }

    #[test]
    fn unit_cap_refuses_after_cap() {
        let clock = Budget::unlimited().with_max_units(3).start();
        assert!(clock.try_claim().is_ok());
        assert!(clock.try_claim().is_ok());
        assert!(clock.try_claim().is_ok());
        assert_eq!(clock.try_claim(), Err(StopReason::UnitCap));
        assert_eq!(clock.claimed(), 3, "a refused claim consumes nothing");
    }

    /// The vacuous-deadline edge: a zero-second budget refuses the very
    /// first claim with `Deadline` instead of panicking or spinning.
    #[test]
    fn zero_second_deadline_refuses_immediately() {
        let clock = Budget::unlimited()
            .with_deadline(Duration::from_secs(0))
            .start();
        assert_eq!(clock.stop_reason(), Some(StopReason::Deadline));
        assert_eq!(clock.try_claim(), Err(StopReason::Deadline));
        assert_eq!(clock.claimed(), 0);
        assert_eq!(clock.remaining_time(), Some(Duration::ZERO));
    }

    #[test]
    fn deadline_checked_before_unit_cap() {
        let clock = Budget::unlimited()
            .with_deadline(Duration::ZERO)
            .with_max_units(0)
            .start();
        assert_eq!(clock.try_claim(), Err(StopReason::Deadline));
    }

    #[test]
    fn generous_deadline_claims_fine() {
        let clock = Budget::unlimited()
            .with_deadline(Duration::from_secs(3600))
            .start();
        assert!(clock.try_claim().is_ok());
        assert!(clock.remaining_time().unwrap() > Duration::from_secs(3500));
    }

    #[test]
    fn concurrent_claims_never_overshoot_cap() {
        let clock = Budget::unlimited().with_max_units(100).start();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| while clock.try_claim().is_ok() {});
            }
        });
        assert_eq!(clock.claimed(), 100);
    }

    #[test]
    fn display_names_the_reason() {
        assert_eq!(StopReason::Deadline.to_string(), "wall-clock deadline");
        assert_eq!(StopReason::UnitCap.to_string(), "work-unit cap");
    }
}
