//! Wall-clock and work-unit budgets for long-running campaigns.
//!
//! A [`Budget`] is a passive description — an optional wall-clock deadline,
//! an optional cap on the number of work units, and an optional shared
//! [`CancelToken`] — that costs nothing until [`Budget::start`] turns it
//! into a running [`BudgetClock`]. The clock is shared by every worker of a
//! supervised run: each worker claims its next unit through
//! [`BudgetClock::try_claim`], which refuses with a [`StopReason`] the
//! moment any limit is reached, so an exhausted budget can never spin a
//! worker in a busy loop. The cancel token is how an external controller —
//! the `scanft serve` job API's `DELETE /jobs/:id`, say — stops a campaign
//! that is already running: cancellation rides the same claim-refusal path
//! as deadlines and unit caps, so a cancelled run degrades exactly like a
//! budget-stopped one (sound partial results, nothing invented).

use scanft_race::sync::{Arc, AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Why a budgeted run stopped before finishing all of its work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The run was cancelled through its [`CancelToken`].
    Cancelled,
    /// The wall-clock deadline passed.
    Deadline,
    /// The work-unit cap was reached.
    UnitCap,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Cancelled => write!(f, "cancellation"),
            StopReason::Deadline => write!(f, "wall-clock deadline"),
            StopReason::UnitCap => write!(f, "work-unit cap"),
        }
    }
}

/// A shared, thread-safe cancellation flag.
///
/// Clones share the flag, so a controller keeps one clone and hands the
/// other to a [`Budget`]; flipping it refuses every subsequent work-unit
/// claim with [`StopReason::Cancelled`]. Cancellation is level-triggered
/// and irreversible: once cancelled, always cancelled.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent.
    ///
    /// Release ordering: a worker that observes the flag (acquire) also
    /// observes everything the canceller wrote before cancelling — e.g.
    /// the job-registry state transition that triggered the cancel.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Token identity: two tokens are equal iff they share the same flag.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for CancelToken {}

/// A wall-clock deadline plus a work-unit cap plus a cancellation hook,
/// any of which may be absent. The default budget is unlimited.
///
/// What a "unit" means is up to the consumer: the fault-simulation
/// supervisor counts 64-fault batches, PODEM counts decisions, and the
/// coverage top-up counts ATPG target faults.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use scanft_harness::{Budget, CancelToken, StopReason};
///
/// let token = CancelToken::new();
/// let budget = Budget::unlimited()
///     .with_deadline(Duration::from_secs(30))
///     .with_max_units(1000)
///     .with_cancel(token.clone());
/// let clock = budget.start();
/// assert!(clock.try_claim().is_ok());
/// token.cancel();
/// assert_eq!(clock.try_claim(), Err(StopReason::Cancelled));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Budget {
    /// Wall-clock allowance, measured from [`Budget::start`].
    pub deadline: Option<Duration>,
    /// Maximum number of work units to claim.
    pub max_units: Option<u64>,
    /// External cancellation hook checked before every claim.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// A budget with no limits.
    #[must_use]
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Sets the wall-clock allowance.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the work-unit cap.
    #[must_use]
    pub fn with_max_units(mut self, max_units: u64) -> Self {
        self.max_units = Some(max_units);
        self
    }

    /// Attaches a cancellation token; the caller keeps a clone and flips it
    /// to stop the run between work units.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether no limit (deadline, unit cap, or cancel hook) is set.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_units.is_none() && self.cancel.is_none()
    }

    /// Starts the clock: the deadline is measured from this call.
    #[must_use]
    pub fn start(&self) -> BudgetClock {
        BudgetClock {
            deadline_at: self.deadline.map(|d| Instant::now() + d),
            max_units: self.max_units,
            cancel: self.cancel.clone(),
            claimed: AtomicU64::new(0),
        }
    }
}

/// A running [`Budget`]: thread-safe, shared by reference across workers.
#[derive(Debug)]
pub struct BudgetClock {
    deadline_at: Option<Instant>,
    max_units: Option<u64>,
    cancel: Option<CancelToken>,
    claimed: AtomicU64,
}

impl BudgetClock {
    /// Claims one work unit, or reports why no more may start.
    ///
    /// Cancellation is checked first, then the deadline (a zero-duration
    /// deadline therefore refuses the very first claim), then the unit cap.
    /// A refused claim does not consume a unit.
    pub fn try_claim(&self) -> Result<(), StopReason> {
        if let Some(reason) = self.stop_reason() {
            return Err(reason);
        }
        if let Some(max) = self.max_units {
            // fetch_update keeps concurrent claims from overshooting the cap;
            // AcqRel so a claim happens-before the claim that observes it.
            if self
                .claimed
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                    (n < max).then_some(n + 1)
                })
                .is_err()
            {
                return Err(StopReason::UnitCap);
            }
        } else {
            self.claimed.fetch_add(1, Ordering::AcqRel);
        }
        Ok(())
    }

    /// Whether the budget already forbids further work, without claiming.
    #[must_use]
    pub fn stop_reason(&self) -> Option<StopReason> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(StopReason::Cancelled);
            }
        }
        if let Some(at) = self.deadline_at {
            if Instant::now() >= at {
                return Some(StopReason::Deadline);
            }
        }
        if let Some(max) = self.max_units {
            if self.claimed.load(Ordering::Acquire) >= max {
                return Some(StopReason::UnitCap);
            }
        }
        None
    }

    /// Wall-clock time left before the deadline (`None` when unlimited,
    /// zero once the deadline has passed).
    #[must_use]
    pub fn remaining_time(&self) -> Option<Duration> {
        self.deadline_at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Number of units claimed so far.
    #[must_use]
    pub fn claimed(&self) -> u64 {
        self.claimed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_claims() {
        let clock = Budget::unlimited().start();
        for _ in 0..10_000 {
            assert!(clock.try_claim().is_ok());
        }
        assert_eq!(clock.claimed(), 10_000);
        assert!(clock.stop_reason().is_none());
        assert!(clock.remaining_time().is_none());
    }

    #[test]
    fn unit_cap_refuses_after_cap() {
        let clock = Budget::unlimited().with_max_units(3).start();
        assert!(clock.try_claim().is_ok());
        assert!(clock.try_claim().is_ok());
        assert!(clock.try_claim().is_ok());
        assert_eq!(clock.try_claim(), Err(StopReason::UnitCap));
        assert_eq!(clock.claimed(), 3, "a refused claim consumes nothing");
    }

    /// The vacuous-deadline edge: a zero-second budget refuses the very
    /// first claim with `Deadline` instead of panicking or spinning.
    #[test]
    fn zero_second_deadline_refuses_immediately() {
        let clock = Budget::unlimited()
            .with_deadline(Duration::from_secs(0))
            .start();
        assert_eq!(clock.stop_reason(), Some(StopReason::Deadline));
        assert_eq!(clock.try_claim(), Err(StopReason::Deadline));
        assert_eq!(clock.claimed(), 0);
        assert_eq!(clock.remaining_time(), Some(Duration::ZERO));
    }

    #[test]
    fn deadline_checked_before_unit_cap() {
        let clock = Budget::unlimited()
            .with_deadline(Duration::ZERO)
            .with_max_units(0)
            .start();
        assert_eq!(clock.try_claim(), Err(StopReason::Deadline));
    }

    #[test]
    fn generous_deadline_claims_fine() {
        let clock = Budget::unlimited()
            .with_deadline(Duration::from_secs(3600))
            .start();
        assert!(clock.try_claim().is_ok());
        assert!(clock.remaining_time().unwrap() > Duration::from_secs(3500));
    }

    #[test]
    fn concurrent_claims_never_overshoot_cap() {
        let clock = Budget::unlimited().with_max_units(100).start();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| while clock.try_claim().is_ok() {});
            }
        });
        assert_eq!(clock.claimed(), 100);
    }

    #[test]
    fn display_names_the_reason() {
        assert_eq!(StopReason::Deadline.to_string(), "wall-clock deadline");
        assert_eq!(StopReason::UnitCap.to_string(), "work-unit cap");
        assert_eq!(StopReason::Cancelled.to_string(), "cancellation");
    }

    #[test]
    fn cancel_token_refuses_further_claims() {
        let token = CancelToken::new();
        let clock = Budget::unlimited().with_cancel(token.clone()).start();
        assert!(clock.try_claim().is_ok());
        assert!(clock.stop_reason().is_none());
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(clock.stop_reason(), Some(StopReason::Cancelled));
        assert_eq!(clock.try_claim(), Err(StopReason::Cancelled));
        assert_eq!(clock.claimed(), 1, "a refused claim consumes nothing");
        // Cancellation is irreversible.
        assert_eq!(clock.try_claim(), Err(StopReason::Cancelled));
    }

    #[test]
    fn cancel_checked_before_deadline_and_cap() {
        let token = CancelToken::new();
        token.cancel();
        let clock = Budget::unlimited()
            .with_deadline(Duration::ZERO)
            .with_max_units(0)
            .with_cancel(token)
            .start();
        assert_eq!(clock.try_claim(), Err(StopReason::Cancelled));
    }

    #[test]
    fn cancel_token_clones_share_the_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert_eq!(token, clone);
        assert_ne!(token, CancelToken::new());
        clone.cancel();
        assert!(token.is_cancelled());
        let budget = Budget::unlimited().with_cancel(token);
        assert!(!budget.is_unlimited());
        assert!(Budget::unlimited().is_unlimited());
    }

    #[test]
    fn cancel_mid_fleet_stops_concurrent_claims() {
        let token = CancelToken::new();
        let clock = Budget::unlimited().with_cancel(token.clone()).start();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while clock.try_claim().is_ok() {
                        std::thread::yield_now();
                    }
                });
            }
            token.cancel();
        });
        // Every worker exited through the Cancelled refusal; nothing hangs.
        assert_eq!(clock.stop_reason(), Some(StopReason::Cancelled));
    }
}
