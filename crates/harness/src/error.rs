//! The workspace-level error taxonomy.
//!
//! Before this type existed the binaries threaded ad-hoc `String`s (and in
//! a few places panics) up to `main`, which flattened every failure to the
//! same exit code. [`ScanftError`] classifies failures into a small closed
//! set — usage, FSM/KISS2, I/O, netlist, synthesis, test-file format,
//! journal — each with its own non-zero exit code, so scripts driving long
//! campaigns can distinguish "bad flag" from "corrupt checkpoint" without
//! scraping stderr.

use std::error::Error;
use std::fmt;

use scanft_fsm::FsmError;
use scanft_netlist::NetlistError;

/// Every failure class a `scanft` binary can exit with.
///
/// The `thiserror` idiom (one enum, `Display` per variant, `source`
/// chaining, `From` impls) hand-rolled to keep the workspace
/// dependency-free.
#[derive(Debug)]
#[non_exhaustive]
pub enum ScanftError {
    /// Bad command line: unknown command, missing operand, malformed flag.
    Usage(
        /// What was wrong with the invocation.
        String,
    ),
    /// A state-table failure: KISS2 parse error, unknown benchmark,
    /// dimension violation.
    Fsm(
        /// The underlying FSM error.
        FsmError,
    ),
    /// A filesystem failure, annotated with the path involved.
    Io {
        /// The path being read or written.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A netlist construction or BLIF import failure.
    Netlist(
        /// The underlying netlist error.
        NetlistError,
    ),
    /// A synthesis failure (e.g. the netlist/state-table self-check).
    Synth {
        /// What went wrong.
        message: String,
    },
    /// A test-file (functional test set) format failure.
    TestFormat {
        /// What went wrong, with line context.
        message: String,
    },
    /// A checkpoint-journal failure: missing header, shape mismatch.
    Journal {
        /// What went wrong.
        message: String,
    },
    /// A server crash-recovery failure: the durable state directory exists
    /// but its write-ahead log cannot be replayed into a consistent
    /// registry (e.g. an admitted job's recorded circuit no longer
    /// parses). Starting fresh would silently drop accepted work, so the
    /// server refuses to start instead.
    Recovery {
        /// What went wrong.
        message: String,
    },
}

impl ScanftError {
    /// A missing or malformed command-line argument.
    #[must_use]
    pub fn usage(message: impl Into<String>) -> Self {
        ScanftError::Usage(message.into())
    }

    /// The process exit code for this failure class. Distinct per class and
    /// never zero; `1` is left to "the command ran and reported a negative
    /// result" (e.g. `lint` deny findings).
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            ScanftError::Usage(_) => 2,
            ScanftError::Fsm(_) => 3,
            ScanftError::Io { .. } => 4,
            ScanftError::Netlist(_) => 5,
            ScanftError::Synth { .. } => 6,
            ScanftError::TestFormat { .. } => 7,
            ScanftError::Journal { .. } => 8,
            ScanftError::Recovery { .. } => 9,
        }
    }

    /// A short stable name for the failure class (used in error output so
    /// the exit code is explicable without a manual).
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            ScanftError::Usage(_) => "usage",
            ScanftError::Fsm(_) => "fsm",
            ScanftError::Io { .. } => "io",
            ScanftError::Netlist(_) => "netlist",
            ScanftError::Synth { .. } => "synth",
            ScanftError::TestFormat { .. } => "test-format",
            ScanftError::Journal { .. } => "journal",
            ScanftError::Recovery { .. } => "recovery",
        }
    }
}

impl fmt::Display for ScanftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanftError::Usage(message) => write!(f, "{message}"),
            ScanftError::Fsm(source) => write!(f, "{source}"),
            ScanftError::Io { path, source } => write!(f, "{path}: {source}"),
            ScanftError::Netlist(source) => write!(f, "{source}"),
            ScanftError::Synth { message } => write!(f, "synthesis failed: {message}"),
            ScanftError::TestFormat { message } => write!(f, "{message}"),
            ScanftError::Journal { message } => write!(f, "journal: {message}"),
            ScanftError::Recovery { message } => write!(f, "recovery: {message}"),
        }
    }
}

impl Error for ScanftError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScanftError::Fsm(source) => Some(source),
            ScanftError::Io { source, .. } => Some(source),
            ScanftError::Netlist(source) => Some(source),
            _ => None,
        }
    }
}

impl From<FsmError> for ScanftError {
    fn from(source: FsmError) -> Self {
        ScanftError::Fsm(source)
    }
}

impl From<NetlistError> for ScanftError {
    fn from(source: NetlistError) -> Self {
        ScanftError::Netlist(source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<ScanftError> {
        vec![
            ScanftError::usage("missing command"),
            ScanftError::Fsm(FsmError::UnknownCircuit {
                name: "nope".into(),
            }),
            ScanftError::Io {
                path: "tests.txt".into(),
                source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
            },
            ScanftError::Netlist(NetlistError::BadOutputs {
                message: "empty".into(),
            }),
            ScanftError::Synth {
                message: "mismatch".into(),
            },
            ScanftError::TestFormat {
                message: "line 3: bad cube".into(),
            },
            ScanftError::Journal {
                message: "no header".into(),
            },
            ScanftError::Recovery {
                message: "WAL replay failed".into(),
            },
        ]
    }

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let mut codes: Vec<u8> = all_variants().iter().map(ScanftError::exit_code).collect();
        assert!(codes.iter().all(|&c| c >= 2), "0 and 1 are reserved");
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all_variants().len(), "codes must be distinct");
    }

    #[test]
    fn display_is_nonempty_and_class_is_stable() {
        for err in all_variants() {
            assert!(!err.to_string().is_empty());
            assert!(!err.class().is_empty());
        }
    }

    #[test]
    fn from_impls_and_sources() {
        let fsm: ScanftError = FsmError::UnknownCircuit { name: "x".into() }.into();
        assert!(fsm.source().is_some());
        assert_eq!(fsm.exit_code(), 3);
        let net: ScanftError = NetlistError::BadOutputs {
            message: "m".into(),
        }
        .into();
        assert_eq!(net.exit_code(), 5);
        assert!(ScanftError::usage("u").source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScanftError>();
    }
}
