//! Resilient execution substrate for `scanft` campaigns.
//!
//! The paper's tables come from long fault-simulation and ATPG campaigns
//! over every benchmark; at production scale those runs must survive a
//! worker panic, respect wall-clock budgets, and resume after a kill
//! instead of starting over. This crate supplies the machinery, one layer
//! per failure mode:
//!
//! - [`Budget`] / [`BudgetClock`]: a wall-clock deadline, a work-unit
//!   cap, and an external [`CancelToken`], checked at every claim so
//!   exhausted or cancelled budgets stop the fleet promptly (a
//!   zero-second budget completes zero units cleanly);
//! - [`run_units`]: panic-isolating supervisor — each unit runs under
//!   `catch_unwind`, a panicking unit is *quarantined* with its message
//!   and the worker's scratch state is rebuilt, so one bad batch can no
//!   longer abort a whole campaign;
//! - [`JournalWriter`] / [`read_journal`]: append-only JSONL checkpoints
//!   of completed units, flushed per record, tolerant of torn trailing
//!   writes, and validated against the campaign shape before a resume;
//!   [`JournalTailer`] follows a growing journal without re-reading it,
//!   yielding only complete lines (the `scanft serve` events feed);
//!   [`JsonlWriter`] is the raw flushed-per-line writer underneath —
//!   shared with the server's job WAL — and [`repair_journal`] rewrites a
//!   crash-torn journal to exactly its intact prefix so a post-crash
//!   resume stays byte-identical to an uninterrupted run;
//! - [`FailurePlan`]: deterministic chaos injection (panics, delays, torn
//!   journal writes, and [`CrashPoint`] process deaths before/after a
//!   flush) seeded through the workspace's SplitMix64, so every recovery
//!   path above is provable in CI with a pinned seed;
//! - [`ScanftError`]: the workspace error taxonomy with one distinct
//!   non-zero exit code per failure class.
//!
//! Consumers: `scanft-sim::campaign::run_supervised` (batch-level
//! supervision, checkpoint/resume), `scanft-atpg` (per-fault wall-clock
//! caps), `scanft-core::top_up` (whole-run budgets), and the `scanft` CLI
//! (`--deadline`, `--journal`, `--resume`, `--chaos-seed`).
//!
//! # Example
//!
//! ```
//! use scanft_harness::{run_units, Budget};
//!
//! let units: Vec<usize> = (0..8).collect();
//! let outcome = run_units(
//!     &units,
//!     2,
//!     &Budget::unlimited().with_max_units(5),
//!     None,
//!     || (),
//!     |(), unit| unit * unit,
//! );
//! assert_eq!(outcome.completed.len(), 5);
//! assert_eq!(outcome.remaining.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod budget;
mod chaos;
mod error;
mod journal;
mod supervisor;

pub use budget::{Budget, BudgetClock, CancelToken, StopReason};
pub use chaos::{silence_chaos_panics, ChaosPanic, CrashPoint, FailurePlan};
pub use error::ScanftError;
pub use journal::{
    buffer_contents, read_journal, read_journal_file, repair_journal, BufferTailer, Journal,
    JournalHeader, JournalRecord, JournalTailer, JournalWriter, JsonlWriter,
};
pub use supervisor::{run_units, UnitFailure, WorkOutcome};
